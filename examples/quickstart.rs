//! Quickstart: simplify the paper's Figure 1 expression and prove the
//! result equivalent — the end-to-end MBA-Solver workflow in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mba::expr::Expr;
use mba::smt::{CheckOutcome, SmtSolver, SolverProfile};
use mba::solver::Simplifier;

fn main() {
    // The MBA identity from the paper's Figure 1: Z3 cannot decide the
    // 64-bit equivalence `x*y == rhs` within an hour.
    let hard: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().expect("valid MBA");
    println!("obfuscated : {hard}");
    println!("class      : {}", hard.mba_class());

    // MBA-Solver: signature vectors + arithmetic reduction (§4).
    let simplifier = Simplifier::new();
    let detail = simplifier.simplify_detailed(&hard);
    println!("simplified : {}", detail.output);
    println!(
        "alternation: {} -> {}",
        detail.input_metrics.alternation, detail.output_metrics.alternation
    );

    // Hand the easy form to an SMT solver: equivalence is now instant.
    let solver = SmtSolver::new(SolverProfile::boolector_style());
    let ground_truth: Expr = "x*y".parse().expect("valid");
    let result = solver.check_equivalence(&detail.output, &ground_truth, 16, None);
    match result.outcome {
        CheckOutcome::Equivalent => println!(
            "equivalence proven in {:?} (by rewriting alone: {})",
            result.elapsed, result.solved_by_rewriting
        ),
        other => println!("unexpected verdict: {other:?}"),
    }
}
