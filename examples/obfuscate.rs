//! Scenario: software protection — generate MBA obfuscations and
//! measure how much harder they make SMT-based analysis.
//!
//! This is the paper's §2.2 use case seen from the defender's side:
//! an expression like a licensing check's `serial - key` is rewritten
//! into each MBA category, and we watch an SMT solver's cost explode
//! while the semantics provably stay intact.
//!
//! ```text
//! cargo run --release --example obfuscate
//! ```

use std::time::Duration;

use mba::expr::{Expr, Metrics};
use mba::gen::{ObfuscationKind, Obfuscator};
use mba::smt::{CheckOutcome, SmtSolver, SolverProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let secret_check: Expr = "serial - key".parse().expect("valid");
    let obfuscator = Obfuscator::new();
    let solver = SmtSolver::new(SolverProfile::z3_style());
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);

    println!("protecting: {secret_check}\n");
    println!(
        "{:<10} {:>6} {:>7} {:>9}  verdict within 500 ms",
        "category", "alt", "length", "terms"
    );

    for kind in [
        ObfuscationKind::Linear,
        ObfuscationKind::Polynomial,
        ObfuscationKind::NonPolynomial,
    ] {
        let protected = obfuscator.obfuscate(&secret_check, kind, &mut rng);
        let m = Metrics::of(&protected);

        // The attacker's query: is the protected code equal to the
        // original? (They would not know the rhs; this simulates the
        // solver cost of reasoning about the protected form.)
        let attack = solver.check_equivalence(
            &protected,
            &secret_check,
            16,
            Some(Duration::from_millis(500)),
        );
        let verdict = match attack.outcome {
            CheckOutcome::Equivalent => format!("solved in {:?}", attack.elapsed),
            CheckOutcome::Timeout => "TIMEOUT (protection held)".to_string(),
            CheckOutcome::NotEquivalent(_) => "BUG: unsound obfuscation".to_string(),
        };
        println!(
            "{:<10} {:>6} {:>7} {:>9}  {}",
            kind.to_string(),
            m.alternation,
            m.length,
            m.num_terms,
            verdict
        );
        println!("    {protected}\n");
    }
}
