//! Scenario: reverse engineering MBA-protected data flow.
//!
//! A malware analyst lifts arithmetic out of an obfuscated binary (the
//! paper's §2.2 motivation: DRM systems, Tigress output, malware
//! compilation chains) and wants to know what each expression *really*
//! computes. This example walks a batch of captured expressions through
//! MBA-Solver and cross-checks every answer three ways: random testing,
//! the polynomial certificate, and an SMT proof.
//!
//! ```text
//! cargo run --example deobfuscate_binary
//! ```

use mba::expr::{Expr, Metrics, Valuation};
use mba::smt::{CheckOutcome, SmtSolver, SolverProfile};
use mba::solver::Simplifier;

/// Expressions "lifted from the binary": real MBA obfuscations of simple
/// operations, in the shapes Tigress/Irdeto-style protectors emit.
const CAPTURED: &[&str] = &[
    // x + y, three different encodings.
    "(x | y) + (~x | y) - ~x",
    "(x ^ y) + 2*y - 2*(~x & y)",
    "y + (x & ~y) + (x & y)",
    // x - y via the HAKMEM identity.
    "(x ^ y) - 2*(~x & y)",
    // Figure 1: x * y.
    "(x&~y)*(~x&y) + (x&y)*(x|y)",
    // An opaque constant: always 0, used for bogus control flow.
    "(x | ~x) + 1",
    // Non-poly obfuscation of x - y + z (§4.5's running example).
    "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
];

fn main() {
    let simplifier = Simplifier::new();
    let prover = SmtSolver::new(SolverProfile::boolector_style());

    println!("{:<52} {:>6} -> recovered semantics", "captured expression", "alt");
    for src in CAPTURED {
        let captured: Expr = src.parse().expect("lifted expression parses");
        let metrics = Metrics::of(&captured);
        let recovered = simplifier.simplify(&captured);

        // Cross-check 1: random differential testing at two widths.
        let vals = [
            Valuation::new().with("x", 0xdead_beef).with("y", 0x1234).with("z", 7),
            Valuation::new().with("x", u64::MAX).with("y", 1).with("z", 0),
        ];
        for v in &vals {
            assert_eq!(captured.eval(v, 64), recovered.eval(v, 64));
            assert_eq!(captured.eval(v, 8), recovered.eval(v, 8));
        }

        // Cross-check 2: polynomial certificate (Theorem 1 machinery).
        assert_eq!(
            simplifier.proves_equivalent(&captured, &recovered),
            Some(true),
            "certificate failed for {src}"
        );

        // Cross-check 3: independent SMT proof. Width 6 keeps even the
        // multiplication miters quick while still being a real proof
        // for that ring (the identities are width-generic anyway).
        let proof = prover.check_equivalence(&captured, &recovered, 6, None);
        assert_eq!(
            proof.outcome,
            CheckOutcome::Equivalent,
            "SMT refused {src}"
        );

        println!("{src:<52} {:>6} -> {recovered}", metrics.alternation);
    }
    println!("\nall recoveries triple-checked (random, certificate, SMT)");
}
