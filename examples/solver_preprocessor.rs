//! Scenario: MBA-Solver as a drop-in SMT preprocessing pass — the
//! architecture of the paper's Figure 5.
//!
//! A symbolic-execution engine keeps hitting hard MBA constraints. This
//! example wraps the solver behind a preprocessing front end: every
//! equivalence query first passes through MBA-Solver, and only the
//! simplified form reaches the (budgeted) SMT solver. The run prints a
//! side-by-side of solver behaviour with and without the pass.
//!
//! ```text
//! cargo run --release --example solver_preprocessor
//! ```

use std::time::Duration;

use mba::expr::Expr;
use mba::gen::{Corpus, CorpusConfig};
use mba::smt::{CheckOutcome, CheckResult, SmtSolver, SolverProfile};
use mba::solver::Simplifier;

/// The preprocessing front end of Figure 5: parse → simplify → solve.
struct PreprocessingSolver {
    simplifier: Simplifier,
    backend: SmtSolver,
}

impl PreprocessingSolver {
    fn new(profile: SolverProfile) -> Self {
        PreprocessingSolver {
            simplifier: Simplifier::new(),
            backend: SmtSolver::new(profile),
        }
    }

    /// Checks `lhs == rhs`, simplifying both sides first. Semantics are
    /// preserved by construction, so the verdict transfers.
    fn check(&self, lhs: &Expr, rhs: &Expr, width: u32, budget: Duration) -> CheckResult {
        let lhs = self.simplifier.simplify(lhs);
        let rhs = self.simplifier.simplify(rhs);
        self.backend.check_equivalence(&lhs, &rhs, width, Some(budget))
    }
}

fn main() {
    let budget = Duration::from_millis(400);
    let width = 16;
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 99,
        per_category: 15,
    });

    let raw = SmtSolver::new(SolverProfile::z3_style());
    let preprocessed = PreprocessingSolver::new(SolverProfile::z3_style());

    let (mut raw_solved, mut pre_solved) = (0usize, 0usize);
    let (mut raw_time, mut pre_time) = (Duration::ZERO, Duration::ZERO);
    for sample in corpus.samples() {
        let r = raw.check_equivalence(&sample.obfuscated, &sample.ground_truth, width, Some(budget));
        raw_time += r.elapsed;
        if r.outcome == CheckOutcome::Equivalent {
            raw_solved += 1;
        }

        let p = preprocessed.check(&sample.obfuscated, &sample.ground_truth, width, budget);
        pre_time += p.elapsed;
        if p.outcome == CheckOutcome::Equivalent {
            pre_solved += 1;
        }
        assert!(
            !matches!(p.outcome, CheckOutcome::NotEquivalent(_)),
            "preprocessing broke an identity: {sample}"
        );
    }

    let n = corpus.len();
    println!("{n} MBA equivalence queries, {width}-bit, {budget:?} budget each\n");
    println!(
        "{:<26} {:>10} {:>14}",
        "configuration", "solved", "total SMT time"
    );
    println!(
        "{:<26} {:>6}/{:<3} {:>14.2?}",
        "z3-style (raw)", raw_solved, n, raw_time
    );
    println!(
        "{:<26} {:>6}/{:<3} {:>14.2?}",
        "z3-style + MBA-Solver", pre_solved, n, pre_time
    );
    println!(
        "\npreprocessing lookup table: {}",
        preprocessed.simplifier.cache_stats()
    );
}
