//! Umbrella crate for the MBA-Solver reproduction.
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`expr`] — MBA expression AST, parser, printer, evaluator, metrics.
//! * [`linalg`] — exact rational linear algebra.
//! * [`sig`] — truth tables, signature vectors, normalized bases.
//! * [`solver`] — the MBA-Solver simplification algorithm (the paper's
//!   core contribution).
//! * [`gen`] — the MBA obfuscator and evaluation-corpus generator.
//! * [`sat`] — the CDCL SAT solver substrate.
//! * [`smt`] — the bit-vector SMT layer with Z3/STP/Boolector-style
//!   profiles.
//! * [`baselines`] — SSPAM-like and Syntia-like peer tools.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use mba_baselines as baselines;
pub use mba_expr as expr;
pub use mba_gen as gen;
pub use mba_linalg as linalg;
pub use mba_sat as sat;
pub use mba_sig as sig;
pub use mba_smt as smt;
pub use mba_solver as solver;
