//! Offline API-compatible subset of [`mio`](https://docs.rs/mio): a
//! readiness-based event loop built directly on raw `epoll(7)` and
//! `eventfd(2)` syscalls.
//!
//! The build environment has no crates.io access, so — like the other
//! `shims/` crates — this reimplements exactly the slice of the real
//! API the workspace uses: [`Poll`], [`Registry`], [`Events`],
//! [`Event`], [`Token`], [`Interest`], and [`Waker`]. The serving
//! layer's reactor (`mba-serve`) and the open-loop load generator both
//! drive tens of thousands of nonblocking sockets through this one
//! event loop, so the shim is deliberately boring: level-triggered
//! registrations (the callers only register write interest while bytes
//! are actually pending, so level triggering cannot busy-loop),
//! an edge-triggered eventfd for cross-thread wakeups, and nothing
//! else.
//!
//! Divergences from real `mio`, all chosen to keep the shim small:
//!
//! * Registration takes `&impl AsRawFd` instead of a `&mut` /
//!   `event::Source` pair — std's `TcpListener`/`TcpStream` already
//!   implement `AsRawFd`, and this shim never needs to hook
//!   deregistration state into the source.
//! * Events are level-triggered (real mio is edge-triggered). Callers
//!   that drain readiness to `WouldBlock` — as all of ours do — behave
//!   identically under both disciplines.
//! * Only Linux is supported; on other platforms every constructor
//!   returns `Unsupported`. The workspace's reactor falls back to
//!   thread-per-connection I/O there.
//!
//! All `unsafe` in the workspace's event-driven serving path lives in
//! this file; `mba-serve` itself keeps `#![forbid(unsafe_code)]`.

/// Associates a registered file descriptor with the events it produces.
///
/// Mirrors `mio::Token`: an opaque `usize` the caller picks (slab
/// indices, sentinel values for the listener/waker, …) and gets back
/// verbatim from [`Event::token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest, combinable with `|`: [`Interest::READABLE`],
/// [`Interest::WRITABLE`], or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (plus peer-hangup, which Linux folds in).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// The union of two interests (mirrors `mio::Interest::add`).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // mio's real method name
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, other: Interest) -> Interest {
        self.add(other)
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! The raw syscall surface. x86_64's `epoll_event` is packed; every
    //! other Linux architecture uses natural `repr(C)` alignment.

    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
            -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<c_int> {
        // SAFETY: plain fd-returning syscall with no pointer arguments.
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a valid, live epoll_event for the call's
        // duration; the kernel copies it before returning. DEL ignores
        // the pointer but a valid one is passed anyway (pre-2.6.9
        // kernels required it; it is never wrong).
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn wait(
        epfd: c_int,
        events: &mut Vec<EpollEvent>,
        capacity: usize,
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        events.clear();
        events.reserve(capacity);
        // SAFETY: the spare capacity holds at least `capacity` events;
        // the kernel writes `n <= capacity` entries which `set_len`
        // then exposes as initialized (EpollEvent is plain-old-data).
        let n = loop {
            let ret = unsafe {
                epoll_wait(epfd, events.as_mut_ptr(), capacity as c_int, timeout_ms)
            };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        unsafe { events.set_len(n) };
        Ok(n)
    }

    pub fn eventfd_new() -> io::Result<c_int> {
        // SAFETY: plain fd-returning syscall with no pointer arguments.
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    pub fn eventfd_write(fd: c_int) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack u64, as the
        // eventfd contract requires.
        let n = unsafe { write(fd, std::ptr::addr_of!(one).cast(), 8) };
        if n < 0 {
            let e = io::Error::last_os_error();
            // A full counter (u64::MAX-1 pending wakes) still means
            // "the poller will wake"; treat it as success.
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    pub fn eventfd_drain(fd: c_int) {
        let mut buf: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live stack u64; the fd is
        // nonblocking so this never parks.
        let _ = unsafe { read(fd, std::ptr::addr_of_mut!(buf).cast(), 8) };
    }

    pub fn close_fd(fd: c_int) {
        // SAFETY: fds closed here are owned by the shim's types and
        // closed exactly once, in drop.
        let _ = unsafe { close(fd) };
    }
}

#[cfg(target_os = "linux")]
pub use linux_impl::{Events, Poll, Registry, Waker};

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::sys;
    use super::{Interest, Token};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    /// One readiness notification.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        token: Token,
        events: u32,
    }

    impl Event {
        /// The token the fd was registered with.
        pub fn token(&self) -> Token {
            self.token
        }

        /// Readable readiness (includes hangup/error, which a read will
        /// surface as EOF or an I/O error — matching mio's behaviour).
        pub fn is_readable(&self) -> bool {
            self.events & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
        }

        /// Writable readiness (includes hangup/error so a pending write
        /// gets a chance to observe the failure).
        pub fn is_writable(&self) -> bool {
            self.events & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
        }

        /// Whether the peer closed its read half (or the connection is
        /// fully gone).
        pub fn is_read_closed(&self) -> bool {
            self.events & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
        }

        /// Hard error readiness.
        pub fn is_error(&self) -> bool {
            self.events & sys::EPOLLERR != 0
        }
    }

    /// A buffer of events filled by [`Poll::poll`].
    pub struct Events {
        inner: Vec<sys::EpollEvent>,
        capacity: usize,
    }

    impl Events {
        /// A buffer receiving at most `capacity` events per poll.
        pub fn with_capacity(capacity: usize) -> Events {
            Events {
                inner: Vec::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
            }
        }

        /// Iterates the events of the last poll.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            self.inner.iter().map(|e| Event {
                token: Token(e.data as usize),
                events: e.events,
            })
        }

        /// Whether the last poll returned no events.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }
    }

    /// Handle for (de)registering fds; obtained from [`Poll::registry`].
    #[derive(Debug)]
    pub struct Registry {
        epfd: c_int,
    }

    fn epoll_mask(interests: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interests.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if interests.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    impl Registry {
        /// Registers `source` for level-triggered readiness under
        /// `token`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. registering the same
        /// fd twice).
        pub fn register(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                source.as_raw_fd(),
                epoll_mask(interests),
                token.0 as u64,
            )
        }

        /// Replaces an existing registration's token and interests.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. the fd is not
        /// registered).
        pub fn reregister(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                source.as_raw_fd(),
                epoll_mask(interests),
                token.0 as u64,
            )
        }

        /// Removes a registration.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures (e.g. the fd is not
        /// registered).
        pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0)
        }
    }

    /// The event loop's core: an epoll instance.
    #[derive(Debug)]
    pub struct Poll {
        registry: Registry,
    }

    impl Poll {
        /// Creates a fresh epoll instance.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failures (fd exhaustion).
        pub fn new() -> io::Result<Poll> {
            Ok(Poll {
                registry: Registry {
                    epfd: sys::epoll_create()?,
                },
            })
        }

        /// The registration handle.
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Blocks until at least one registered fd is ready, the
        /// timeout elapses (`None` = forever), or a wakeup arrives.
        /// Waker tokens are delivered like any other event; the waker's
        /// eventfd is drained internally, so a new [`Waker::wake`] after
        /// this poll produces a new event.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures. `EINTR` is retried
        /// internally.
        pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs timeout does not spin at 0ms.
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int
                    + c_int::from(d.subsec_nanos() % 1_000_000 != 0),
            };
            sys::wait(
                self.registry.epfd,
                &mut events.inner,
                events.capacity,
                timeout_ms,
            )?;
            Ok(())
        }
    }

    impl Drop for Poll {
        fn drop(&mut self) {
            sys::close_fd(self.registry.epfd);
        }
    }

    /// Cross-thread wakeup for a [`Poll`] parked in [`Poll::poll`]:
    /// an eventfd registered edge-triggered under the given token.
    /// `Send + Sync`; clone the `Arc` it usually lives in.
    #[derive(Debug)]
    pub struct Waker {
        efd: c_int,
    }

    impl Waker {
        /// Creates and registers the waker.
        ///
        /// # Errors
        ///
        /// Propagates eventfd/epoll failures.
        pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
            let efd = sys::eventfd_new()?;
            // Edge-triggered: each `wake()` bumps the counter, which is
            // a new edge, so every wake yields at least one event even
            // if the counter is never drained to zero.
            if let Err(e) = sys::ctl(
                registry.epfd,
                sys::EPOLL_CTL_ADD,
                efd,
                sys::EPOLLIN | sys::EPOLLET,
                token.0 as u64,
            ) {
                sys::close_fd(efd);
                return Err(e);
            }
            Ok(Waker { efd })
        }

        /// Wakes the associated [`Poll`]. Callable from any thread;
        /// coalesces with other un-consumed wakes.
        ///
        /// # Errors
        ///
        /// Propagates the eventfd write failure (practically
        /// impossible).
        pub fn wake(&self) -> io::Result<()> {
            sys::eventfd_write(self.efd)
        }

        /// Drains the pending wake count. [`Poll::poll`] does not drain
        /// automatically (it cannot know which tokens are wakers), so
        /// the event loop calls this when it sees the waker's token;
        /// with an edge-triggered registration a missed drain only
        /// costs a spurious event, never a missed wake.
        pub fn drain(&self) {
            sys::eventfd_drain(self.efd);
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            sys::close_fd(self.efd);
        }
    }

    // SAFETY: the waker is a single fd written with an 8-byte atomic
    // eventfd write; concurrent wakes are the intended use.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

#[cfg(not(target_os = "linux"))]
pub use fallback_impl::{Events, Poll, Registry, Waker};

#[cfg(not(target_os = "linux"))]
mod fallback_impl {
    //! Non-Linux stub: constructors fail with `Unsupported`, so callers
    //! (the serve reactor) can detect the missing backend at runtime
    //! and fall back to thread-per-connection I/O.

    use super::{Interest, Token};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the mio shim's epoll backend is Linux-only",
        ))
    }

    /// One readiness notification (never produced on this platform).
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        token: Token,
    }

    impl Event {
        /// The token the fd was registered with.
        pub fn token(&self) -> Token {
            self.token
        }
        /// Always false on this platform.
        pub fn is_readable(&self) -> bool {
            false
        }
        /// Always false on this platform.
        pub fn is_writable(&self) -> bool {
            false
        }
        /// Always false on this platform.
        pub fn is_read_closed(&self) -> bool {
            false
        }
        /// Always false on this platform.
        pub fn is_error(&self) -> bool {
            false
        }
    }

    /// Event buffer stub.
    pub struct Events;

    impl Events {
        /// Creates the (empty) buffer.
        pub fn with_capacity(_capacity: usize) -> Events {
            Events
        }
        /// Always empty.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            std::iter::empty()
        }
        /// Always true.
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    /// Registry stub; all methods fail.
    #[derive(Debug)]
    pub struct Registry;

    impl Registry {
        /// Always fails with `Unsupported`.
        pub fn register(
            &self,
            _source: &impl std::any::Any,
            _token: Token,
            _interests: Interest,
        ) -> io::Result<()> {
            unsupported()
        }
        /// Always fails with `Unsupported`.
        pub fn reregister(
            &self,
            _source: &impl std::any::Any,
            _token: Token,
            _interests: Interest,
        ) -> io::Result<()> {
            unsupported()
        }
        /// Always fails with `Unsupported`.
        pub fn deregister(&self, _source: &impl std::any::Any) -> io::Result<()> {
            unsupported()
        }
    }

    /// Poll stub; `new()` fails.
    #[derive(Debug)]
    pub struct Poll {
        registry: Registry,
    }

    impl Poll {
        /// Always fails with `Unsupported`.
        pub fn new() -> io::Result<Poll> {
            unsupported()
        }
        /// The registration handle.
        pub fn registry(&self) -> &Registry {
            &self.registry
        }
        /// Always fails with `Unsupported`.
        pub fn poll(&mut self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<()> {
            unsupported()
        }
    }

    /// Waker stub; `new()` fails.
    #[derive(Debug)]
    pub struct Waker;

    impl Waker {
        /// Always fails with `Unsupported`.
        pub fn new(_registry: &Registry, _token: Token) -> io::Result<Waker> {
            unsupported()
        }
        /// Always fails with `Unsupported`.
        pub fn wake(&self) -> io::Result<()> {
            unsupported()
        }
        /// No-op.
        pub fn drain(&self) {}
    }
}

/// Whether this platform has a working event-loop backend.
pub fn backend_available() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    const CONN: Token = Token(2);

    #[test]
    fn interest_combines() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn accept_read_write_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(16);

        // No client yet: a short poll returns empty.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == LISTENER && e.is_readable()));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&server_side, CONN, Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an idle socket fires immediately
        // (level-triggered).
        poll.registry()
            .reregister(&server_side, CONN, Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_writable()));

        // Peer close surfaces as read-closed readiness.
        poll.registry()
            .reregister(&server_side, CONN, Interest::READABLE)
            .unwrap();
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events
            .iter()
            .find(|e| e.token() == CONN)
            .expect("close event");
        assert!(ev.is_readable() && ev.is_read_closed());

        poll.registry().deregister(&server_side).unwrap();
    }

    #[test]
    fn waker_wakes_from_another_thread_and_coalesces() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), WAKER).unwrap());
        let mut events = Events::with_capacity(4);

        let w = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Multiple wakes before the poll returns coalesce into at
            // least one event.
            w.wake().unwrap();
            w.wake().unwrap();
        });
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(4), "poll never woke");
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        waker.drain();
        handle.join().unwrap();

        // A fresh wake after draining produces a fresh event.
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER));
        waker.drain();

        // And with nothing pending, the poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        // 1.5ms must not truncate to 1ms-and-spin nor to 0.
        poll.poll(&mut events, Some(Duration::from_micros(1500))).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn event_capacity_bounds_one_poll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        let mut streams = Vec::new();
        for i in 0..8 {
            let c = TcpStream::connect(addr).unwrap();
            // Accept and register the server side, then make it
            // readable by writing from the client.
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(true).unwrap();
                        poll.registry()
                            .register(&s, Token(100 + i), Interest::READABLE)
                            .unwrap();
                        streams.push((s, c));
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            }
        }
        for (_, c) in &mut streams {
            c.write_all(b"x").unwrap();
        }
        // Capacity 4 yields at most 4 events per poll; level triggering
        // re-delivers the rest on the next poll.
        let mut events = Events::with_capacity(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4 {
            poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
            let n = events.iter().count();
            assert!(n <= 4);
            for e in events.iter() {
                seen.insert(e.token());
            }
            if seen.len() == 8 {
                break;
            }
        }
        assert_eq!(seen.len(), 8, "level-triggered redelivery incomplete");
    }
}
