//! Offline, API-compatible subset of `serde`'s trait surface.
//!
//! Provides the `Serialize`/`Deserialize` traits (and the
//! `Serializer`/`Deserializer` machinery the workspace's hand-written
//! impls use) so type signatures keep compiling without crates.io. The
//! derive macros (re-exported from the sibling `serde_derive` shim)
//! expand to nothing — nothing in the workspace consumes the generated
//! impls. A minimal string-oriented `Serializer`/`Deserializer` pair is
//! included so the hand-written impls remain exercisable in tests.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side traits.
pub mod de {
    use super::*;

    /// Errors produced during deserialization.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can drive deserialization.
    pub trait Deserializer<'de>: Sized {
        /// The format's error type.
        type Error: Error;

        /// Produces a string value.
        fn deserialize_string(self) -> Result<String, Self::Error>;
    }
}

/// Serialization-side traits.
pub mod ser {
    use super::*;

    /// Errors produced during serialization.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can receive serialized values.
    pub trait Serializer: Sized {
        /// Success value.
        type Ok;
        /// The format's error type.
        type Error: Error;

        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

        /// Serializes an integer.
        fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A value that can be serialized.
pub trait Serialize {
    /// Writes `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Reads a value from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for &str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

/// A minimal concrete error type usable by tests of hand-written impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleError(String);

impl Display for SimpleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl de::Error for SimpleError {
    fn custom<T: Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

impl ser::Error for SimpleError {
    fn custom<T: Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

/// A serializer that renders values to plain strings.
pub struct StringSerializer;

impl Serializer for StringSerializer {
    type Ok = String;
    type Error = SimpleError;

    fn serialize_str(self, v: &str) -> Result<String, SimpleError> {
        Ok(v.to_string())
    }

    fn serialize_i128(self, v: i128) -> Result<String, SimpleError> {
        Ok(v.to_string())
    }

    fn serialize_bool(self, v: bool) -> Result<String, SimpleError> {
        Ok(v.to_string())
    }
}

/// A deserializer that reads values from a plain string.
pub struct StringDeserializer(pub String);

impl<'de> Deserializer<'de> for StringDeserializer {
    type Error = SimpleError;

    fn deserialize_string(self) -> Result<String, SimpleError> {
        Ok(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip_through_shim_formats() {
        let out = "hello".serialize(StringSerializer).unwrap();
        assert_eq!(out, "hello");
        let back = String::deserialize(StringDeserializer(out)).unwrap();
        assert_eq!(back, "hello");
    }

    #[test]
    fn custom_errors_render_their_message() {
        let e = <SimpleError as de::Error>::custom("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
