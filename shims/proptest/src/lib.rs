//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, [`strategy::Just`],
//! weighted [`prop_oneof!`], integer-range and tuple strategies,
//! `collection::vec`, a small regex-subset string strategy, and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the
//!   test's module path and name, so failures reproduce exactly across
//!   runs; set `PROPTEST_CASES` to change the iteration count.
//! - **Regex strategies** support the subset the workspace uses:
//!   concatenations of `.`, `[...]` classes (with ranges), and literal
//!   characters, each optionally quantified by `{m,n}`, `*`, `+`, `?`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, RNG, and failure plumbing for generated tests.

    use std::fmt;

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations (or `PROPTEST_CASES`
        /// from the environment, when set, to let CI dial effort).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// The deterministic generator driving value generation (SplitMix64
    /// seeded from the test's fully qualified name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Why a test case failed (no rejection machinery: the workspace
    /// never uses `prop_assume!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A hard failure with a reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy: Clone + 'static {
        /// The generated type.
        type Value: 'static;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: 'static,
            F: Fn(Self::Value) -> O + Clone + 'static,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and
        /// draws from the result.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone + 'static,
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into one more level. The
        /// `_desired_size` / `_branch_size` hints are accepted for
        /// signature compatibility; depth alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            Self: Sized,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every level so generated
                // trees have varied, not uniformly maximal, depth.
                let deeper = recurse(level).boxed();
                level = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
            }
            level
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.generate(rng)))
        }
    }

    /// A type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: 'static,
        F: Fn(S::Value) -> O + Clone + 'static,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone + 'static,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T: 'static> Union<T> {
        /// Builds from `(weight, strategy)` arms.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if draw < w {
                    return s.generate(rng);
                }
                draw -= w;
            }
            unreachable!("weights summed correctly")
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + 'static {
        /// Draws from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = ((self.end as i128) - (self.start as i128)) as u64;
                    let draw = rng.below(span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, i8, i16, i32, i64, u64, usize, isize, i128);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// A strategy yielding vectors of `element` draws.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with a size drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! A generator for the regex subset the workspace's string
    //! strategies use.

    use crate::test_runner::TestRng;

    enum Piece {
        AnyChar,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    struct Atom {
        piece: Piece,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '.' => Piece::AnyChar,
                '[' => {
                    let mut items: Vec<(char, char)> = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        class.push(d);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        // `a-z` is a range unless `-` is first or last.
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            items.push((class[i], class[i + 2]));
                            i += 3;
                        } else {
                            items.push((class[i], class[i]));
                            i += 1;
                        }
                    }
                    assert!(!items.is_empty(), "empty character class in `{pattern}`");
                    Piece::Class(items)
                }
                '\\' => Piece::Literal(chars.next().expect("dangling escape")),
                other => Piece::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: u32 = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { piece, min, max });
        }
        atoms
    }

    fn any_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII; occasionally an arbitrary scalar so
        // parser fuzzing still sees multi-byte UTF-8.
        if rng.below(8) != 0 {
            char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let span = u64::from(atom.max - atom.min) + 1;
            let count = atom.min + rng.below(span) as u32;
            for _ in 0..count {
                match &atom.piece {
                    Piece::AnyChar => out.push(any_char(rng)),
                    Piece::Literal(c) => out.push(*c),
                    Piece::Class(items) => {
                        let (lo, hi) = items[rng.below(items.len() as u64) as usize];
                        let offset = rng.below(hi as u64 - lo as u64 + 1) as u32;
                        out.push(char::from_u32(lo as u32 + offset).expect("class range"));
                    }
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! Everything a test file imports with `use proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The crate under its conventional prelude alias, matching real
    /// proptest's `prelude::prop` (for `prop::collection::vec` etc.).
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the surrounding property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property when the values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}", lhs, rhs, ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property when the values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn rng() -> TestRng {
        TestRng::deterministic("proptest::tests")
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rng();
        let s = (1usize..=5, -4i128..=4);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..=5).contains(&a));
            assert!((-4..=4).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = rng();
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0usize; 3];
        for _ in 0..400 {
            seen[s.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(seen[0] > seen[1], "weighted arm should dominate: {seen:?}");
        assert!(seen[1] > 0, "light arm must still appear");
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth bound violated");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never fired");
    }

    #[test]
    fn vec_strategy_honors_size_forms() {
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(crate::collection::vec(Just(0u8), 5).generate(&mut rng).len(), 5);
            let l = crate::collection::vec(Just(0u8), 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&l));
            let m = crate::collection::vec(Just(0u8), 0..=2).generate(&mut rng).len();
            assert!(m <= 2);
        }
    }

    #[test]
    fn string_patterns_match_their_alphabet() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[-~ ()xyz0-9+*&|^]{0,48}".generate(&mut rng);
            assert!(s.chars().count() <= 48);
            assert!(s.chars().all(|c| "-~ ()xyz+*&|^".contains(c) || c.is_ascii_digit()));
            let t = ".{0,64}".generate(&mut rng);
            assert!(t.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, assertions, and `?` together.
        #[test]
        fn macro_machinery_works(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            if b {
                prop_assert_ne!(a, 100);
            }
            prop_assert_eq!(a, a, "reflexivity of {}", a);
        }
    }
}
