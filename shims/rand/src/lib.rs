//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand 0.8` it actually uses: `StdRng`
//! (backed by SplitMix64 — deterministic, seedable, statistically fine
//! for test-corpus generation, *not* cryptographic), the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`), `SeedableRng`, and
//! `seq::SliceRandom` (`choose`, `shuffle`).
//!
//! Determinism contract: for a fixed seed the value stream is stable
//! across platforms and releases of this shim, because generated corpora
//! and golden files depend on it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the shim's stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy {
    /// A uniform draw from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return <$t as Standard>::sample(rng);
                }
                // Modulo draw over a 128-bit word: bias below 2^-64 for
                // any span the workspace uses.
                let draw = u128::sample(rng) % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128, i128 => i128
);

/// Ranges convertible to a uniform sampler (the shim's stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, self.end.dec(), rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Decrement helper for half-open ranges.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}

impl_dec!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw over a type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random element choice and in-place shuffling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i128 = rng.gen_range(-16i128..=16);
            assert!((-16..=16).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
