//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free
//! (poison-ignoring) interface: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s. Poisoned locks are recovered —
//! the workspace's lock-protected state is always valid (caches that
//! may at worst lose an entry), so continuing past a poisoned mutex is
//! sound here.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
