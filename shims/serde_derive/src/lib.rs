//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on public types for
//! downstream consumers, but contains no code that *requires* those
//! bounds (there is no `serde_json` and no generic `T: Serialize` use).
//! With crates.io unreachable, these derives therefore expand to
//! nothing: the attribute stays legal, the trait impls simply are not
//! generated. Hand-written `impl Serialize`/`impl Deserialize` blocks
//! (e.g. on `Ident`) still compile against the trait definitions in the
//! sibling `serde` shim.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
