//! Offline, API-compatible subset of `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is provided, implemented over
//! `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's scoped-thread API). The `scope` function returns
//! `Ok(..)` always — std scopes propagate child panics by panicking on
//! exit, so the `Err` branch of crossbeam's signature is unreachable
//! here — and spawn closures receive a scope handle they can use for
//! nested spawns.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::thread as std_thread;

    pub use std_thread::ScopedJoinHandle;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle
        /// (crossbeam convention) usable for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let total: usize = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let counter = &counter;
                    s.spawn(move |_| counter.fetch_add(1, Ordering::Relaxed))
                })
                .collect();
            let joined: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            joined.len()
        })
        .unwrap();
        assert_eq!(total, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
