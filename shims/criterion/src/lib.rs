//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the benchmark-definition surface the workspace's benches
//! use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` / `iter_batched`, `black_box` — with a
//! simple measurement loop instead of criterion's statistical engine:
//! each benchmark is warmed up once, then timed over a fixed iteration
//! budget, and the mean is printed as
//! `bench: <group>/<id> ... <mean> per iter (<iters> iters)`.
//!
//! Set `CRITERION_SHIM_ITERS` to change the measured iteration count
//! (default 30; CI can set 1 for a smoke pass).

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Re-export point so `criterion::BatchSize::SmallInput` resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (the only variant the workspace uses;
    /// the shim treats all variants identically).
    SmallInput,
    /// Larger inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// An opaque benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id rendered from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &u64| n > 0)
        .unwrap_or(30)
}

/// The per-benchmark measurement handle.
pub struct Bencher {
    iters: u64,
    /// Mean time per iteration of the measured routine.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed() / self.iters as u32);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = Some(total / self.iters as u32);
    }
}

fn run_one(label: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { iters, elapsed: None };
    f(&mut bencher);
    match bencher.elapsed {
        Some(mean) => println!("bench: {label} ... {mean:?} per iter ({iters} iters)"),
        None => println!("bench: {label} ... no measurement recorded"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    iters: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Allows longer measurement windows (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.iters, f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.iters, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: shim_iters() }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.iters, f);
        self
    }

    /// Parses CLI arguments (accepted, ignored — the shim has none).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_measurement() {
        let mut b = Bencher { iters: 3, elapsed: None };
        b.iter(|| 1 + 1);
        assert!(b.elapsed.is_some());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { iters: 2, elapsed: None };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed.is_some());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
