//! End-to-end checks of the paper's concrete, citable claims — every
//! worked example from §1–§4 must reproduce exactly.

use mba::expr::{metrics::alternation, Expr, Ident, Valuation};
use mba::linalg::Matrix;
use mba::sig::{table, SignatureVector};
use mba::smt::{CheckOutcome, SmtSolver, SolverProfile};
use mba::solver::Simplifier;

#[test]
fn figure_1_identity_is_simplified_and_proven() {
    // Z3 cannot decide this in an hour (paper Figure 1); after
    // MBA-Solver it is trivial.
    let hard: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
    let simplified = Simplifier::new().simplify(&hard);
    assert_eq!(simplified.to_string(), "x*y");

    for profile in SolverProfile::all() {
        let solver = SmtSolver::new(profile.clone());
        let r = solver.check_equivalence(
            &simplified,
            &"x*y".parse().unwrap(),
            16,
            None,
        );
        assert_eq!(r.outcome, CheckOutcome::Equivalent, "{}", profile.name);
        assert!(r.solved_by_rewriting, "{} needed search", profile.name);
    }
}

#[test]
fn example_1_nullspace_construction() {
    // §2.1 Example 1: the kernel of the truth-table matrix yields
    // x − y = (x⊕y) + 2(x∨¬y) + 2.
    let m = Matrix::from_i128_rows(&[
        vec![0, 0, 0, 1, 1],
        vec![0, 1, 1, 0, 1],
        vec![1, 0, 1, 1, 1],
        vec![1, 1, 0, 1, 1],
    ]);
    let kernel = m.integer_kernel();
    assert_eq!(kernel.len(), 1);

    // The derived identity holds on the two's-complement ring.
    let lhs: Expr = "x - y".parse().unwrap();
    let rhs: Expr = "(x ^ y) + 2*(x | ~y) + 2".parse().unwrap();
    for (x, y) in [(0u64, 0u64), (200, 13), (u64::MAX, 77)] {
        let v = Valuation::new().with("x", x).with("y", y);
        for w in [8, 32, 64] {
            assert_eq!(lhs.eval(&v, w), rhs.eval(&v, w));
        }
    }
    // And MBA-Solver inverts it.
    assert_eq!(Simplifier::new().simplify(&rhs).to_string(), "x-y");
}

#[test]
fn example_2_signature_vector_is_0112() {
    let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
    let vars: Vec<Ident> = e.vars().into_iter().collect();
    let sig = SignatureVector::of_linear(&e, &vars).unwrap();
    assert_eq!(sig.components(), [0, 1, 1, 2]);
    // §4.2: the minterm decomposition gives (¬x∧y) + (x∧¬y) + 2(x∧y),
    // which shares the signature.
    let e2: Expr = "(~x&y) + (x&~y) + 2*(x&y)".parse().unwrap();
    let sig2 = SignatureVector::of_linear(&e2, &vars).unwrap();
    assert_eq!(sig, sig2);
    // §4.3: the normalized basis yields x + y.
    assert_eq!(sig.to_normalized_expr(&vars).to_string(), "x+y");
}

#[test]
fn table_5_rows_are_generated_verbatim() {
    let rows = table::two_variable_table();
    let find = |sig: [i128; 4]| {
        rows.iter()
            .find(|r| r.signature.components() == sig)
            .map(|r| r.expression.to_string())
            .expect("row present")
    };
    assert_eq!(find([0, 0, 1, 0]), "x-(x&y)");
    assert_eq!(find([0, 1, 0, 0]), "y-(x&y)");
    assert_eq!(find([0, 1, 1, 1]), "x+y-(x&y)");
    assert_eq!(find([1, 0, 0, 1]), "-x-y+2*(x&y)-1");
    assert_eq!(find([1, 1, 1, 0]), "-(x&y)-1");
}

#[test]
fn section_4_5_common_subexpression_walkthrough() {
    // ((x∧¬y − ¬x∧y) ∨ z) + ((x∧¬y − ¬x∧y) ∧ z) = x − y + z.
    let e: Expr = "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)"
        .parse()
        .unwrap();
    let out = Simplifier::new().simplify(&e);
    assert_eq!(out.to_string(), "x-y+z");
    // Alternation drops from mixed to zero — the paper's whole point.
    assert!(alternation(&e) >= 2);
    assert_eq!(alternation(&out), 0);
}

#[test]
fn final_step_recovers_xor_from_section_4_5() {
    // x + y − 2(x∧y) → x⊕y (alternation 1 → 0).
    let e: Expr = "x + y - 2*(x&y)".parse().unwrap();
    let out = Simplifier::new().simplify(&e);
    assert_eq!(out.to_string(), "x^y");
}

#[test]
fn discussion_not_x_minus_1_is_handled() {
    // §6.1 reports the prototype failing on ¬(x−1) = −x; the opaque
    // abstraction pipeline gets it right.
    let e: Expr = "~(x - 1)".parse().unwrap();
    assert_eq!(Simplifier::new().simplify(&e).to_string(), "-x");
}

#[test]
fn background_hakmem_identities_prove_at_all_profiles() {
    // Equations (2) and (3): x∨y = (x∧¬y)+y and x⊕y = (x∨y)−(x∧y).
    for (lhs, rhs) in [("x | y", "(x & ~y) + y"), ("x ^ y", "(x | y) - (x & y)")] {
        for profile in SolverProfile::all() {
            let solver = SmtSolver::new(profile.clone());
            let r = solver.check_equivalence(
                &lhs.parse().unwrap(),
                &rhs.parse().unwrap(),
                16,
                None,
            );
            assert_eq!(
                r.outcome,
                CheckOutcome::Equivalent,
                "{lhs} == {rhs} with {}",
                profile.name
            );
        }
    }
}
