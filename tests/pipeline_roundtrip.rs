//! Cross-crate round trips: obfuscate → simplify → prove. The full
//! tool chain must compose losslessly for every MBA category.

use std::time::Duration;

use mba::expr::{Expr, Valuation};
use mba::gen::{Corpus, CorpusConfig, ObfuscationKind, Obfuscator};
use mba::smt::{CheckOutcome, SmtSolver, SolverProfile};
use mba::solver::Simplifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn obfuscate_then_simplify_recovers_ground_truth() {
    let obfuscator = Obfuscator::new();
    let simplifier = Simplifier::new();
    let mut rng = StdRng::seed_from_u64(0xE2E);

    for target_src in ["x + y", "x - y", "x ^ y", "x*y", "x + 2*y - z"] {
        let target: Expr = target_src.parse().unwrap();
        for kind in [
            ObfuscationKind::Linear,
            ObfuscationKind::Polynomial,
            ObfuscationKind::NonPolynomial,
        ] {
            let obfuscated = obfuscator.obfuscate(&target, kind, &mut rng);
            let recovered = simplifier.simplify(&obfuscated);
            assert_eq!(
                simplifier.proves_equivalent(&recovered, &target),
                Some(true),
                "{kind} round trip of `{target_src}` returned `{recovered}`"
            );
        }
    }
}

#[test]
fn simplified_corpus_is_solver_friendly() {
    // A miniature Table 6: every simplified sample must be decided
    // within a tight budget by every profile.
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 11,
        per_category: 8,
    });
    let simplifier = Simplifier::new();
    for profile in SolverProfile::all() {
        let solver = SmtSolver::new(profile.clone());
        let mut solved = 0;
        for sample in corpus.samples() {
            let simplified = simplifier.simplify(&sample.obfuscated);
            let r = solver.check_equivalence(
                &simplified,
                &sample.ground_truth,
                16,
                Some(Duration::from_secs(2)),
            );
            if r.outcome == CheckOutcome::Equivalent {
                solved += 1;
            }
            assert!(
                !matches!(r.outcome, CheckOutcome::NotEquivalent(_)),
                "unsound simplification of {sample}"
            );
        }
        assert!(
            solved * 100 >= corpus.len() * 90,
            "{}: only {solved}/{} simplified samples solved",
            profile.name,
            corpus.len()
        );
    }
}

#[test]
fn counterexamples_from_broken_identities_are_genuine() {
    // Corrupt each ground truth by +1 and insist on a verified witness.
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 23,
        per_category: 3,
    });
    let solver = SmtSolver::new(SolverProfile::boolector_style());
    let simplifier = Simplifier::new();
    for sample in corpus.samples() {
        let simplified = simplifier.simplify(&sample.obfuscated);
        let corrupted = sample.ground_truth.clone() + Expr::one();
        let r = solver.check_equivalence(&simplified, &corrupted, 16, Some(Duration::from_secs(5)));
        let CheckOutcome::NotEquivalent(cex) = r.outcome else {
            panic!("corrupted identity not refuted for {sample}");
        };
        let v = cex.to_valuation();
        assert_ne!(
            simplified.eval(&v, 16),
            corrupted.eval(&v, 16),
            "witness {cex} does not separate the sides"
        );
    }
}

#[test]
fn corpus_text_roundtrip_preserves_solvability() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 5,
        per_category: 4,
    });
    let text = corpus.to_text();
    let reloaded = mba::gen::Corpus::from_text(&text).expect("parses");
    let mut rng = StdRng::seed_from_u64(1);
    for (a, b) in corpus.samples().iter().zip(reloaded.samples()) {
        assert_eq!(a.obfuscated, b.obfuscated);
        // Reloaded samples still verify.
        let vars = b.obfuscated.vars();
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        assert_eq!(b.obfuscated.eval(&v, 64), b.ground_truth.eval(&v, 64));
    }
}

#[test]
fn simplifier_is_reusable_and_thread_safe() {
    // One Simplifier shared across threads over one corpus: the lookup
    // table is behind a lock and results stay deterministic.
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 7,
        per_category: 5,
    });
    let simplifier = Simplifier::new();
    let sequential: Vec<Expr> = corpus
        .samples()
        .iter()
        .map(|s| simplifier.simplify(&s.obfuscated))
        .collect();

    let fresh = Simplifier::new();
    let parallel: Vec<Expr> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .samples()
            .iter()
            .map(|s| {
                let fresh = &fresh;
                scope.spawn(move |_| fresh.simplify(&s.obfuscated))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    assert_eq!(sequential, parallel);
}
