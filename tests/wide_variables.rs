//! The block-storage truth-table extension: simplification beyond the
//! paper prototype's variable limit (up to 12 variables).

use mba::expr::{Expr, Ident, Valuation};
use mba::sig::{SignatureVector, TruthTable};
use mba::solver::Simplifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn var_names(n: usize) -> Vec<Ident> {
    (0..n).map(|i| Ident::new(format!("v{i}"))).collect()
}

#[test]
fn eight_variable_linear_mba_normalizes() {
    // Σ over 8 variables with a cancelling pair of wide OR-terms.
    let vars = var_names(8);
    let wide_or = vars
        .iter()
        .skip(1)
        .fold(Expr::var(vars[0].clone()), |acc, v| acc | Expr::var(v.clone()));
    let e = wide_or.clone() + Expr::var("v3") - wide_or;
    let out = Simplifier::new().simplify(&e);
    assert_eq!(out.to_string(), "v3");
}

#[test]
fn ten_variable_signature_roundtrip() {
    let vars = var_names(10);
    // A linear MBA mixing three wide bitwise terms.
    let conj = vars
        .iter()
        .take(10)
        .skip(1)
        .fold(Expr::var(vars[0].clone()), |acc, v| acc & Expr::var(v.clone()));
    let xor = Expr::var("v0") ^ Expr::var("v9");
    let e = Expr::constant(3) * conj.clone() - xor.clone() + Expr::constant(5);
    let sig = SignatureVector::of_linear(&e, &vars).expect("10-var signature");
    assert_eq!(sig.components().len(), 1024);
    let normalized = sig.to_normalized_expr(&vars);

    // Semantic check on random points.
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..16 {
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        for w in [8u32, 64] {
            assert_eq!(e.eval(&v, w), normalized.eval(&v, w));
        }
    }
}

#[test]
fn thirteen_variables_stay_opaque_but_sound() {
    // Past MAX_VARS the simplifier must keep the subtree opaque rather
    // than mis-normalize.
    let vars = var_names(13);
    let wide = vars
        .iter()
        .skip(1)
        .fold(Expr::var(vars[0].clone()), |acc, v| acc | Expr::var(v.clone()));
    let e = wide.clone() + Expr::constant(0);
    let out = Simplifier::new().simplify(&e);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..8 {
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        assert_eq!(e.eval(&v, 64), out.eval(&v, 64));
    }
}

#[test]
fn wide_truth_table_agrees_with_direct_evaluation() {
    let vars = var_names(9);
    let e = (Expr::var("v0") & Expr::var("v5")) ^ (Expr::var("v8") | Expr::var("v2"));
    let tt = TruthTable::of(&e, &vars).expect("9-var table");
    assert_eq!(tt.num_rows(), 512);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..64 {
        let row: usize = rng.gen_range(0..512);
        let mut v = Valuation::new();
        for (j, name) in vars.iter().enumerate() {
            v.set(name.clone(), ((row >> (8 - j)) & 1) as u64);
        }
        assert_eq!(tt.row(row), e.eval(&v, 1) == 1, "row {row}");
    }
}
