//! Workspace-level property tests: the obfuscate→simplify→check chain
//! holds for arbitrary generated targets and seeds.

use mba::expr::{Expr, Valuation};
use mba::gen::{ObfuscationKind, Obfuscator};
use mba::solver::Simplifier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random *simple* targets (the kind obfuscators protect).
fn arb_target() -> impl Strategy<Value = Expr> {
    let var = prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var);
    prop_oneof![
        (var.clone(), var.clone()).prop_map(|(a, b)| a + b),
        (var.clone(), var.clone()).prop_map(|(a, b)| a - b),
        (var.clone(), var.clone()).prop_map(|(a, b)| a ^ b),
        (var.clone(), var.clone()).prop_map(|(a, b)| a & b),
        (var.clone(), var.clone()).prop_map(|(a, b)| a | b),
        (var.clone(), var.clone()).prop_map(|(a, b)| a * b),
        ((-9i128..=9), var.clone()).prop_map(|(c, v)| Expr::constant(c) + v),
        var,
    ]
}

fn arb_kind() -> impl Strategy<Value = ObfuscationKind> {
    prop_oneof![
        Just(ObfuscationKind::Linear),
        Just(ObfuscationKind::Polynomial),
        Just(ObfuscationKind::NonPolynomial),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Obfuscation preserves semantics, simplification preserves
    /// semantics, and the composition ends near the target.
    #[test]
    fn full_chain_preserves_semantics(
        target in arb_target(),
        kind in arb_kind(),
        seed in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let obfuscated = Obfuscator::new().obfuscate(&target, kind, &mut rng);
        let recovered = Simplifier::new().simplify(&obfuscated);

        let v = Valuation::new().with("x", x).with("y", y).with("z", z);
        for w in [8u32, 32, 64] {
            let want = target.eval(&v, w);
            prop_assert_eq!(obfuscated.eval(&v, w), want,
                "obfuscation changed `{}` at width {}", target, w);
            prop_assert_eq!(recovered.eval(&v, w), want,
                "simplification changed `{}` -> `{}` at width {}",
                obfuscated, recovered, w);
        }
    }

    /// The recovered form is never more complex than the obfuscation.
    #[test]
    fn recovery_reduces_alternation(
        target in arb_target(),
        kind in arb_kind(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let obfuscated = Obfuscator::new().obfuscate(&target, kind, &mut rng);
        let simplifier = Simplifier::new();
        let d = simplifier.simplify_detailed(&obfuscated);
        prop_assert!(
            d.output_metrics.alternation <= d.input_metrics.alternation,
            "alternation grew on `{}`", obfuscated
        );
        // For obfuscations of these simple targets the certificate must
        // close the loop completely.
        prop_assert_eq!(
            simplifier.proves_equivalent(&d.output, &target),
            Some(true),
            "`{}` not recovered from `{}`", target, d.output
        );
    }
}
