//! Cross-tool behaviour (a miniature Table 7): SSPAM is sound but
//! narrow, Syntia is broad but unsound, MBA-Solver is both sound and
//! broad — and the differences are observable, not just asserted.

use mba::baselines::{Sspam, Syntia, SyntiaConfig};
use mba::expr::{metrics::alternation, Expr, Valuation};
use mba::gen::{Corpus, CorpusConfig};
use mba::solver::Simplifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 0x7AB1E7,
        per_category: 10,
    })
}

fn equivalent_by_sampling(a: &Expr, b: &Expr, rng: &mut StdRng) -> bool {
    let vars: Vec<_> = a.vars().union(&b.vars()).cloned().collect();
    (0..24).all(|_| {
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        a.eval(&v, 64) == b.eval(&v, 64) && a.eval(&v, 8) == b.eval(&v, 8)
    })
}

#[test]
fn sspam_is_always_sound_but_often_powerless() {
    let sspam = Sspam::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut still_complex = 0;
    let corpus = corpus();
    for sample in corpus.samples() {
        let out = sspam.simplify(&sample.obfuscated);
        // Soundness: never changes semantics.
        assert!(
            equivalent_by_sampling(&out, &sample.obfuscated, &mut rng),
            "SSPAM broke {sample}"
        );
        // Local folds fire, but randomized coefficients escape the
        // pattern library, so substantial MBA structure remains.
        if alternation(&out) * 2 >= alternation(&sample.obfuscated).max(1) {
            still_complex += 1;
        }
    }
    // Narrowness: most samples keep at least half their alternation
    // (the paper's 3% coverage finding at our scale).
    assert!(
        still_complex * 2 >= corpus.len(),
        "SSPAM reduced implausibly many samples ({still_complex}/{} still complex)",
        corpus.len()
    );
}

#[test]
fn syntia_fails_detectably_on_complex_mba() {
    // With a modest budget, synthesis cannot pin down every sample; the
    // tool must *report* imperfection (matches_all_samples == false) or
    // produce something genuinely equivalent.
    let syntia = Syntia::with_config(SyntiaConfig {
        iterations: 400,
        ..SyntiaConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(2);
    let mut check_rng = StdRng::seed_from_u64(3);
    let (mut exact, mut flagged, mut wrong_but_exact_on_samples) = (0usize, 0usize, 0usize);
    for sample in corpus().samples() {
        let result = syntia.synthesize(&sample.obfuscated, &mut rng);
        if !result.matches_all_samples {
            flagged += 1;
            continue;
        }
        if equivalent_by_sampling(&result.expr, &sample.ground_truth, &mut check_rng) {
            exact += 1;
        } else {
            // The Table 7 failure mode: consistent with the samples,
            // wrong in general.
            wrong_but_exact_on_samples += 1;
        }
    }
    // All three behaviours must be observable on a mixed corpus.
    assert!(exact > 0, "Syntia never succeeded");
    assert!(
        flagged + wrong_but_exact_on_samples > 0,
        "Syntia implausibly solved everything"
    );
}

#[test]
fn mba_solver_dominates_both_baselines() {
    let corpus = corpus();
    let sspam = Sspam::new();
    let simplifier = Simplifier::new();

    let mut sspam_alt = 0usize;
    let mut solver_alt = 0usize;
    for sample in corpus.samples() {
        sspam_alt += alternation(&sspam.simplify(&sample.obfuscated));
        let out = simplifier.simplify(&sample.obfuscated);
        solver_alt += alternation(&out);
        // And unlike Syntia, every output carries a proof.
        assert_eq!(
            simplifier.proves_equivalent(&out, &sample.ground_truth),
            Some(true),
            "no certificate for {sample}"
        );
    }
    assert!(
        solver_alt < sspam_alt,
        "MBA-Solver ({solver_alt}) did not beat SSPAM ({sspam_alt}) on residual alternation"
    );
}
