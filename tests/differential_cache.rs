//! Differential tests: the signature cache and the batch API are pure
//! accelerations — they must never change a single output byte.
//!
//! Uses the same 75-sample preview corpus as the Table 6 preview
//! (seed 2024, 25 samples per category), comparing, over every sample
//! and several configurations:
//!
//! - cache-on vs cache-off (`SimplifyConfig::use_cache`);
//! - `Simplifier::simplify_batch` vs a sequential
//!   `simplify_detailed` loop, at several worker counts;
//! - a shared `Arc<SigCache>` across independent simplifiers.

use std::sync::Arc;

use mba_expr::Expr;
use mba_gen::{Corpus, CorpusConfig};
use mba_sig::SigCache;
use mba_solver::{Basis, Simplified, Simplifier, SimplifyConfig};

fn preview_corpus() -> Vec<Expr> {
    Corpus::generate(&CorpusConfig {
        seed: 2024,
        per_category: 25,
    })
    .samples()
    .iter()
    .map(|s| s.obfuscated.clone())
    .collect()
}

/// Rendered output strings of a sequential run under `config`.
fn sequential_outputs(config: &SimplifyConfig, exprs: &[Expr]) -> Vec<String> {
    let simplifier = Simplifier::with_config(config.clone());
    exprs
        .iter()
        .map(|e| simplifier.simplify(e).to_string())
        .collect()
}

fn render(results: &[Simplified]) -> Vec<String> {
    results.iter().map(|r| r.output.to_string()).collect()
}

#[test]
fn cache_on_and_cache_off_are_byte_identical() {
    let exprs = preview_corpus();
    for basis in [Basis::And, Basis::Or, Basis::Adaptive] {
        let on = sequential_outputs(
            &SimplifyConfig {
                use_cache: true,
                basis,
                ..SimplifyConfig::default()
            },
            &exprs,
        );
        let off = sequential_outputs(
            &SimplifyConfig {
                use_cache: false,
                basis,
                ..SimplifyConfig::default()
            },
            &exprs,
        );
        for (i, (a, b)) in on.iter().zip(&off).enumerate() {
            assert_eq!(
                a, b,
                "cache changed output of sample {i} under {basis:?}: `{}`",
                exprs[i]
            );
        }
    }
}

#[test]
fn batch_matches_sequential_on_the_preview_corpus() {
    let exprs = preview_corpus();
    assert_eq!(exprs.len(), 75, "preview corpus scale changed");
    let reference = sequential_outputs(&SimplifyConfig::default(), &exprs);

    let batch_solver = Simplifier::new();
    let batched = batch_solver.simplify_batch(&exprs);
    assert_eq!(batched.len(), exprs.len());
    assert_eq!(
        render(&batched),
        reference,
        "simplify_batch diverged from the sequential loop"
    );
    assert!(
        batch_solver.sig_cache().stats().hits > 0,
        "the preview corpus must produce signature-cache hits"
    );
}

#[test]
fn batch_output_is_independent_of_worker_count() {
    let exprs = preview_corpus();
    let reference = render(&Simplifier::new().simplify_batch_with_jobs(&exprs, 1));
    for jobs in [2, 3, 8, 64] {
        let run = render(&Simplifier::new().simplify_batch_with_jobs(&exprs, jobs));
        assert_eq!(run, reference, "jobs={jobs} changed outputs");
    }
}

#[test]
fn batch_reports_rounds_and_metrics_identically() {
    // Not only the rendered output: the full Simplified record (rounds,
    // bail-outs, metrics) must match the sequential path.
    let exprs = preview_corpus();
    let sequential = Simplifier::new();
    let seq: Vec<Simplified> = exprs
        .iter()
        .map(|e| sequential.simplify_detailed(e))
        .collect();
    let batched = Simplifier::new().simplify_batch_with_jobs(&exprs, 4);
    for (i, (s, b)) in seq.iter().zip(&batched).enumerate() {
        assert_eq!(s.output, b.output, "sample {i} output");
        assert_eq!(s.rounds, b.rounds, "sample {i} rounds");
        assert_eq!(s.bailed, b.bailed, "sample {i} bailed");
        assert_eq!(
            s.output_metrics.alternation, b.output_metrics.alternation,
            "sample {i} alternation"
        );
    }
}

#[test]
fn shared_cache_across_simplifiers_is_transparent() {
    let exprs = preview_corpus();
    let reference = sequential_outputs(&SimplifyConfig::default(), &exprs);
    let cache = Arc::new(SigCache::new());
    // Two simplifiers over the same cache, run one after the other: the
    // second sees a fully warm cache and must still agree byte-for-byte.
    for round in 0..2 {
        let simplifier =
            Simplifier::with_cache(SimplifyConfig::default(), Arc::clone(&cache));
        let outputs = render(&simplifier.simplify_batch_with_jobs(&exprs, 4));
        assert_eq!(outputs, reference, "round {round} diverged");
    }
    let stats = cache.stats();
    assert!(
        stats.hits > stats.misses,
        "warm second pass should be hit-dominated: {stats}"
    );
}

#[test]
fn batch_handles_empty_and_single_inputs() {
    let simplifier = Simplifier::new();
    assert!(simplifier.simplify_batch(&[]).is_empty());
    let one: Vec<Expr> = vec!["x + y - 2*(x&y)".parse().unwrap()];
    let results = simplifier.simplify_batch_with_jobs(&one, 16);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].output.to_string(), "x^y");
}
