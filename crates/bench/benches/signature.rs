//! Criterion bench: the signature-vector kernels (truth tables, Möbius
//! inversion, normalized reconstruction) at 2–4 variables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mba_expr::{Expr, Ident};
use mba_sig::{SignatureVector, TruthTable};

fn vars(n: usize) -> Vec<Ident> {
    ["x", "y", "z", "w"][..n].iter().map(Ident::new).collect()
}

fn linear_input(n: usize) -> Expr {
    match n {
        2 => "2*(x|y) - (~x&y) - (x&~y) + 3*(x^y) - 7".parse(),
        3 => "2*(x|y) - (~x&z) - (x&~y) + 3*(y^z) - 7*(x&y&z) + 5".parse(),
        _ => "(x|y) - (~w&z) + 3*(y^z) - 7*(x&y&w) + 2*(w|~x) - 9".parse(),
    }
    .expect("parses")
}

fn bench_truth_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature/truth-table");
    for n in [2usize, 3, 4] {
        let vs = vars(n);
        let e: Expr = match n {
            2 => "~(x ^ ~y)".parse(),
            3 => "~(x ^ ~y) & (y | z)".parse(),
            _ => "~(x ^ ~y) & (y | z) ^ (w & x)".parse(),
        }
        .expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(n), &(e, vs), |b, (e, vs)| {
            b.iter(|| TruthTable::of(e, vs).expect("bitwise"));
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature/of-linear");
    for n in [2usize, 3, 4] {
        let vs = vars(n);
        let e = linear_input(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(e, vs), |b, (e, vs)| {
            b.iter(|| SignatureVector::of_linear(e, vs).expect("linear"));
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature/normalize");
    for n in [2usize, 3, 4] {
        let vs = vars(n);
        let sig = SignatureVector::of_linear(&linear_input(n), &vs).expect("linear");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(sig, vs),
            |b, (sig, vs)| {
                b.iter(|| sig.to_normalized_expr(vs));
            },
        );
    }
    group.finish();
}

fn bench_moebius(c: &mut Criterion) {
    let vs = vars(4);
    let sig = SignatureVector::of_linear(&linear_input(4), &vs).expect("linear");
    c.bench_function("signature/moebius-4var", |b| {
        b.iter(|| sig.normalized_coefficients());
    });
}

criterion_group!(
    benches,
    bench_truth_tables,
    bench_signatures,
    bench_normalization,
    bench_moebius
);
criterion_main!(benches);
