//! Criterion bench: MBA-Solver simplification latency per MBA category
//! and per alternation level (the statistically rigorous version of
//! Table 8's time column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mba_expr::{metrics::alternation, Expr};
use mba_gen::obfuscate::{ObfuscationKind, Obfuscator, ObfuscatorConfig};
use mba_solver::{Simplifier, SimplifyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixed_cases() -> Vec<(&'static str, Expr)> {
    vec![
        (
            "linear/paper-example",
            "2*(x|y) - (~x&y) - (x&~y)".parse().expect("parses"),
        ),
        (
            "poly/figure-1",
            "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().expect("parses"),
        ),
        (
            "nonpoly/section-4.5",
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)"
                .parse()
                .expect("parses"),
        ),
    ]
}

fn bench_categories(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify/category");
    for (name, expr) in fixed_cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &expr, |b, e| {
            // Fresh simplifier per iteration batch so the lookup table
            // does not trivialize the measurement.
            b.iter_batched(
                Simplifier::new,
                |s| s.simplify(e),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_alternation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify/alternation");
    let mut rng = StdRng::seed_from_u64(7);
    for target in [10usize, 20, 30, 40] {
        let obfuscator = Obfuscator::with_config(ObfuscatorConfig {
            linear_extra_terms: target,
            rewrite_rounds: target / 8,
            ..ObfuscatorConfig::default()
        });
        let kind = if target <= 12 {
            ObfuscationKind::Linear
        } else {
            ObfuscationKind::NonPolynomial
        };
        let truth: Expr = "x + y".parse().expect("parses");
        // Draw until the measured alternation is close to the target.
        let expr = (0..500)
            .map(|_| obfuscator.obfuscate(&truth, kind, &mut rng))
            .find(|e| alternation(e).abs_diff(target) <= target / 8 + 2);
        let Some(expr) = expr else { continue };
        group.bench_with_input(BenchmarkId::from_parameter(target), &expr, |b, e| {
            b.iter_batched(
                Simplifier::new,
                |s| s.simplify(e),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    // With a shared (warm) lookup table, repeat simplification is
    // nearly free — the §4.5 claim.
    let expr: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().expect("parses");
    let warm = Simplifier::new();
    warm.simplify(&expr);
    c.bench_function("simplify/warm-lookup-table", |b| {
        b.iter(|| warm.simplify(&expr));
    });
    let cold_config = SimplifyConfig {
        use_cache: false,
        ..SimplifyConfig::default()
    };
    let cold = Simplifier::with_config(cold_config);
    c.bench_function("simplify/no-lookup-table", |b| {
        b.iter(|| cold.simplify(&expr));
    });
}

criterion_group!(
    benches,
    bench_categories,
    bench_alternation_sweep,
    bench_warm_cache
);
criterion_main!(benches);
