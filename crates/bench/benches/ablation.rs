//! Criterion bench: time-side ablation of MBA-Solver's design choices
//! on a fixed mini-corpus (quality side lives in the
//! `ablation_quality` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mba_gen::{Corpus, CorpusConfig};
use mba_solver::{Basis, Simplifier, SimplifyConfig};

fn mini_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 99,
        per_category: 8,
    })
}

fn bench_config_variants(c: &mut Criterion) {
    let corpus = mini_corpus();
    let variants: Vec<(&str, SimplifyConfig)> = vec![
        ("full", SimplifyConfig::default()),
        (
            "no-final-step",
            SimplifyConfig { final_step: false, ..SimplifyConfig::default() },
        ),
        (
            "no-lookup-table",
            SimplifyConfig { use_cache: false, ..SimplifyConfig::default() },
        ),
        (
            "or-basis",
            SimplifyConfig { basis: Basis::Or, ..SimplifyConfig::default() },
        ),
        (
            "adaptive-basis",
            SimplifyConfig { basis: Basis::Adaptive, ..SimplifyConfig::default() },
        ),
        (
            "single-round",
            SimplifyConfig { max_rounds: 1, ..SimplifyConfig::default() },
        ),
    ];
    let mut group = c.benchmark_group("ablation/simplify-corpus");
    group.sample_size(20);
    for (name, config) in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &config,
            |b, config| {
                b.iter_batched(
                    || Simplifier::with_config(config.clone()),
                    |s| {
                        for sample in corpus.samples() {
                            std::hint::black_box(s.simplify(&sample.obfuscated));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_config_variants);
criterion_main!(benches);
