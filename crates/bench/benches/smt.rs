//! Criterion bench: the SMT substrate on fixed equivalence queries —
//! rewriting-closed queries, small miters, and the three profiles on
//! identical MBA identities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mba_expr::Expr;
use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};

fn bench_rewrite_closed(c: &mut Criterion) {
    let solver = SmtSolver::new(SolverProfile::boolector_style());
    let lhs: Expr = "x + (x&y) - (x&y) + 0".parse().expect("parses");
    let rhs: Expr = "x".parse().expect("parses");
    c.bench_function("smt/rewriting-closes", |b| {
        b.iter(|| {
            let r = solver.check_equivalence(&lhs, &rhs, 8, None);
            assert_eq!(r.outcome, CheckOutcome::Equivalent);
            r
        });
    });
}

fn bench_identity_miters(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt/identity-miter-8bit");
    let cases = [
        ("or-plus-and", "x + y", "(x | y) + (x & y)"),
        ("xor-encoding", "x ^ y", "(x | y) - (x & y)"),
        ("sub-encoding", "x - y", "(x ^ y) - 2*(~x & y)"),
    ];
    for (name, lhs, rhs) in cases {
        let lhs: Expr = lhs.parse().expect("parses");
        let rhs: Expr = rhs.parse().expect("parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(lhs, rhs),
            |b, (lhs, rhs)| {
                let solver = SmtSolver::new(SolverProfile::boolector_style());
                b.iter(|| solver.check_equivalence(lhs, rhs, 8, None));
            },
        );
    }
    group.finish();
}

fn bench_profiles_on_figure1(c: &mut Criterion) {
    // The paper's Figure 1 identity at 4 bits: solvable but non-trivial,
    // a fair profile shoot-out.
    let lhs: Expr = "x*y".parse().expect("parses");
    let rhs: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().expect("parses");
    let mut group = c.benchmark_group("smt/figure1-4bit");
    group.sample_size(20);
    for profile in SolverProfile::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name),
            &profile,
            |b, profile| {
                let solver = SmtSolver::new(profile.clone());
                b.iter(|| {
                    let r = solver.check_equivalence(&lhs, &rhs, 4, None);
                    assert_eq!(r.outcome, CheckOutcome::Equivalent);
                    r
                });
            },
        );
    }
    group.finish();
}

fn bench_counterexample_search(c: &mut Criterion) {
    // SAT direction: find a witness that two expressions differ.
    let lhs: Expr = "x*y + 1".parse().expect("parses");
    let rhs: Expr = "x*y".parse().expect("parses");
    let solver = SmtSolver::new(SolverProfile::z3_style());
    c.bench_function("smt/counterexample-8bit", |b| {
        b.iter(|| {
            let r = solver.check_equivalence(&lhs, &rhs, 8, None);
            assert!(matches!(r.outcome, CheckOutcome::NotEquivalent(_)));
            r
        });
    });
}

criterion_group!(
    benches,
    bench_rewrite_closed,
    bench_identity_miters,
    bench_profiles_on_figure1,
    bench_counterexample_search
);
criterion_main!(benches);
