//! Experiment harness shared by the per-table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library hosts the pieces they share — a
//! dependency-free CLI parser, a parallel corpus runner, aggregate
//! formatting, and an allocation meter for Table 8's memory column.
//!
//! Run e.g.
//!
//! ```text
//! cargo run -p mba-bench --release --bin table2_baseline_solving -- \
//!     --per-category 1000 --timeout-ms 3600000 --width 8
//! ```
//!
//! Defaults are scaled down (100 samples/category, 1 s timeout, 8-bit
//! words) so the whole suite completes on a laptop; the flags restore
//! the paper's full scale.

pub mod alloc_meter;
pub mod cli;
pub mod report;
pub mod runner;

pub use cli::ExperimentConfig;
pub use runner::{
    run_equivalence_checks, simplify_corpus, EquivalenceTask, SimplifyRun, SolveRecord, Verdict,
};
