//! **Table 7**: MBA-Solver vs the peer tools (SSPAM-like, Syntia-like).
//!
//! For each tool: correctness of its output against the ground truth
//! (`Y` equivalent / `N` not equivalent / `O` timeout, decided by the
//! boolector-style profile), average MBA alternation before and after
//! simplification (correct outputs only), and average solving time per
//! solver profile (correct outputs only).

use std::time::Duration;

use mba_baselines::{Sspam, Syntia};
use mba_bench::{report, report::BenchReport, runner::EquivalenceTask, ExperimentConfig, Verdict};
use mba_expr::{metrics::alternation, Expr};
use mba_gen::{Corpus, CorpusConfig, Sample};
use mba_smt::SolverProfile;
use mba_solver::{Simplifier, SimplifyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct ToolRun {
    name: &'static str,
    outputs: Vec<Expr>,
}

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 7: peer-tool comparison (SSPAM-like, Syntia-like, MBA-Solver)");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let samples = corpus.samples();

    // Run the three tools.
    eprintln!("running sspam ...");
    let sspam = Sspam::new();
    let sspam_out: Vec<Expr> = samples.iter().map(|s| sspam.simplify(&s.obfuscated)).collect();

    eprintln!("running syntia ...");
    let syntia = Syntia::new();
    let syntia_out: Vec<Expr> = samples
        .iter()
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ s.id as u64);
            syntia.synthesize(&s.obfuscated, &mut rng).expr
        })
        .collect();

    eprintln!("running mba-solver on {} jobs ...", config.jobs);
    let simplifier = Simplifier::with_config(SimplifyConfig {
        use_cache: config.use_cache,
        ..SimplifyConfig::default()
    });
    let solver_inputs: Vec<Expr> = samples.iter().map(|s| s.obfuscated.clone()).collect();
    let solver_run = mba_bench::simplify_corpus(&simplifier, &solver_inputs, config.jobs);
    let solver_out: Vec<Expr> = solver_run.outputs();

    let runs = [
        ToolRun { name: "SSPAM", outputs: sspam_out },
        ToolRun { name: "Syntia", outputs: syntia_out },
        ToolRun { name: "MBA-Solver", outputs: solver_out },
    ];

    println!(
        "{:<12} {:>5} {:>5} {:>5} {:>8}  {:>8} {:>8} {:>7}  {:>10} {:>10} {:>10}",
        "Tool", "Y", "N", "O", "Ratio%", "AltBefore", "AltAfter", "A/B%",
        "z3 (s)", "stp (s)", "boolector"
    );

    let profiles = SolverProfile::all();
    for run in &runs {
        let tasks: Vec<EquivalenceTask> = samples
            .iter()
            .zip(&run.outputs)
            .map(|(s, out)| EquivalenceTask {
                sample_id: s.id,
                kind: s.kind,
                lhs: out.clone(),
                rhs: s.ground_truth.clone(),
            })
            .collect();
        eprintln!("checking {} outputs ...", run.name);
        // Correctness verdicts via the strongest profile.
        let verdicts = mba_bench::run_equivalence_checks(
            &tasks,
            &SolverProfile::boolector_style(),
            config.width,
            config.timeout(),
            config.threads,
        );
        let y = verdicts.iter().filter(|r| r.verdict == Verdict::Solved).count();
        let n = verdicts.iter().filter(|r| r.verdict == Verdict::Refuted).count();
        let o = verdicts.iter().filter(|r| r.verdict == Verdict::Timeout).count();

        // Alternation before/after over the correctly simplified set.
        let correct: Vec<usize> = verdicts
            .iter()
            .filter(|r| r.verdict == Verdict::Solved)
            .map(|r| r.sample_id)
            .collect();
        let before = report::mean(
            correct.iter().map(|&i| alternation(&samples[i].obfuscated) as f64),
        );
        let after = report::mean(correct.iter().map(|&i| alternation(&run.outputs[i]) as f64));
        let ratio = if before > 0.0 { 100.0 * after / before } else { 0.0 };

        // Per-profile average solving time over correct outputs.
        let correct_tasks: Vec<EquivalenceTask> = correct
            .iter()
            .map(|&i| tasks[i].clone())
            .collect();
        let mut avg_times = [0.0f64; 3];
        for (slot, profile) in avg_times.iter_mut().zip(&profiles) {
            let records = mba_bench::run_equivalence_checks(
                &correct_tasks,
                profile,
                config.width,
                Duration::from_millis(config.timeout_ms),
                config.threads,
            );
            *slot = report::mean(records.iter().map(|r| r.elapsed.as_secs_f64()));
        }

        println!(
            "{:<12} {:>5} {:>5} {:>5} {:>7.1}%  {:>8.1} {:>8.1} {:>6.1}%  {:>10.4} {:>10.4} {:>10.4}",
            run.name,
            y,
            n,
            o,
            100.0 * y as f64 / samples.len().max(1) as f64,
            before,
            after,
            ratio,
            avg_times[0],
            avg_times[1],
            avg_times[2],
        );
    }

    println!(
        "\nMBA-Solver signature cache: {} | batch wall-clock: {:.3}s",
        solver_run.cache,
        solver_run.wall_clock.as_secs_f64()
    );
    let mut telemetry = BenchReport::new("table7");
    telemetry
        .push_simplify_run(&solver_run)
        .push_int("jobs", config.jobs as u64)
        .push_int("cache_enabled", u64::from(config.use_cache));
    match telemetry.write() {
        Ok(path) => eprintln!("telemetry written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }

    // Guard against silently dropping categories.
    let _: &[Sample] = samples;
}
