//! **Figure 4**: per-solver solving-time distribution over the corpus,
//! rendered as text histograms (most mass should sit at `timeout` for
//! the original MBA — the paper's observation).

use mba_bench::{report, runner::EquivalenceTask, ExperimentConfig, Verdict};
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;

const BUCKETS: [&str; 6] = ["< 1 ms", "1-10 ms", "10-100 ms", "0.1-1 s", ">= 1 s", "timeout"];

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Figure 4: solving-time distribution on original MBA");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .map(|s| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: s.obfuscated.clone(),
            rhs: s.ground_truth.clone(),
        })
        .collect();

    for profile in SolverProfile::all() {
        eprintln!("running {} ...", profile.name);
        let records = mba_bench::run_equivalence_checks(
            &tasks,
            &profile,
            config.width,
            config.timeout(),
            config.threads,
        );
        let mut counts = vec![0usize; BUCKETS.len()];
        for r in &records {
            let bucket = report::time_bucket(r.elapsed, r.verdict == Verdict::Timeout);
            let idx = BUCKETS.iter().position(|&b| b == bucket).expect("known bucket");
            counts[idx] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        println!("--- {} ---", profile.name);
        for (label, &count) in BUCKETS.iter().zip(&counts) {
            println!("{}", report::histogram_line(label, count, max, 40));
        }
        let avg = report::mean(records.iter().map(|r| r.elapsed.as_secs_f64()));
        println!("average time per case (incl. timeouts): {avg:.3} s\n");
    }
}
