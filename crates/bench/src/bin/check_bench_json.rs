//! CI validator for emitted telemetry: every `BENCH_*.json` passed on
//! the command line (or found in the current directory when no
//! arguments are given) must parse as JSON and contain no non-finite
//! numbers — including `null`, which is the report writer's last-resort
//! spelling of a non-finite float, so a `null` in an emitted file means
//! a producer leaked `inf`/`NaN` into an aggregate. The `obs-smoke` CI
//! job runs this over the artifacts of a live serve + loadgen session.
//!
//! Exits 0 when every file is clean, 1 otherwise (including when no
//! file was checked at all — a silently-empty run must not pass).

use std::path::PathBuf;
use std::process::ExitCode;

use mba_obs::json::{find_non_finite, parse_json};

fn bench_files_in_cwd() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(".")
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("unparseable: {e}"))?;
    match find_non_finite(&doc) {
        None => Ok(()),
        Some(at) => Err(format!("non-finite value at {at}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let files = if args.is_empty() { bench_files_in_cwd() } else { args };
    if files.is_empty() {
        eprintln!("check_bench_json: no BENCH_*.json files to check");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match check(path) {
            Ok(()) => println!("ok   {}", path.display()),
            Err(why) => {
                failed = true;
                eprintln!("FAIL {}: {why}", path.display());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
