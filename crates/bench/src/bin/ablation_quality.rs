//! **Ablation (quality)**: how much each MBA-Solver design choice
//! contributes — lookup table, final-step optimization, ∧- vs ∨-basis,
//! and round count — measured as output alternation, output length,
//! simplification time, and the share of outputs the boolector-style
//! profile can then solve instantly.
//!
//! Complements the Criterion `ablation` bench (which measures time
//! only) with the quality dimension DESIGN.md calls out.

use std::time::{Duration, Instant};

use mba_bench::{report, runner::EquivalenceTask, ExperimentConfig, Verdict};
use mba_expr::metrics::alternation;
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;
use mba_solver::{Basis, Simplifier, SimplifyConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Ablation: contribution of MBA-Solver design choices");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category.min(200),
    });

    let variants: Vec<(&str, SimplifyConfig)> = vec![
        ("full (default)", SimplifyConfig::default()),
        (
            "no final-step opt",
            SimplifyConfig { final_step: false, ..SimplifyConfig::default() },
        ),
        (
            "no lookup table",
            SimplifyConfig { use_cache: false, ..SimplifyConfig::default() },
        ),
        (
            "or-basis",
            SimplifyConfig { basis: Basis::Or, ..SimplifyConfig::default() },
        ),
        (
            "adaptive-basis",
            SimplifyConfig { basis: Basis::Adaptive, ..SimplifyConfig::default() },
        ),
        (
            "single round",
            SimplifyConfig { max_rounds: 1, ..SimplifyConfig::default() },
        ),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>14}",
        "variant", "avg alt", "avg length", "time (ms)", "solved fast %"
    );

    for (name, cfg) in variants {
        let simplifier = Simplifier::with_config(cfg);
        let start = Instant::now();
        let outputs: Vec<_> = corpus
            .samples()
            .iter()
            .map(|s| simplifier.simplify(&s.obfuscated))
            .collect();
        let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0 / corpus.len() as f64;

        let avg_alt = report::mean(outputs.iter().map(|o| alternation(o) as f64));
        let avg_len = report::mean(outputs.iter().map(|o| o.to_string().len() as f64));

        // "Solved fast": equivalence closes within a tight budget.
        let tasks: Vec<EquivalenceTask> = corpus
            .samples()
            .iter()
            .zip(&outputs)
            .map(|(s, out)| EquivalenceTask {
                sample_id: s.id,
                kind: s.kind,
                lhs: out.clone(),
                rhs: s.ground_truth.clone(),
            })
            .collect();
        let records = mba_bench::run_equivalence_checks(
            &tasks,
            &SolverProfile::boolector_style(),
            config.width,
            Duration::from_millis(100),
            config.threads,
        );
        let fast = records.iter().filter(|r| r.verdict == Verdict::Solved).count();

        println!(
            "{:<20} {:>12.2} {:>12.1} {:>12.3} {:>13.1}%",
            name,
            avg_alt,
            avg_len,
            elapsed_ms,
            100.0 * fast as f64 / corpus.len().max(1) as f64,
        );
    }
}
