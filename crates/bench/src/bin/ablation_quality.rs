//! **Ablation (quality)**: how much each MBA-Solver design choice
//! contributes — lookup table, final-step optimization, ∧- vs ∨-basis,
//! and round count — measured as output alternation, output length,
//! simplification time, and the share of outputs the boolector-style
//! profile can then solve instantly.
//!
//! Complements the Criterion `ablation` bench (which measures time
//! only) with the quality dimension DESIGN.md calls out.

use std::time::Duration;

use mba_bench::{report, report::BenchReport, runner::EquivalenceTask, ExperimentConfig, Verdict};
use mba_expr::{metrics::alternation, Expr};
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;
use mba_solver::{Basis, Simplifier, SimplifyConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Ablation: contribution of MBA-Solver design choices");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category.min(200),
    });

    let variants: Vec<(&str, SimplifyConfig)> = vec![
        ("full (default)", SimplifyConfig::default()),
        (
            "no final-step opt",
            SimplifyConfig { final_step: false, ..SimplifyConfig::default() },
        ),
        (
            "no lookup table",
            SimplifyConfig { use_cache: false, ..SimplifyConfig::default() },
        ),
        (
            "or-basis",
            SimplifyConfig { basis: Basis::Or, ..SimplifyConfig::default() },
        ),
        (
            "adaptive-basis",
            SimplifyConfig { basis: Basis::Adaptive, ..SimplifyConfig::default() },
        ),
        (
            "single round",
            SimplifyConfig { max_rounds: 1, ..SimplifyConfig::default() },
        ),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "variant", "avg alt", "avg length", "time (ms)", "cache hit %", "solved fast %"
    );

    let inputs: Vec<Expr> = corpus
        .samples()
        .iter()
        .map(|s| s.obfuscated.clone())
        .collect();
    let mut telemetry = BenchReport::new("ablation");
    telemetry
        .push_int("samples", corpus.len() as u64)
        .push_int("jobs", config.jobs as u64);
    for (name, cfg) in variants {
        let simplifier = Simplifier::with_config(SimplifyConfig {
            use_cache: cfg.use_cache && config.use_cache,
            ..cfg
        });
        let run = mba_bench::simplify_corpus(&simplifier, &inputs, config.jobs);
        let outputs = run.outputs();
        let elapsed_ms = run.wall_clock.as_secs_f64() * 1000.0 / corpus.len() as f64;

        let avg_alt = report::mean(outputs.iter().map(|o| alternation(o) as f64));
        let avg_len = report::mean(outputs.iter().map(|o| o.to_string().len() as f64));

        // "Solved fast": equivalence closes within a tight budget.
        let tasks: Vec<EquivalenceTask> = corpus
            .samples()
            .iter()
            .zip(&outputs)
            .map(|(s, out)| EquivalenceTask {
                sample_id: s.id,
                kind: s.kind,
                lhs: out.clone(),
                rhs: s.ground_truth.clone(),
            })
            .collect();
        let records = mba_bench::run_equivalence_checks(
            &tasks,
            &SolverProfile::boolector_style(),
            config.width,
            Duration::from_millis(100),
            config.threads,
        );
        let fast = records.iter().filter(|r| r.verdict == Verdict::Solved).count();

        println!(
            "{:<20} {:>12.2} {:>12.1} {:>12.3} {:>11.1}% {:>13.1}%",
            name,
            avg_alt,
            avg_len,
            elapsed_ms,
            100.0 * run.cache.hit_rate(),
            100.0 * fast as f64 / corpus.len().max(1) as f64,
        );

        let slug: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        telemetry
            .push_float(
                &format!("{slug}_wall_clock_s"),
                run.wall_clock.as_secs_f64(),
            )
            .push_float(&format!("{slug}_cache_hit_rate"), run.cache.hit_rate());
    }

    match telemetry.write() {
        Ok(path) => eprintln!("telemetry written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}
