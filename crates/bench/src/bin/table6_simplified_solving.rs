//! **Table 6**: solver performance *after* MBA-Solver simplification —
//! the paper's headline positive result.
//!
//! Every corpus sample is first simplified by `mba-solver`; the query
//! is then `simplified == ground_truth`.

use mba_bench::{report, report::BenchReport, runner::EquivalenceTask, ExperimentConfig};
use mba_expr::Expr;
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;
use mba_solver::{Simplifier, SimplifyConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 6: SMT solving after MBA-Solver simplification");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let simplifier = Simplifier::with_config(SimplifyConfig {
        use_cache: config.use_cache,
        ..SimplifyConfig::default()
    });
    eprintln!(
        "simplifying {} samples on {} jobs ...",
        corpus.len(),
        config.jobs
    );
    let inputs: Vec<Expr> = corpus
        .samples()
        .iter()
        .map(|s| s.obfuscated.clone())
        .collect();
    let run = mba_bench::simplify_corpus(&simplifier, &inputs, config.jobs);
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .zip(run.outputs())
        .map(|(s, simplified)| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: simplified,
            rhs: s.ground_truth.clone(),
        })
        .collect();

    let profiles = SolverProfile::all();
    let mut per_profile = Vec::new();
    for profile in &profiles {
        eprintln!("running {} ...", profile.name);
        per_profile.push(mba_bench::run_equivalence_checks(
            &tasks,
            profile,
            config.width,
            config.timeout(),
            config.threads,
        ));
    }

    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    print!("{}", report::solver_table(&names, &per_profile));

    let lookup = simplifier.cache_stats();
    println!("\nMBA-Solver lookup table: {lookup}");
    println!(
        "signature cache: {} | batch wall-clock: {:.3}s",
        run.cache,
        run.wall_clock.as_secs_f64()
    );

    let mut telemetry = BenchReport::new("table6");
    telemetry
        .push_simplify_run(&run)
        .push_int("jobs", config.jobs as u64)
        .push_int("cache_enabled", u64::from(config.use_cache))
        .push_int("lookup_table_hits", lookup.hits)
        .push_int("lookup_table_misses", lookup.misses)
        .push_float("lookup_table_hit_rate", lookup.hit_rate())
        // Where did simplification time go, stage by stage? The
        // simplifier recorded spans into its registry during the batch.
        .push_stage_breakdown(&simplifier.metrics().snapshot());
    for (name, records) in names.iter().zip(&per_profile) {
        for kind in report::CATEGORIES {
            let prefix = format!("{name}_{kind}").to_lowercase().replace([' ', '-'], "_");
            telemetry.push_aggregate(&prefix, &report::aggregate(records, kind));
        }
    }
    match telemetry.write() {
        Ok(path) => eprintln!("telemetry written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}
