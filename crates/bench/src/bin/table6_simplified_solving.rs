//! **Table 6**: solver performance *after* MBA-Solver simplification —
//! the paper's headline positive result.
//!
//! Every corpus sample is first simplified by `mba-solver`; the query
//! is then `simplified == ground_truth`.

use mba_bench::{report, runner::EquivalenceTask, ExperimentConfig};
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;
use mba_solver::Simplifier;

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 6: SMT solving after MBA-Solver simplification");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let simplifier = Simplifier::new();
    eprintln!("simplifying {} samples ...", corpus.len());
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .map(|s| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: simplifier.simplify(&s.obfuscated),
            rhs: s.ground_truth.clone(),
        })
        .collect();

    let profiles = SolverProfile::all();
    let mut per_profile = Vec::new();
    for profile in &profiles {
        eprintln!("running {} ...", profile.name);
        per_profile.push(mba_bench::run_equivalence_checks(
            &tasks,
            profile,
            config.width,
            config.timeout(),
            config.threads,
        ));
    }

    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    print!("{}", report::solver_table(&names, &per_profile));

    let (hits, misses) = simplifier.cache_stats();
    println!("\nMBA-Solver lookup table: {hits} hits, {misses} misses");
}
