//! **Table 2**: solver performance on the *original* (unsimplified)
//! MBA identity equations — the paper's headline negative result.
//!
//! For each solver profile and each sample, the query is
//! `obfuscated == ground_truth` at the configured width; solved-count,
//! time range and mean are reported per category.

use mba_bench::{report, runner::EquivalenceTask, ExperimentConfig};
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 2: SMT solver performance on original MBA equations");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .map(|s| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: s.obfuscated.clone(),
            rhs: s.ground_truth.clone(),
        })
        .collect();

    let profiles = SolverProfile::all();
    let mut per_profile = Vec::new();
    for profile in &profiles {
        eprintln!("running {} ...", profile.name);
        per_profile.push(mba_bench::run_equivalence_checks(
            &tasks,
            profile,
            config.width,
            config.timeout(),
            config.threads,
        ));
    }

    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    print!("{}", report::solver_table(&names, &per_profile));
}
