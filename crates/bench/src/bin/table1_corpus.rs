//! **Table 1**: complexity distribution of the MBA corpus — min / max /
//! average of the five §3.1 metrics for each category.

use mba_bench::ExperimentConfig;
use mba_expr::Metrics;
use mba_gen::{Corpus, CorpusConfig};

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 1: complexity distribution of the MBA corpus");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });

    let metric_names = [
        "Num of Variables",
        "MBA Alternation",
        "MBA Length",
        "Number of Terms",
        "Coefficients",
    ];

    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "Metrics", "Linear MBA", "Poly MBA", "Non-poly MBA"
    );
    println!(
        "{:<18} {:>8}{:>8}{:>8} {:>8}{:>8}{:>8} {:>8}{:>8}{:>8}",
        "", "Min", "Max", "Avg", "Min", "Max", "Avg", "Min", "Max", "Avg"
    );

    for (mi, name) in metric_names.iter().enumerate() {
        print!("{name:<18}");
        for kind in mba_bench::report::CATEGORIES {
            let values: Vec<f64> = corpus
                .by_kind(kind)
                .map(|s| metric_value(&Metrics::of(&s.obfuscated), mi))
                .collect();
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(0.0, f64::max);
            let avg = mba_bench::report::mean(values.iter().copied());
            print!(" {min:>8.0}{max:>8.0}{avg:>8.1}");
        }
        println!();
    }

    println!(
        "\ncorpus: {} samples ({} per category requested)",
        corpus.len(),
        config.per_category
    );
}

fn metric_value(m: &Metrics, index: usize) -> f64 {
    match index {
        0 => m.num_vars as f64,
        1 => m.alternation as f64,
        2 => m.length as f64,
        3 => m.num_terms as f64,
        _ => m.max_coefficient as f64,
    }
}
