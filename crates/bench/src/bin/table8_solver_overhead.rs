//! **Table 8**: MBA-Solver's own time and memory cost as input
//! complexity (MBA alternation) grows.
//!
//! Expressions are generated at target alternation levels 10/20/30/40;
//! for each level we report mean simplification time and mean peak heap
//! growth per expression, measured by a counting global allocator.

use std::time::Instant;

use mba_bench::alloc_meter::{self, CountingAllocator};
use mba_bench::ExperimentConfig;
use mba_expr::{metrics::alternation, Expr};
use mba_gen::{ObfuscationKind, Obfuscator};
use mba_solver::Simplifier;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Table 8: MBA-Solver overhead vs input MBA alternation");
    println!("({})\n", config.banner());

    let per_level = config.per_category.clamp(10, 200);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let obfuscator = Obfuscator::new();
    let targets = [10usize, 20, 30, 40];

    println!(
        "{:<24} {:>12} {:>14} {:>12}",
        "Alternation (target±3)", "samples", "time (ms)", "memory (KB)"
    );

    for &target in &targets {
        // Generate expressions whose measured alternation lands near the
        // target by re-drawing with progressively heavier knobs.
        let mut inputs: Vec<Expr> = Vec::new();
        let mut attempts = 0usize;
        while inputs.len() < per_level && attempts < per_level * 400 {
            attempts += 1;
            let kind = if target <= 15 {
                ObfuscationKind::Linear
            } else {
                ObfuscationKind::NonPolynomial
            };
            let truth: Expr = ["x+y", "x-y+z", "x^y", "2*x+y"][attempts % 4].parse().expect("parses");
            let candidate = obfuscator.obfuscate(&truth, kind, &mut rng);
            let alt = alternation(&candidate);
            if alt.abs_diff(target) <= 3 {
                inputs.push(candidate);
            }
        }
        if inputs.is_empty() {
            println!("{target:<24} {:>12} (no expressions at this level)", 0);
            continue;
        }

        // Fresh simplifier per level: the lookup table should not carry
        // work across levels.
        let simplifier = Simplifier::new();
        let mut total_ms = 0.0f64;
        let mut total_peak_kb = 0.0f64;
        for e in &inputs {
            let baseline = alloc_meter::reset_peak();
            let start = Instant::now();
            let out = simplifier.simplify(e);
            total_ms += start.elapsed().as_secs_f64() * 1000.0;
            total_peak_kb += alloc_meter::peak_since(baseline) as f64 / 1024.0;
            std::hint::black_box(out);
        }
        println!(
            "{:<24} {:>12} {:>14.3} {:>12.1}",
            target,
            inputs.len(),
            total_ms / inputs.len() as f64,
            total_peak_kb / inputs.len() as f64,
        );
    }
}
