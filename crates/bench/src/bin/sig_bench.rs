//! **Signature-extraction microbenchmark**: scalar tree-walking truth
//! tables vs the bit-parallel batch evaluation engine, and the SiMBA
//! corner-recovery fast path vs the classic basis solve.
//!
//! For each variable count `t` in `2..=max_vars` the bench builds one
//! deterministic pure-bitwise expression over `v0..v{t-1}`, extracts its
//! truth table with both [`TruthTable::of_scalar`] (one tree walk per
//! row) and [`TruthTable::of`] (one tape pass per 64 rows), checks the
//! two tables are identical, and reports rows/second for each path plus
//! the speedup. A second section builds one deterministic *linear* MBA
//! per `t` and times two ways of recovering its ∧-basis coefficients:
//! the SiMBA fast path (`2^t` corner evaluations + Möbius inversion,
//! [`mba_sig::simba::recover_coefficients`]) against the classic basis
//! solve ([`SignatureVector::solve_in_basis`] over the full ∧-basis —
//! a `2^t × 2^t` rational linear system, the approach the fast path
//! displaces), after checking both recover the same coefficients and
//! that the fast route renders byte-identical to `to_normalized_expr`.
//! A simplifier pass over the same corpus reports the fast-path hit
//! rate from the process-global counters. Results land in
//! `BENCH_sig.json` for `check_bench_json` and CI trend diffing.
//!
//! Per variable count the report also carries the hash-consed arena's
//! warm-lookup column (`tNN_interned_rows_per_s` — an id-keyed
//! [`mba_sig::SigCache::table_of_id`] hit, i.e. what a repeat skeleton
//! costs once interning has seen it — plus `tNN_interned_speedup` over
//! recomputing the table), a `tNN_cycles_per_task` estimate (elapsed ×
//! the `/proc/cpuinfo` clock estimate), and the exact
//! `tNN_instrs_per_task` tape-op count (`program.len() × ⌈2^t/64⌉`).
//! After the simplifier pass, arena interning totals (`arena_nodes`,
//! `interned_hits`, `interning_hit_rate`, `arena_bytes`) land in the
//! report and, via [`mba_sig::publish_arena_metrics`], in the obs
//! registry.
//!
//! A final synthesis-tier section measures the candidate-evaluation
//! engine (wide [`EvalProgram::eval_bits_wide`] blocks of 256 rows vs
//! four narrow `eval_bits` passes over the same candidate-sized tapes:
//! `synth_{narrow,wide}_rows_per_s`, `synth_wide_speedup`) and runs the
//! full simplifier over a residual corpus — parity opaque zeros the
//! algebraic tiers cannot cancel — reporting the `synth.*` counter
//! deltas, `synth_candidates_per_s`, and the recovery rate: the
//! fraction of corpus entries the algebraic pipeline left unreduced
//! (synthesis off) for which the synthesis tier found a strictly
//! smaller equivalent.
//!
//! A BDD section sweeps `t = 8..=16` independently of `--max-vars`:
//! per `t` it times the ROBDD canonicalization route (Expr → BDD →
//! Expr, [`mba_bdd::canonicalize`]) in truth-table-equivalent rows/sec
//! (`tNN_bdd_rows_per_s` — `2^t` rows per call), demonstrating the
//! column that keeps going after the `2^t`-row tiers stop at `t = 12`.
//! The `bdd.{nodes,apply_hits,canonicalizations}` counter deltas land
//! in the report and, via [`mba_bdd::publish_bdd_metrics`], in the obs
//! registry.
//!
//! The binary exits non-zero if the engine counters report zero tape
//! compiles — i.e. if the bit-parallel path silently stopped being
//! exercised — if the simplifier pass records a zero fast-path hit
//! rate, if the arena records zero interning hits, if the wide
//! candidate evaluator fails to beat the narrow interpreter by 2x, if
//! the synthesis pass records no accepted substitution, if the
//! residual recovery rate falls below 30%, if the BDD sweep records
//! zero canonicalizations, or if the BDD column fails to post a
//! positive finite rate at `t = 12` (the last size the truth-table
//! tiers can still reach).

use std::time::Instant;

use mba_bdd::{bdd_stats, publish_bdd_metrics};
use mba_bench::report::BenchReport;
use mba_expr::{BinOp, EvalProgram, Expr, ExprArena, Ident, UnOp, WIDE_LANES};
use mba_gen::{Corpus, CorpusConfig};
use mba_sig::{
    publish_arena_metrics, publish_eval_engine_metrics, simba, SigCache, SignatureVector,
    TruthTable,
};
use mba_solver::{Simplifier, SimplifyConfig};
use mba_synth::{publish_synth_metrics, synth_stats};

/// Bench-local knobs (the shared [`mba_bench::ExperimentConfig`] flags
/// are corpus-oriented and do not fit a microbenchmark).
struct SigBenchConfig {
    /// Timing repetitions per variable count (`--repeats`).
    repeats: usize,
    /// Largest variable count measured (`--max-vars`, 2..=12).
    max_vars: usize,
}

impl SigBenchConfig {
    fn parse(args: &[String]) -> Result<SigBenchConfig, String> {
        let mut config = SigBenchConfig {
            repeats: 3,
            max_vars: 12,
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut take = |name: &str| -> Result<&String, String> {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value\n{}", Self::usage()))
            };
            match flag.as_str() {
                "--repeats" => {
                    config.repeats = parse_num(take("--repeats")?)?;
                    if config.repeats == 0 {
                        return Err("--repeats must be positive".into());
                    }
                }
                "--max-vars" => {
                    config.max_vars = parse_num(take("--max-vars")?)?;
                    if !(2..=12).contains(&config.max_vars) {
                        return Err("--max-vars must be in 2..=12".into());
                    }
                }
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        Ok(config)
    }

    fn usage() -> String {
        "usage: sig_bench [--repeats N] [--max-vars 2..=12]".to_string()
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

/// A deterministic pure-bitwise expression over `vars` with a few
/// operators per variable, cycling through `&`, `^`, `|`, and `~` so
/// every tape opcode is exercised.
fn bench_expr(vars: &[Ident]) -> Expr {
    let mut e = Expr::var(vars[0].as_str());
    for (i, v) in vars.iter().enumerate().skip(1) {
        let v = Expr::var(v.as_str());
        let prev = Expr::var(vars[i - 1].as_str());
        e = match i % 3 {
            0 => Expr::binary(BinOp::And, e, Expr::binary(BinOp::Or, v, prev)),
            1 => Expr::binary(BinOp::Xor, e, Expr::unary(UnOp::Not, v)),
            _ => Expr::binary(BinOp::Or, e, Expr::binary(BinOp::Xor, v, prev)),
        };
    }
    e
}

/// A deterministic linear MBA over `vars`: `2t` bitwise terms with
/// cycling coefficients plus a constant — the shape obfuscated linear
/// expressions actually take, so the route comparison below measures
/// realistic per-term fan-out on the basis side.
fn bench_linear_expr(vars: &[Ident]) -> Expr {
    let t = vars.len();
    let mut terms: Vec<(i128, Expr)> = Vec::new();
    for i in 0..2 * t {
        let a = Expr::var(vars[i % t].as_str());
        let b = Expr::var(vars[(i + 1) % t].as_str());
        let term = match i % 4 {
            0 => Expr::binary(BinOp::And, a, b),
            1 => Expr::binary(BinOp::Or, a, Expr::unary(UnOp::Not, b)),
            2 => Expr::binary(BinOp::Xor, a, b),
            _ => Expr::unary(UnOp::Not, Expr::binary(BinOp::And, a, b)),
        };
        terms.push(((i as i128 % 7) - 3, term));
    }
    terms.push((5, Expr::one()));
    mba_sig::linear_combination(&terms)
}

/// The full ∧-basis over `vars` in the row-index subset order of
/// `recover_coefficients` (bit `t−1−j` selects variable `j`): every
/// non-empty conjunction, then the `−1` constant column.
fn and_basis(t: usize, vars: &[Ident]) -> Vec<Expr> {
    let mut basis = Vec::with_capacity(1 << t);
    for s in 1usize..(1 << t) {
        let mut e: Option<Expr> = None;
        for (j, var) in vars.iter().enumerate().take(t) {
            if s & (1 << (t - 1 - j)) != 0 {
                let v = Expr::var(var.as_str());
                e = Some(match e {
                    None => v,
                    Some(prev) => Expr::binary(BinOp::And, prev, v),
                });
            }
        }
        basis.push(e.expect("s is non-empty"));
    }
    basis.push(Expr::Const(-1));
    basis
}

/// Times `f` over `iters` calls and returns calls/second.
fn calls_per_second<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed().as_secs_f64();
    iters as f64 / elapsed.max(1e-9)
}

/// Times `f` over `iters` calls and returns rows/second for a table of
/// `rows` rows.
fn rows_per_second(rows: usize, iters: usize, mut f: impl FnMut() -> TruthTable) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed().as_secs_f64();
    (rows * iters) as f64 / elapsed.max(1e-9)
}

/// Best-effort CPU clock estimate in Hz from `/proc/cpuinfo`, for the
/// `tNN_cycles_per_task` columns. Falls back to a finite nominal 1 GHz
/// when the pseudo-file is unavailable or unparseable (containers, or
/// non-Linux hosts), so the report never carries NaN/Infinity.
fn cpu_hz_estimate() -> f64 {
    let text = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("cpu MHz") {
            if let Some(value) = rest.split(':').nth(1) {
                if let Ok(mhz) = value.trim().parse::<f64>() {
                    if mhz.is_finite() && mhz > 0.0 {
                        return mhz * 1e6;
                    }
                }
            }
        }
    }
    1e9
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match SigBenchConfig::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!("Signature extraction: scalar vs bit-parallel truth tables");
    println!("(repeats={} max-vars={})\n", config.repeats, config.max_vars);
    println!(
        "{:<6} {:>8} {:>16} {:>16} {:>8} {:>16} {:>8}",
        "vars", "rows", "scalar rows/s", "batch rows/s", "speedup", "interned rows/s", "warm-x"
    );

    let mut report = BenchReport::new("sig");
    report.push_int("repeats", config.repeats as u64);
    report.push_int("max_vars", config.max_vars as u64);

    let cpu_hz = cpu_hz_estimate();
    report.push_float("cpu_hz_estimate", cpu_hz);

    // One arena + id-keyed cache shared across the whole sweep: the
    // interned column measures what a *repeat* skeleton costs once
    // hash-consing has seen its shape — an id lookup plus an Arc clone,
    // no tape pass at all.
    let bench_arena = ExprArena::new();
    let bench_cache = SigCache::new();
    for t in 2..=config.max_vars {
        let vars: Vec<Ident> = (0..t).map(|i| Ident::new(format!("v{i:02}"))).collect();
        let e = bench_expr(&vars);
        let rows = 1usize << t;

        // The two paths must agree before their speed is worth
        // comparing.
        let fast = TruthTable::of(&e, &vars).expect("bench expression is pure bitwise");
        let slow = TruthTable::of_scalar(&e, &vars).expect("bench expression is pure bitwise");
        assert_eq!(
            fast, slow,
            "bit-parallel and scalar truth tables diverge at t={t}"
        );

        // Scale iterations inversely with table size so each
        // measurement covers a comparable row volume.
        let iters = config.repeats * (4096 / rows).max(1);
        let scalar = rows_per_second(rows, iters, || {
            TruthTable::of_scalar(&e, &vars).expect("pure bitwise")
        });
        let batch = rows_per_second(rows, iters, || {
            TruthTable::of(&e, &vars).expect("pure bitwise")
        });
        let speedup = batch / scalar.max(1e-9);

        // Warm id-keyed lookup: intern once, prime the cache entry,
        // then time pure hits. Each hit is sub-microsecond, so use a
        // larger fixed iteration budget than the recompute paths.
        let id = bench_arena.intern(&e);
        let warm = bench_cache
            .table_of_id(&bench_arena, id, &vars)
            .expect("bench expression is pure bitwise");
        assert_eq!(*warm, fast, "cached table diverges at t={t}");
        let warm_iters = config.repeats * 4096;
        let interned_calls = calls_per_second(warm_iters, || {
            bench_cache
                .table_of_id(&bench_arena, id, &vars)
                .expect("pure bitwise")
        });
        let interned = interned_calls * rows as f64;
        let warm_speedup = interned / batch.max(1e-9);

        // Cost-model columns for the recompute path: estimated cycles
        // per truth-table extraction (elapsed × the clock estimate) and
        // the exact tape-op count it executes (`len × ⌈rows/64⌉`
        // bit-parallel instruction dispatches).
        let cycles_per_task = (rows as f64 / batch.max(1e-9)) * cpu_hz;
        let instrs_per_task = (EvalProgram::compile(&e).len() * rows.div_ceil(64)) as u64;

        println!(
            "{t:<6} {rows:>8} {scalar:>16.0} {batch:>16.0} {speedup:>7.1}x {interned:>16.0} {warm_speedup:>7.1}x"
        );
        report.push_float(&format!("t{t:02}_scalar_rows_per_s"), scalar);
        report.push_float(&format!("t{t:02}_batch_rows_per_s"), batch);
        report.push_float(&format!("t{t:02}_speedup"), speedup);
        report.push_float(&format!("t{t:02}_interned_rows_per_s"), interned);
        report.push_float(&format!("t{t:02}_interned_speedup"), warm_speedup);
        report.push_float(&format!("t{t:02}_cycles_per_task"), cycles_per_task);
        report.push_int(&format!("t{t:02}_instrs_per_task"), instrs_per_task);
    }

    // ── BDD canonicalization sweep ──────────────────────────────────
    //
    // Independent of `--max-vars`: the point of this column is exactly
    // that it keeps going where the `2^t`-row tiers stop. Per `t` one
    // canonicalization call covers the whole `2^t`-row semantic space,
    // so calls/s × 2^t is directly comparable to the truth-table
    // rows/s columns above — and for `t ≤ 12` both columns exist side
    // by side in the same report.
    println!("\nBDD canonicalization: Expr -> ROBDD -> Expr, t = 8..=16");
    println!(
        "{:<6} {:>12} {:>16} {:>16}",
        "vars", "rows", "bdd rows/s", "table rows/s"
    );
    let bdd_before = bdd_stats();
    let mut t12_bdd_rows_per_s = f64::NAN;
    for t in 8..=16usize {
        let vars: Vec<Ident> = (0..t).map(|i| Ident::new(format!("v{i:02}"))).collect();
        let e = bench_expr(&vars);
        let rows = 1usize << t;

        // The route must be exact before it is worth timing: at table
        // reach, Expr → BDD → Expr and the truth table must agree. The
        // bench chain's *diagram* stays linear in `t` but its rendered
        // expression does not, so the sweep raises the render budget
        // past the pipeline tier's conservative default.
        let canonicalize = |e: &Expr| {
            mba_bdd::canonicalize_limited(e, mba_bdd::DEFAULT_NODE_LIMIT, 1 << 16)
        };
        let rendered = canonicalize(&e).expect("bench expression is pure bitwise");
        if t <= 12 {
            let table = TruthTable::of(&e, &vars).expect("pure bitwise");
            let rendered_table = TruthTable::of(&rendered, &vars).expect("render is pure bitwise");
            assert_eq!(table, rendered_table, "BDD round-trip diverges at t={t}");
        }

        let iters = config.repeats * 8;
        let bdd_calls = calls_per_second(iters, || {
            canonicalize(&e).expect("pure bitwise")
        });
        let bdd_rows = bdd_calls * rows as f64;
        if t == 12 {
            t12_bdd_rows_per_s = bdd_rows;
        }
        report.push_float(&format!("t{t:02}_bdd_rows_per_s"), bdd_rows);
        if t <= 12 {
            let table_iters = config.repeats * (4096 / rows).max(1);
            let table_rows = rows_per_second(rows, table_iters, || {
                TruthTable::of(&e, &vars).expect("pure bitwise")
            });
            println!("{t:<6} {rows:>12} {bdd_rows:>16.0} {table_rows:>16.0}");
        } else {
            // Past the cap the table column has nothing to post — the
            // BDD column is the only one still standing.
            println!("{t:<6} {rows:>12} {bdd_rows:>16.0} {:>16}", "-");
        }
    }
    let bdd_delta = bdd_stats().since(&bdd_before);
    println!(
        "bdd: {} nodes interned, {} apply hits, {} canonicalizations",
        bdd_delta.nodes, bdd_delta.apply_hits, bdd_delta.canonicalizations
    );
    report.push_int("bdd_nodes", bdd_delta.nodes);
    report.push_int("bdd_apply_hits", bdd_delta.apply_hits);
    report.push_int("bdd_canonicalizations", bdd_delta.canonicalizations);

    // SiMBA route comparison: corner recovery (2^t evaluations +
    // Möbius) vs the classic basis solve (a 2^t × 2^t rational linear
    // system over the full ∧-basis). Both must recover the same
    // coefficients — and the fast route must render byte-identical to
    // the normalized expression — before speed means anything.
    println!("\nCoefficient recovery: SiMBA corner route vs classic basis solve");
    println!(
        "{:<6} {:>8} {:>16} {:>16} {:>10}",
        "vars", "terms", "simba solves/s", "basis solves/s", "speedup"
    );
    // Beyond this the rational Gaussian elimination (O(8^t)) runs for
    // minutes-to-hours per solve; the corner route keeps being timed,
    // the baseline columns are dropped and announced, not silently
    // truncated.
    const MAX_BASIS_SOLVE_VARS: usize = 8;
    let mut linear_corpus = Vec::new();
    for t in 2..=config.max_vars {
        let vars: Vec<Ident> = (0..t).map(|i| Ident::new(format!("v{i:02}"))).collect();
        let e = bench_linear_expr(&vars);

        let sig = SignatureVector::of_linear(&e, &vars).expect("linear by construction");
        let fast = simba::simplify_linear(&e, &vars, 64).expect("linear");
        assert_eq!(
            fast.to_string(),
            sig.to_normalized_expr(&vars).to_string(),
            "fast route render diverges from normalization at t={t}"
        );

        let simba_iters = config.repeats * (1024 / (1usize << t).min(1024)).max(1);
        let simba_rate = calls_per_second(simba_iters, || {
            simba::recover_coefficients(&e, &vars, 64).expect("linear")
        });
        report.push_float(&format!("t{t:02}_simba_per_s"), simba_rate);
        linear_corpus.push(e.clone());

        if t > MAX_BASIS_SOLVE_VARS {
            println!("{t:<6} {:>8} {simba_rate:>16.0} {:>16} {:>10}", 2 * t + 1, "-", "-");
            continue;
        }

        let basis = and_basis(t, &vars);
        let solved = sig
            .solve_in_basis(&basis, &vars)
            .expect("∧-basis is pure bitwise")
            .expect("∧-basis is unimodular, always solves");
        let recovered =
            simba::recover_coefficients(&e, &vars, 64).expect("linear by construction");
        // `solve_in_basis` orders coefficients by basis element
        // (subsets 1.., then −1); `recover_coefficients` puts the −1
        // column at index 0.
        for (s, &c) in recovered.iter().enumerate() {
            let classic = if s == 0 { solved[basis.len() - 1] } else { solved[s - 1] };
            assert_eq!(
                simba::reduce(c, 64),
                simba::reduce(classic, 64),
                "routes recover different coefficients at t={t}, subset {s}"
            );
        }

        // Calibrate the baseline's iteration count off one observed
        // solve so the largest sizes stay affordable.
        let start = Instant::now();
        std::hint::black_box(sig.solve_in_basis(&basis, &vars).unwrap().unwrap());
        let one = start.elapsed().as_secs_f64();
        let basis_iters = ((0.25 * config.repeats as f64 / one.max(1e-7)) as usize)
            .clamp(config.repeats, 512 * config.repeats);
        let basis_rate = calls_per_second(basis_iters, || {
            sig.solve_in_basis(&basis, &vars).unwrap().unwrap()
        });
        let speedup = simba_rate / basis_rate.max(1e-9);

        println!(
            "{t:<6} {:>8} {simba_rate:>16.0} {basis_rate:>16.1} {speedup:>9.1}x",
            2 * t + 1
        );
        report.push_float(&format!("t{t:02}_basis_per_s"), basis_rate);
        report.push_float(&format!("t{t:02}_simba_speedup"), speedup);
    }
    if config.max_vars > MAX_BASIS_SOLVE_VARS {
        println!(
            "(basis-solve baseline capped at t={MAX_BASIS_SOLVE_VARS}: \
             rational elimination over 2^t x 2^t explodes beyond it)"
        );
    }

    // Fast-path hit rate through the full simplifier, from the same
    // process-global counters the pipeline publishes over obs. Every
    // corpus entry is linear, so anything below 1.0 means eligible
    // candidates leaked onto the slow route.
    let before = simba::simba_stats();
    let simplifier = Simplifier::new();
    for e in &linear_corpus {
        std::hint::black_box(simplifier.simplify(e));
    }
    let delta = simba::simba_stats().since(&before);
    let hit_rate = delta.hit_rate();
    println!(
        "\nfast path: {} attempts, {} hits, {} fallbacks (hit rate {:.2})",
        delta.attempts, delta.hits, delta.fallbacks, hit_rate
    );
    report.push_int("simba_attempts", delta.attempts);
    report.push_int("simba_hits", delta.hits);
    report.push_float("simba_hit_rate", hit_rate);

    // Hash-consing totals from the simplifier's own arena over the same
    // corpus: every intern is either a fresh node or a hit on an
    // existing id, so `hits / (hits + nodes)` is the fraction of intern
    // traffic the arena served for free.
    let arena_stats = simplifier.arena().stats();
    let intern_traffic = arena_stats.interned_hits + arena_stats.nodes;
    let interning_hit_rate = arena_stats.interned_hits as f64 / (intern_traffic.max(1)) as f64;
    println!(
        "arena: {} nodes, {} interned hits (hit rate {:.2}), {} bytes",
        arena_stats.nodes, arena_stats.interned_hits, interning_hit_rate, arena_stats.bytes
    );
    report.push_int("arena_nodes", arena_stats.nodes);
    report.push_int("interned_hits", arena_stats.interned_hits);
    report.push_float("interning_hit_rate", interning_hit_rate);
    report.push_int("arena_bytes", arena_stats.bytes);

    // ── Synthesis tier ──────────────────────────────────────────────
    //
    // Candidate-evaluation microbench: the enumerator's pools hold
    // candidate tapes of a handful of ops, so per-call overhead (stack
    // alloc, counter bumps) is a real fraction of each pass. The wide
    // interpreter amortizes it over 4 lanes — 256 truth-table rows per
    // call against `eval_bits`' 64 — and its inner loops
    // autovectorize. Both paths cover the same 256 rows per candidate
    // so the rows/s columns are directly comparable.
    println!("\nSynthesis candidate evaluation: narrow (64-row) vs wide (256-row) passes");
    let candidates: Vec<Expr> = [
        "x", "~x", "x&y", "x^y", "x+y", "x*y+z", "~(x&y)^z", "x+y+z", "(x|y)&~z", "x*(y+z)",
    ]
    .iter()
    .map(|s| s.parse().expect("candidate parses"))
    .collect();
    let programs: Vec<EvalProgram> = candidates.iter().map(EvalProgram::compile).collect();
    let blocks: Vec<Vec<[u64; WIDE_LANES]>> = programs
        .iter()
        .map(|p| {
            (0..p.vars().len())
                .map(|i| {
                    let mut b = [0u64; WIDE_LANES];
                    for (w, lane) in b.iter_mut().enumerate() {
                        *lane = 0x9e37_79b9_7f4a_7c15u64
                            .wrapping_mul((i as u64 + 1) * 7 + w as u64 + 1);
                    }
                    b
                })
                .collect()
        })
        .collect();
    // The narrow path sees the same rows, one 64-row lane at a time.
    let lanes: Vec<Vec<Vec<u64>>> = blocks
        .iter()
        .map(|bs| {
            (0..WIDE_LANES)
                .map(|w| bs.iter().map(|b| b[w]).collect())
                .collect()
        })
        .collect();
    for (p, (b, ls)) in programs.iter().zip(blocks.iter().zip(&lanes)) {
        let wide = p.eval_bits_wide(b);
        for (w, lane) in ls.iter().enumerate() {
            assert_eq!(wide[w], p.eval_bits(lane), "wide and narrow rows diverge");
        }
    }
    let eval_iters = config.repeats * 40_000;
    let synth_rows = (eval_iters * candidates.len() * 64 * WIDE_LANES) as f64;
    let start = Instant::now();
    for _ in 0..eval_iters {
        for (p, ls) in programs.iter().zip(&lanes) {
            for lane in ls {
                std::hint::black_box(p.eval_bits(lane));
            }
        }
    }
    let narrow_rows_per_s = synth_rows / start.elapsed().as_secs_f64().max(1e-9);
    let start = Instant::now();
    for _ in 0..eval_iters {
        for (p, b) in programs.iter().zip(&blocks) {
            std::hint::black_box(p.eval_bits_wide(b));
        }
    }
    let wide_rows_per_s = synth_rows / start.elapsed().as_secs_f64().max(1e-9);
    let wide_speedup = wide_rows_per_s / narrow_rows_per_s.max(1e-9);
    println!(
        "narrow {narrow_rows_per_s:>16.0} rows/s   wide {wide_rows_per_s:>16.0} rows/s   {wide_speedup:.1}x"
    );
    report.push_float("synth_narrow_rows_per_s", narrow_rows_per_s);
    report.push_float("synth_wide_rows_per_s", wide_rows_per_s);
    report.push_float("synth_wide_speedup", wide_speedup);

    // Residual corpus: small ground truths wrapped in parity opaque
    // zeros ((q·(q+1)) ∧ 1 ≡ 0) that the algebraic tiers cannot cancel.
    // The synthesis-off pass establishes the baseline the recovery rate
    // is measured against; the timed synthesis-on pass supplies the
    // `synth.*` counter deltas and candidates/sec.
    let residual = Corpus::generate_residual(&CorpusConfig {
        seed: 0xC0FF_EE00,
        per_category: 48,
    });
    let nosynth_simplifier = Simplifier::with_config(SimplifyConfig {
        use_synthesis: false,
        ..SimplifyConfig::default()
    });
    let baselines: Vec<Expr> = residual
        .samples()
        .iter()
        .map(|s| nosynth_simplifier.simplify(&s.obfuscated))
        .collect();
    let synth_before = synth_stats();
    let synth_simplifier = Simplifier::new();
    let start = Instant::now();
    let synthesized: Vec<Expr> = residual
        .samples()
        .iter()
        .map(|s| synth_simplifier.simplify(&s.obfuscated))
        .collect();
    let synth_elapsed = start.elapsed().as_secs_f64();
    let synth_delta = synth_stats().since(&synth_before);
    let candidates_per_s = synth_delta.candidates as f64 / synth_elapsed.max(1e-9);

    let mut unreduced = 0u64;
    let mut recovered = 0u64;
    for ((sample, base), full) in residual.samples().iter().zip(&baselines).zip(&synthesized) {
        if base.node_count() > sample.ground_truth.node_count() {
            unreduced += 1;
            if full.node_count() < base.node_count() {
                recovered += 1;
            }
        }
    }
    let recovery_rate = recovered as f64 / (unreduced.max(1)) as f64;
    println!(
        "residual corpus: {} cases, {} left unreduced by the algebraic tiers, {} recovered ({:.0}%)",
        residual.samples().len(),
        unreduced,
        recovered,
        100.0 * recovery_rate
    );
    println!(
        "synthesis: {} attempts, {} hits, {} fallbacks, {} candidates ({:.0} candidates/s, {} budget-exhausted)",
        synth_delta.attempts,
        synth_delta.hits,
        synth_delta.fallbacks,
        synth_delta.candidates,
        candidates_per_s,
        synth_delta.budget_exhausted
    );
    report.push_int("synth_residual_cases", residual.samples().len() as u64);
    report.push_int("synth_residual_unreduced", unreduced);
    report.push_int("synth_residual_recovered", recovered);
    report.push_float("synth_recovery_rate", recovery_rate);
    report.push_int("synth_attempts", synth_delta.attempts);
    report.push_int("synth_hits", synth_delta.hits);
    report.push_int("synth_fallbacks", synth_delta.fallbacks);
    report.push_int("synth_candidates", synth_delta.candidates);
    report.push_int("synth_budget_exhausted", synth_delta.budget_exhausted);
    report.push_float("synth_hit_rate", synth_delta.hit_rate());
    report.push_float("synth_candidates_per_s", candidates_per_s);

    // Engine counters, via the same obs bridge the pipeline publishes
    // through. A zero here means the bit-parallel path was never taken
    // and every "batch" number above actually measured something else.
    let registry = mba_obs::MetricsRegistry::new();
    publish_eval_engine_metrics(&registry);
    publish_arena_metrics(simplifier.arena(), &registry);
    publish_synth_metrics(&registry);
    publish_bdd_metrics(&registry);
    let snapshot = registry.snapshot();
    let tape_compiles = snapshot.gauge("eval.tape_compiles");
    let bit_rows = snapshot.gauge("eval.bitparallel.rows");
    report.push_int("tape_compiles", tape_compiles.max(0) as u64);
    report.push_int("bitparallel_rows", bit_rows.max(0) as u64);

    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            std::process::exit(1);
        }
    }

    if tape_compiles < 1 {
        eprintln!("engine reports zero tape compiles: bit-parallel path not exercised");
        std::process::exit(1);
    }
    if hit_rate <= 0.0 {
        eprintln!("fast-path hit rate is zero: SiMBA route not exercised");
        std::process::exit(1);
    }
    if arena_stats.interned_hits < 1 {
        eprintln!("arena reports zero interning hits: hash-consing not exercised");
        std::process::exit(1);
    }
    if !wide_speedup.is_finite() || wide_speedup < 2.0 {
        eprintln!("wide candidate evaluator is only {wide_speedup:.2}x the narrow interpreter (need 2x)");
        std::process::exit(1);
    }
    if synth_delta.hits < 1 {
        eprintln!("synthesis pass accepted zero substitutions on the residual corpus");
        std::process::exit(1);
    }
    if !candidates_per_s.is_finite() || candidates_per_s <= 0.0 {
        eprintln!("synth_candidates_per_s is not a positive finite number: {candidates_per_s}");
        std::process::exit(1);
    }
    if recovery_rate < 0.30 {
        eprintln!(
            "synthesis recovered only {recovered}/{unreduced} residual cases \
             ({:.0}%, need 30%)",
            100.0 * recovery_rate
        );
        std::process::exit(1);
    }
    if bdd_delta.canonicalizations < 1 {
        eprintln!("BDD sweep recorded zero canonicalizations: ROBDD route not exercised");
        std::process::exit(1);
    }
    if !t12_bdd_rows_per_s.is_finite() || t12_bdd_rows_per_s <= 0.0 {
        eprintln!(
            "t12 BDD rate is not a positive finite number ({t12_bdd_rows_per_s}): \
             the BDD column must still be standing where the truth-table tiers stop"
        );
        std::process::exit(1);
    }
}
