//! **Signature-extraction microbenchmark**: scalar tree-walking truth
//! tables vs the bit-parallel batch evaluation engine.
//!
//! For each variable count `t` in `2..=max_vars` the bench builds one
//! deterministic pure-bitwise expression over `v0..v{t-1}`, extracts its
//! truth table with both [`TruthTable::of_scalar`] (one tree walk per
//! row) and [`TruthTable::of`] (one tape pass per 64 rows), checks the
//! two tables are identical, and reports rows/second for each path plus
//! the speedup. Results land in `BENCH_sig.json` for `check_bench_json`
//! and CI trend diffing.
//!
//! The binary exits non-zero if the engine counters report zero tape
//! compiles — i.e. if the bit-parallel path silently stopped being
//! exercised.

use std::time::Instant;

use mba_bench::report::BenchReport;
use mba_expr::{BinOp, Expr, Ident, UnOp};
use mba_sig::{publish_eval_engine_metrics, TruthTable};

/// Bench-local knobs (the shared [`mba_bench::ExperimentConfig`] flags
/// are corpus-oriented and do not fit a microbenchmark).
struct SigBenchConfig {
    /// Timing repetitions per variable count (`--repeats`).
    repeats: usize,
    /// Largest variable count measured (`--max-vars`, 2..=12).
    max_vars: usize,
}

impl SigBenchConfig {
    fn parse(args: &[String]) -> Result<SigBenchConfig, String> {
        let mut config = SigBenchConfig {
            repeats: 3,
            max_vars: 12,
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut take = |name: &str| -> Result<&String, String> {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value\n{}", Self::usage()))
            };
            match flag.as_str() {
                "--repeats" => {
                    config.repeats = parse_num(take("--repeats")?)?;
                    if config.repeats == 0 {
                        return Err("--repeats must be positive".into());
                    }
                }
                "--max-vars" => {
                    config.max_vars = parse_num(take("--max-vars")?)?;
                    if !(2..=12).contains(&config.max_vars) {
                        return Err("--max-vars must be in 2..=12".into());
                    }
                }
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        Ok(config)
    }

    fn usage() -> String {
        "usage: sig_bench [--repeats N] [--max-vars 2..=12]".to_string()
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

/// A deterministic pure-bitwise expression over `vars` with a few
/// operators per variable, cycling through `&`, `^`, `|`, and `~` so
/// every tape opcode is exercised.
fn bench_expr(vars: &[Ident]) -> Expr {
    let mut e = Expr::var(vars[0].as_str());
    for (i, v) in vars.iter().enumerate().skip(1) {
        let v = Expr::var(v.as_str());
        let prev = Expr::var(vars[i - 1].as_str());
        e = match i % 3 {
            0 => Expr::binary(BinOp::And, e, Expr::binary(BinOp::Or, v, prev)),
            1 => Expr::binary(BinOp::Xor, e, Expr::unary(UnOp::Not, v)),
            _ => Expr::binary(BinOp::Or, e, Expr::binary(BinOp::Xor, v, prev)),
        };
    }
    e
}

/// Times `f` over `iters` calls and returns rows/second for a table of
/// `rows` rows.
fn rows_per_second(rows: usize, iters: usize, mut f: impl FnMut() -> TruthTable) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed().as_secs_f64();
    (rows * iters) as f64 / elapsed.max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match SigBenchConfig::parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!("Signature extraction: scalar vs bit-parallel truth tables");
    println!("(repeats={} max-vars={})\n", config.repeats, config.max_vars);
    println!(
        "{:<6} {:>8} {:>18} {:>18} {:>10}",
        "vars", "rows", "scalar rows/s", "batch rows/s", "speedup"
    );

    let mut report = BenchReport::new("sig");
    report.push_int("repeats", config.repeats as u64);
    report.push_int("max_vars", config.max_vars as u64);

    for t in 2..=config.max_vars {
        let vars: Vec<Ident> = (0..t).map(|i| Ident::new(format!("v{i}"))).collect();
        let e = bench_expr(&vars);
        let rows = 1usize << t;

        // The two paths must agree before their speed is worth
        // comparing.
        let fast = TruthTable::of(&e, &vars).expect("bench expression is pure bitwise");
        let slow = TruthTable::of_scalar(&e, &vars).expect("bench expression is pure bitwise");
        assert_eq!(
            fast, slow,
            "bit-parallel and scalar truth tables diverge at t={t}"
        );

        // Scale iterations inversely with table size so each
        // measurement covers a comparable row volume.
        let iters = config.repeats * (4096 / rows).max(1);
        let scalar = rows_per_second(rows, iters, || {
            TruthTable::of_scalar(&e, &vars).expect("pure bitwise")
        });
        let batch = rows_per_second(rows, iters, || {
            TruthTable::of(&e, &vars).expect("pure bitwise")
        });
        let speedup = batch / scalar.max(1e-9);

        println!("{t:<6} {rows:>8} {scalar:>18.0} {batch:>18.0} {speedup:>9.1}x");
        report.push_float(&format!("t{t:02}_scalar_rows_per_s"), scalar);
        report.push_float(&format!("t{t:02}_batch_rows_per_s"), batch);
        report.push_float(&format!("t{t:02}_speedup"), speedup);
    }

    // Engine counters, via the same obs bridge the pipeline publishes
    // through. A zero here means the bit-parallel path was never taken
    // and every "batch" number above actually measured something else.
    let registry = mba_obs::MetricsRegistry::new();
    publish_eval_engine_metrics(&registry);
    let snapshot = registry.snapshot();
    let tape_compiles = snapshot.gauge("eval.tape_compiles");
    let bit_rows = snapshot.gauge("eval.bitparallel.rows");
    report.push_int("tape_compiles", tape_compiles.max(0) as u64);
    report.push_int("bitparallel_rows", bit_rows.max(0) as u64);

    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            std::process::exit(1);
        }
    }

    if tape_compiles < 1 {
        eprintln!("engine reports zero tape compiles: bit-parallel path not exercised");
        std::process::exit(1);
    }
}
