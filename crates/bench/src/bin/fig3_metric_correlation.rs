//! **Figure 3**: how each complexity metric relates to solving time.
//!
//! Samples are bucketed by metric value; per bucket we report the mean
//! solving time of solved instances and the timeout rate. The paper's
//! finding — MBA alternation dominates — shows up as the steepest
//! timeout-rate growth.

use mba_bench::{runner::EquivalenceTask, ExperimentConfig, SolveRecord, Verdict};
use mba_expr::Metrics;
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;

/// A metric extractor paired with its display name and bucket width.
type MetricSeries = (&'static str, Box<dyn Fn(&Metrics) -> f64>, f64);

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Figure 3: complexity metrics vs solving performance");
    println!("(boolector-style profile; {})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .map(|s| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: s.obfuscated.clone(),
            rhs: s.ground_truth.clone(),
        })
        .collect();
    eprintln!("running {} queries ...", tasks.len());
    let records = mba_bench::run_equivalence_checks(
        &tasks,
        &SolverProfile::boolector_style(),
        config.width,
        config.timeout(),
        config.threads,
    );
    let metrics: Vec<Metrics> = corpus
        .samples()
        .iter()
        .map(|s| Metrics::of(&s.obfuscated))
        .collect();

    let series: [MetricSeries; 5] = [
        ("MBA Alternation", Box::new(|m| m.alternation as f64), 4.0),
        ("MBA Length", Box::new(|m| m.length as f64), 64.0),
        ("Number of Terms", Box::new(|m| m.num_terms as f64), 4.0),
        ("Num of Variables", Box::new(|m| m.num_vars as f64), 1.0),
        ("Coefficients", Box::new(|m| m.max_coefficient as f64), 8.0),
    ];

    for (name, value_of, bucket_width) in &series {
        println!("--- {name} ---");
        println!(
            "{:<16} {:>8} {:>10} {:>14} {:>12}",
            "bucket", "samples", "solved", "avg time (s)", "timeout %"
        );
        let mut buckets: Vec<(usize, Vec<&SolveRecord>)> = Vec::new();
        for (record, m) in records.iter().zip(&metrics) {
            let bucket = (value_of(m) / bucket_width) as usize;
            match buckets.iter_mut().find(|(b, _)| *b == bucket) {
                Some((_, v)) => v.push(record),
                None => buckets.push((bucket, vec![record])),
            }
        }
        buckets.sort_by_key(|&(b, _)| b);
        for (bucket, rs) in &buckets {
            let lo = *bucket as f64 * bucket_width;
            let hi = lo + bucket_width;
            let solved: Vec<_> = rs.iter().filter(|r| r.verdict == Verdict::Solved).collect();
            let timeouts = rs.iter().filter(|r| r.verdict == Verdict::Timeout).count();
            let avg = mba_bench::report::mean(
                solved.iter().map(|r| r.elapsed.as_secs_f64()),
            );
            println!(
                "{:<16} {:>8} {:>10} {:>14.4} {:>11.1}%",
                format!("[{lo:.0},{hi:.0})"),
                rs.len(),
                solved.len(),
                avg,
                100.0 * timeouts as f64 / rs.len() as f64,
            );
        }
        println!();
    }
}
