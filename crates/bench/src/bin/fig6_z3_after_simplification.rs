//! **Figure 6**: Z3-style solving time with MBA-Solver's simplification,
//! as a sorted time series (the paper's flat near-zero curve) plus the
//! same histogram as Figure 4 for contrast.

use mba_bench::{report, runner::EquivalenceTask, ExperimentConfig, Verdict};
use mba_gen::{Corpus, CorpusConfig};
use mba_smt::SolverProfile;
use mba_solver::Simplifier;

fn main() {
    let config = ExperimentConfig::from_env();
    println!("Figure 6: z3-style solving time with MBA-Solver simplification");
    println!("({})\n", config.banner());

    let corpus = Corpus::generate(&CorpusConfig {
        seed: config.seed,
        per_category: config.per_category,
    });
    let simplifier = Simplifier::new();
    eprintln!("simplifying {} samples ...", corpus.len());
    let tasks: Vec<EquivalenceTask> = corpus
        .samples()
        .iter()
        .map(|s| EquivalenceTask {
            sample_id: s.id,
            kind: s.kind,
            lhs: simplifier.simplify(&s.obfuscated),
            rhs: s.ground_truth.clone(),
        })
        .collect();
    eprintln!("running z3-style ...");
    let records = mba_bench::run_equivalence_checks(
        &tasks,
        &SolverProfile::z3_style(),
        config.width,
        config.timeout(),
        config.threads,
    );

    // Sorted curve, decimated to at most 20 points for readability.
    let mut times: Vec<f64> = records.iter().map(|r| r.elapsed.as_secs_f64()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    println!("sorted solving-time curve (percentile -> seconds):");
    for p in (0..=100).step_by(5) {
        let idx = ((times.len().saturating_sub(1)) * p) / 100;
        println!("  p{:<3} {:>10.4}", p, times.get(idx).copied().unwrap_or(0.0));
    }

    let solved = records.iter().filter(|r| r.verdict == Verdict::Solved).count();
    let rewritten = records.iter().filter(|r| r.solved_by_rewriting).count();
    println!(
        "\nsolved {solved}/{} ({:.1}%); {rewritten} closed by word-level rewriting alone",
        records.len(),
        100.0 * solved as f64 / records.len().max(1) as f64
    );
    println!(
        "average time per case: {:.4} s",
        report::mean(records.iter().map(|r| r.elapsed.as_secs_f64()))
    );
}
