//! A tiny flag parser (the workspace deliberately has no CLI
//! dependency).

use std::time::Duration;

/// Shared experiment parameters. Every bench binary accepts the same
/// flags; unknown flags abort with a usage message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Corpus seed (`--seed`).
    pub seed: u64,
    /// Samples per MBA category (`--per-category`; paper: 1000).
    pub per_category: usize,
    /// Bit width of equivalence queries (`--width`; paper: 64 — the
    /// default 16 reproduces the paper's hardness contrast at laptop
    /// timeouts).
    pub width: u32,
    /// Per-query solver timeout in ms (`--timeout-ms`; paper: 1 h).
    pub timeout_ms: u64,
    /// Worker threads for *solver* queries (`--threads`; default:
    /// available parallelism).
    pub threads: usize,
    /// Worker threads for *simplification* batches (`--jobs`; default:
    /// available parallelism).
    pub jobs: usize,
    /// Whether the simplifier's caches (lookup table + signature cache)
    /// are enabled (`--no-cache` clears it).
    pub use_cache: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0x4d42_4153,
            per_category: 100,
            width: 16,
            timeout_ms: 1000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            use_cache: true,
        }
    }
}

impl ExperimentConfig {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: &[String]) -> Result<ExperimentConfig, String> {
        let mut config = ExperimentConfig::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut take = |name: &str| -> Result<&String, String> {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value\n{}", Self::usage()))
            };
            match flag.as_str() {
                "--seed" => config.seed = parse_num(take("--seed")?)?,
                "--per-category" => config.per_category = parse_num(take("--per-category")?)?,
                "--width" => {
                    config.width = parse_num(take("--width")?)?;
                    if !(1..=64).contains(&config.width) {
                        return Err("--width must be in 1..=64".into());
                    }
                }
                "--timeout-ms" => config.timeout_ms = parse_num(take("--timeout-ms")?)?,
                "--threads" => {
                    config.threads = parse_num(take("--threads")?)?;
                    if config.threads == 0 {
                        return Err("--threads must be positive".into());
                    }
                }
                "--jobs" => {
                    config.jobs = parse_num(take("--jobs")?)?;
                    if config.jobs == 0 {
                        return Err("--jobs must be positive".into());
                    }
                }
                "--no-cache" => config.use_cache = false,
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        Ok(config)
    }

    /// Parses from `std::env::args`, exiting with a message on error.
    pub fn from_env() -> ExperimentConfig {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The per-query timeout as a [`Duration`].
    pub fn timeout(&self) -> Duration {
        Duration::from_millis(self.timeout_ms)
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <bin> [--seed N] [--per-category N] [--width 1..=64] \
         [--timeout-ms N] [--threads N] [--jobs N] [--no-cache]"
            .to_string()
    }

    /// One-line description of the active scale, printed by every
    /// binary so outputs are self-describing.
    pub fn banner(&self) -> String {
        format!(
            "seed={} per-category={} width={} timeout={}ms threads={} jobs={} cache={}",
            self.seed,
            self.per_category,
            self.width,
            self.timeout_ms,
            self.threads,
            self.jobs,
            if self.use_cache { "on" } else { "off" }
        )
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentConfig, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ExperimentConfig::parse(&owned)
    }

    #[test]
    fn defaults_without_flags() {
        let c = parse(&[]).unwrap();
        assert_eq!(c.per_category, 100);
        assert_eq!(c.width, 16);
    }

    #[test]
    fn flags_override_defaults() {
        let c = parse(&[
            "--seed", "7", "--per-category", "12", "--width", "16",
            "--timeout-ms", "250", "--threads", "2",
        ])
        .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.per_category, 12);
        assert_eq!(c.width, 16);
        assert_eq!(c.timeout(), Duration::from_millis(250));
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--width", "0"]).is_err());
        assert!(parse(&["--width", "65"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }

    #[test]
    fn jobs_and_no_cache_flags() {
        let c = parse(&["--jobs", "3", "--no-cache"]).unwrap();
        assert_eq!(c.jobs, 3);
        assert!(!c.use_cache);
        assert!(parse(&[]).unwrap().use_cache);
        assert!(c.banner().contains("cache=off"));
        assert!(ExperimentConfig::usage().contains("--no-cache"));
        assert!(ExperimentConfig::usage().contains("--jobs"));
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("usage:"));
    }
}
