//! Parallel execution of equivalence queries over a corpus.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use mba_expr::Expr;
use mba_gen::ObfuscationKind;
use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};

/// The verdict of one query, flattened for aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven equivalent within the budget.
    Solved,
    /// Proven *not* equivalent — for identity corpora this flags an
    /// unsound simplification (Table 7's "N" column).
    Refuted,
    /// Budget exhausted (Table 7's "O" column).
    Timeout,
}

/// One equivalence query to run.
#[derive(Debug, Clone)]
pub struct EquivalenceTask {
    /// Corpus id of the underlying sample.
    pub sample_id: usize,
    /// MBA category of the underlying sample.
    pub kind: ObfuscationKind,
    /// Left side (e.g. the obfuscated or simplified expression).
    pub lhs: Expr,
    /// Right side (the ground truth).
    pub rhs: Expr,
}

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// Corpus id.
    pub sample_id: usize,
    /// MBA category.
    pub kind: ObfuscationKind,
    /// Verdict.
    pub verdict: Verdict,
    /// Wall-clock solving time.
    pub elapsed: Duration,
    /// Whether rewriting alone closed the query.
    pub solved_by_rewriting: bool,
}

/// Runs every task against `profile`, using `threads` workers. Records
/// come back sorted by `sample_id`.
pub fn run_equivalence_checks(
    tasks: &[EquivalenceTask],
    profile: &SolverProfile,
    width: u32,
    timeout: Duration,
    threads: usize,
) -> Vec<SolveRecord> {
    let next = AtomicUsize::new(0);
    let mut records: Vec<SolveRecord> = crossbeam::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let solver = SmtSolver::new(profile.clone());
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let result =
                            solver.check_equivalence(&task.lhs, &task.rhs, width, Some(timeout));
                        let verdict = match result.outcome {
                            CheckOutcome::Equivalent => Verdict::Solved,
                            CheckOutcome::NotEquivalent(_) => Verdict::Refuted,
                            CheckOutcome::Timeout => Verdict::Timeout,
                        };
                        local.push(SolveRecord {
                            sample_id: task.sample_id,
                            kind: task.kind,
                            verdict,
                            elapsed: result.elapsed,
                            solved_by_rewriting: result.solved_by_rewriting,
                        });
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope");
    records.sort_by_key(|r| r.sample_id);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: usize, lhs: &str, rhs: &str) -> EquivalenceTask {
        EquivalenceTask {
            sample_id: id,
            kind: ObfuscationKind::Linear,
            lhs: lhs.parse().unwrap(),
            rhs: rhs.parse().unwrap(),
        }
    }

    #[test]
    fn mixed_verdicts_come_back_in_order() {
        let tasks = vec![
            task(0, "x + y", "(x | y) + (x & y)"),
            task(1, "x + y", "x - y"),
            task(2, "x", "x"),
        ];
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::boolector_style(),
            8,
            Duration::from_secs(5),
            3,
        );
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.sample_id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(records[0].verdict, Verdict::Solved);
        assert_eq!(records[1].verdict, Verdict::Refuted);
        assert_eq!(records[2].verdict, Verdict::Solved);
        assert!(records[2].solved_by_rewriting);
    }

    #[test]
    fn timeouts_are_reported() {
        // Figure 1 at 12 bits with a microscopic timeout.
        let tasks = vec![task(
            0,
            "(x&~y)*(~x&y) + (x&y)*(x|y)",
            "x*y",
        )];
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::z3_style(),
            12,
            Duration::from_millis(1),
            1,
        );
        assert_eq!(records[0].verdict, Verdict::Timeout);
    }

    #[test]
    fn single_thread_handles_all_tasks() {
        let tasks: Vec<_> = (0..5).map(|i| task(i, "x", "x")).collect();
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::stp_style(),
            8,
            Duration::from_secs(1),
            1,
        );
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.verdict == Verdict::Solved));
    }
}
