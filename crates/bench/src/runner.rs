//! Parallel execution of simplification batches and equivalence queries
//! over a corpus.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mba_expr::Expr;
use mba_gen::ObfuscationKind;
use mba_sig::CacheStats;
use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};
use mba_solver::{Simplifier, SimplifyResult};

/// The verdict of one query, flattened for aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven equivalent within the budget.
    Solved,
    /// Proven *not* equivalent — for identity corpora this flags an
    /// unsound simplification (Table 7's "N" column).
    Refuted,
    /// Budget exhausted (Table 7's "O" column).
    Timeout,
}

/// One equivalence query to run.
#[derive(Debug, Clone)]
pub struct EquivalenceTask {
    /// Corpus id of the underlying sample.
    pub sample_id: usize,
    /// MBA category of the underlying sample.
    pub kind: ObfuscationKind,
    /// Left side (e.g. the obfuscated or simplified expression).
    pub lhs: Expr,
    /// Right side (the ground truth).
    pub rhs: Expr,
}

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// Corpus id.
    pub sample_id: usize,
    /// MBA category.
    pub kind: ObfuscationKind,
    /// Verdict.
    pub verdict: Verdict,
    /// Wall-clock solving time.
    pub elapsed: Duration,
    /// Whether rewriting alone closed the query.
    pub solved_by_rewriting: bool,
}

/// One measured batch-simplification pass: per-expression results plus
/// the wall-clock and signature-cache telemetry the experiment binaries
/// report (and serialize into `BENCH_*.json`).
#[derive(Debug)]
pub struct SimplifyRun {
    /// Per-expression results, in input order.
    pub results: Vec<SimplifyResult>,
    /// Wall-clock time of the whole batch.
    pub wall_clock: Duration,
    /// Signature-cache activity *during this batch* (deltas, so earlier
    /// runs against a shared cache do not pollute the numbers).
    pub cache: CacheStats,
}

impl SimplifyRun {
    /// The simplified expressions alone, in input order.
    pub fn outputs(&self) -> Vec<Expr> {
        self.results.iter().map(|r| r.output.clone()).collect()
    }
}

/// Simplifies `exprs` through [`Simplifier::simplify_batch_with_jobs`],
/// measuring wall-clock and cache hit-rate.
pub fn simplify_corpus(simplifier: &Simplifier, exprs: &[Expr], jobs: usize) -> SimplifyRun {
    let before = simplifier.sig_cache().stats();
    let start = Instant::now();
    let results = simplifier.simplify_batch_with_jobs(exprs, jobs);
    let wall_clock = start.elapsed();
    let after = simplifier.sig_cache().stats();
    SimplifyRun {
        results,
        wall_clock,
        cache: after.since(&before),
    }
}

/// Runs every task against `profile`, using `threads` workers. Records
/// come back sorted by `sample_id`.
pub fn run_equivalence_checks(
    tasks: &[EquivalenceTask],
    profile: &SolverProfile,
    width: u32,
    timeout: Duration,
    threads: usize,
) -> Vec<SolveRecord> {
    let next = AtomicUsize::new(0);
    let mut records: Vec<SolveRecord> = crossbeam::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let solver = SmtSolver::new(profile.clone());
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let result =
                            solver.check_equivalence(&task.lhs, &task.rhs, width, Some(timeout));
                        let verdict = match result.outcome {
                            CheckOutcome::Equivalent => Verdict::Solved,
                            CheckOutcome::NotEquivalent(_) => Verdict::Refuted,
                            CheckOutcome::Timeout => Verdict::Timeout,
                        };
                        local.push(SolveRecord {
                            sample_id: task.sample_id,
                            kind: task.kind,
                            verdict,
                            elapsed: result.elapsed,
                            solved_by_rewriting: result.solved_by_rewriting,
                        });
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope");
    records.sort_by_key(|r| r.sample_id);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: usize, lhs: &str, rhs: &str) -> EquivalenceTask {
        EquivalenceTask {
            sample_id: id,
            kind: ObfuscationKind::Linear,
            lhs: lhs.parse().unwrap(),
            rhs: rhs.parse().unwrap(),
        }
    }

    #[test]
    fn mixed_verdicts_come_back_in_order() {
        let tasks = vec![
            task(0, "x + y", "(x | y) + (x & y)"),
            task(1, "x + y", "x - y"),
            task(2, "x", "x"),
        ];
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::boolector_style(),
            8,
            Duration::from_secs(5),
            3,
        );
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.sample_id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(records[0].verdict, Verdict::Solved);
        assert_eq!(records[1].verdict, Verdict::Refuted);
        assert_eq!(records[2].verdict, Verdict::Solved);
        assert!(records[2].solved_by_rewriting);
    }

    #[test]
    fn timeouts_are_reported() {
        // Figure 1 at 12 bits with a microscopic timeout.
        let tasks = vec![task(
            0,
            "(x&~y)*(~x&y) + (x&y)*(x|y)",
            "x*y",
        )];
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::z3_style(),
            12,
            Duration::from_millis(1),
            1,
        );
        assert_eq!(records[0].verdict, Verdict::Timeout);
    }

    #[test]
    fn simplify_corpus_matches_sequential_and_counts_cache_activity() {
        // Polynomial entries walk the truth-table route (linear inputs
        // take the corner-recovery fast path, which bypasses the cache).
        let exprs: Vec<Expr> = [
            "x*y + 2*(x&y)",
            "x + y - 2*(x&y)",
            "x*y + 2*(x&y)",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let batch_solver = Simplifier::new();
        let run = simplify_corpus(&batch_solver, &exprs, 2);
        let sequential = Simplifier::new();
        for (e, got) in exprs.iter().zip(run.outputs()) {
            assert_eq!(got, sequential.simplify(e));
        }
        assert!(run.cache.lookups() > 0, "batch must exercise the cache");
        // A second identical batch against the same simplifier is all
        // hits at the signature layer (the expression-level lookup table
        // answers first, so just assert no new misses dominate).
        let rerun = simplify_corpus(&batch_solver, &exprs, 2);
        assert_eq!(run.outputs(), rerun.outputs());
    }

    #[test]
    fn single_thread_handles_all_tasks() {
        let tasks: Vec<_> = (0..5).map(|i| task(i, "x", "x")).collect();
        let records = run_equivalence_checks(
            &tasks,
            &SolverProfile::stp_style(),
            8,
            Duration::from_secs(1),
            1,
        );
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.verdict == Verdict::Solved));
    }
}
