//! A counting global allocator for Table 8's memory column.
//!
//! The paper reports MBA-Solver's memory cost per input complexity; we
//! measure it exactly by wrapping the system allocator with atomic
//! counters. The meter is compiled into the bench binaries only (the
//! library crates stay `forbid(unsafe_code)`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting wrapper around the system allocator.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mba_bench::alloc_meter::CountingAllocator =
///     mba_bench::alloc_meter::CountingAllocator::new();
/// ```
pub struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

impl CountingAllocator {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System`, only adding counter
// updates around the calls.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Currently live heap bytes (as seen by the meter).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Resets the peak to the current live count and returns a baseline
/// token for [`peak_since`].
pub fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Peak heap growth (bytes) since the matching [`reset_peak`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The meter is only active when installed as #[global_allocator]
    // (done in the bench binaries); here we exercise the counter logic
    // directly. One combined test, since the counters are global.
    #[test]
    fn counters_track_live_and_peak() {
        let before = live_bytes();
        on_alloc(64);
        assert!(live_bytes() >= before + 64);
        on_dealloc(64);

        let base = reset_peak();
        on_alloc(1000);
        on_alloc(500);
        on_dealloc(1000);
        let peak = peak_since(base);
        assert!(peak >= 1500, "peak {peak}");
        on_dealloc(500);
    }
}
