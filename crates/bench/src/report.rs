//! Aggregation, table formatting, and machine-readable telemetry for
//! the experiment binaries.

use std::io;
use std::path::PathBuf;
use std::time::Duration;

use mba_gen::ObfuscationKind;

use crate::runner::{SimplifyRun, SolveRecord, Verdict};

/// Per-category aggregate in the shape of the paper's Tables 2 and 6:
/// `N`, `[T_min, T_max]`, `T_avg` over *solved* samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryAggregate {
    /// Samples in the category.
    pub total: usize,
    /// Solved within budget.
    pub solved: usize,
    /// Refuted (non-equivalent) — zero on identity corpora unless a
    /// tool was unsound.
    pub refuted: usize,
    /// Timed out.
    pub timeouts: usize,
    /// Fastest solved time (seconds).
    pub t_min: f64,
    /// Slowest solved time (seconds).
    pub t_max: f64,
    /// Mean solved time (seconds).
    pub t_avg: f64,
}

/// Aggregates records of one category.
pub fn aggregate(records: &[SolveRecord], kind: ObfuscationKind) -> CategoryAggregate {
    let of_kind: Vec<&SolveRecord> = records.iter().filter(|r| r.kind == kind).collect();
    let solved: Vec<&&SolveRecord> = of_kind
        .iter()
        .filter(|r| r.verdict == Verdict::Solved)
        .collect();
    let times: Vec<f64> = solved.iter().map(|r| r.elapsed.as_secs_f64()).collect();
    // An empty category must aggregate to all-zero times: the old
    // `fold(f64::INFINITY, f64::min)` left `t_min = inf` on zero solved
    // samples, and that non-finite value then reached the JSON telemetry
    // (where it can only render as `null`). Zero is the documented "no
    // data" value, matching `t_avg`.
    CategoryAggregate {
        total: of_kind.len(),
        solved: solved.len(),
        refuted: of_kind.iter().filter(|r| r.verdict == Verdict::Refuted).count(),
        timeouts: of_kind.iter().filter(|r| r.verdict == Verdict::Timeout).count(),
        t_min: if times.is_empty() {
            0.0
        } else {
            times.iter().copied().fold(f64::INFINITY, f64::min)
        },
        t_max: times.iter().copied().fold(0.0, f64::max),
        t_avg: if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        },
    }
}

/// Formats one aggregate as the paper's `N  [Tmin, Tmax]  Tavg` triple.
pub fn format_aggregate(a: &CategoryAggregate) -> String {
    if a.solved == 0 {
        return format!("{:>5}  {:>18}  {:>8}", 0, "[-, -]", "-");
    }
    format!(
        "{:>5}  [{:>7.3}, {:>7.3}]  {:>8.3}",
        a.solved, a.t_min, a.t_max, a.t_avg
    )
}

/// The three categories in table order.
pub const CATEGORIES: [ObfuscationKind; 3] = [
    ObfuscationKind::Linear,
    ObfuscationKind::Polynomial,
    ObfuscationKind::NonPolynomial,
];

/// The simplifier pipeline stages reported by
/// [`BenchReport::push_stage_breakdown`], in pipeline order; names match
/// the `core.stage.<name>.micros` histograms `mba-solver` records.
pub const STAGES: [&str; 5] = ["signature", "basis", "poly_reduce", "rewrite", "final_fold"];

/// Renders a full solver-performance table (the layout of Tables 2/6):
/// one row per category, one column group per profile.
pub fn solver_table(profile_names: &[&str], per_profile: &[Vec<SolveRecord>]) -> String {
    assert_eq!(profile_names.len(), per_profile.len());
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "MBA Type"));
    for name in profile_names {
        out.push_str(&format!("  | {:^37}", name));
    }
    out.push('\n');
    out.push_str(&format!("{:<12}", ""));
    for _ in profile_names {
        out.push_str(&format!(
            "  | {:>5}  {:>18}  {:>8}",
            "N", "[Tmin, Tmax] (s)", "Tavg (s)"
        ));
    }
    out.push('\n');
    for kind in CATEGORIES {
        out.push_str(&format!("{:<12}", kind.to_string()));
        for records in per_profile {
            let a = aggregate(records, kind);
            out.push_str(&format!("  | {}", format_aggregate(&a)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "Total"));
    for records in per_profile {
        let solved = records.iter().filter(|r| r.verdict == Verdict::Solved).count();
        let total = records.len().max(1);
        out.push_str(&format!(
            "  | {:>5} ({:>5.1}%) {:>21}",
            solved,
            100.0 * solved as f64 / total as f64,
            ""
        ));
    }
    out.push('\n');
    out
}

/// A flat JSON-object builder for `BENCH_<name>.json` telemetry files.
///
/// The workspace has no JSON dependency, and the telemetry is a flat
/// string/number map, so this renders the object by hand. Insertion
/// order is preserved; [`BenchReport::write`] drops the file next to
/// wherever the binary runs so CI and scripts can diff wall-clock and
/// cache hit-rate across runs.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    /// `(key, already-rendered JSON value)` in insertion order.
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for bench `name` (also its first field).
    pub fn new(name: &str) -> BenchReport {
        let mut r = BenchReport {
            name: name.to_string(),
            fields: Vec::new(),
        };
        r.push_str("bench", name);
        r
    }

    fn push_raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds a string field.
    pub fn push_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_raw(key, format!("\"{}\"", escape_json(value)))
    }

    /// Adds an integer field.
    pub fn push_int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Adds a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Adds a float field (non-finite values are serialized as `null`,
    /// which JSON requires).
    pub fn push_float(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.push_raw(key, rendered)
    }

    /// Adds the standard telemetry of one measured simplification batch:
    /// sample count, wall-clock, and cache hits/misses/hit-rate.
    pub fn push_simplify_run(&mut self, run: &SimplifyRun) -> &mut Self {
        self.push_int("samples", run.results.len() as u64)
            .push_float("simplify_wall_clock_s", run.wall_clock.as_secs_f64())
            .push_int("cache_hits", run.cache.hits)
            .push_int("cache_misses", run.cache.misses)
            .push_float("cache_hit_rate", run.cache.hit_rate())
    }

    /// Adds one [`CategoryAggregate`] as `<prefix>_total` /
    /// `<prefix>_solved` / `<prefix>_refuted` / `<prefix>_timeouts` /
    /// `<prefix>_t_min_s` / `<prefix>_t_max_s` / `<prefix>_t_avg_s`.
    /// [`aggregate`] keeps empty categories all-zero, so every value
    /// here is finite by construction.
    pub fn push_aggregate(&mut self, prefix: &str, a: &CategoryAggregate) -> &mut Self {
        self.push_int(&format!("{prefix}_total"), a.total as u64)
            .push_int(&format!("{prefix}_solved"), a.solved as u64)
            .push_int(&format!("{prefix}_refuted"), a.refuted as u64)
            .push_int(&format!("{prefix}_timeouts"), a.timeouts as u64)
            .push_float(&format!("{prefix}_t_min_s"), a.t_min)
            .push_float(&format!("{prefix}_t_max_s"), a.t_max)
            .push_float(&format!("{prefix}_t_avg_s"), a.t_avg)
    }

    /// Adds the simplifier's per-stage timing breakdown from an
    /// `mba-obs` snapshot: for each pipeline stage in [`STAGES`],
    /// `stage_<name>_micros` (total time), `stage_<name>_calls`
    /// (span count), and `stage_<name>_p95_micros` (log2-bucket
    /// approximate p95). Stages that never ran report zeros, so the
    /// field set is identical across runs. All integers — no float can
    /// enter the file through this path.
    pub fn push_stage_breakdown(&mut self, snapshot: &mba_obs::Snapshot) -> &mut Self {
        for stage in STAGES {
            let (micros, calls, p95) = snapshot
                .histogram(&format!("core.stage.{stage}.micros"))
                .map_or((0, 0, 0), |h| (h.sum, h.count, h.approx_quantile(0.95)));
            self.push_int(&format!("stage_{stage}_micros"), micros)
                .push_int(&format!("stage_{stage}_calls"), calls)
                .push_int(&format!("stage_{stage}_p95_micros"), p95);
        }
        self
    }

    /// Renders the JSON object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("  \"{}\": {}", escape_json(k), v))
            .collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Writes `BENCH_<name>.json` in the current directory and returns
    /// its path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A plain-text histogram line: `label  count  bar`.
pub fn histogram_line(label: &str, count: usize, max: usize, width: usize) -> String {
    let bar_len = (count * width).checked_div(max).unwrap_or(0);
    format!("{:<14} {:>6}  {}", label, count, "#".repeat(bar_len))
}

/// Buckets a solving time for Figure 4-style distributions.
pub fn time_bucket(elapsed: Duration, timed_out: bool) -> &'static str {
    if timed_out {
        return "timeout";
    }
    let s = elapsed.as_secs_f64();
    if s < 0.001 {
        "< 1 ms"
    } else if s < 0.01 {
        "1-10 ms"
    } else if s < 0.1 {
        "10-100 ms"
    } else if s < 1.0 {
        "0.1-1 s"
    } else {
        ">= 1 s"
    }
}

/// Nearest-rank percentile of an **unsorted** sample (`p` in `0..=100`);
/// `0.0` when empty. Sorts a copy, so callers can pass raw latency
/// vectors straight from a run. `p = 50/95/99` are the serving-layer
/// latency quantiles `BENCH_serve.json` reports.
///
/// Non-finite samples are skipped: `NaN` is incomparable, so letting it
/// into the sort (the old `partial_cmp(..).unwrap_or(Equal)`) scrambled
/// the ordering unpredictably and could surface `NaN` as any quantile.
/// A latency vector has no legitimate non-finite entries — an upstream
/// producer that emits one is feeding the report garbage, and skipping
/// keeps the remaining quantiles honest instead of poisoning them all.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite values were filtered"));
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: the smallest value with at least p% of the sample
    // at or below it.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Mean of a sequence, 0 when empty.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, kind: ObfuscationKind, verdict: Verdict, ms: u64) -> SolveRecord {
        SolveRecord {
            sample_id: id,
            kind,
            verdict,
            elapsed: Duration::from_millis(ms),
            solved_by_rewriting: false,
        }
    }

    #[test]
    fn aggregate_computes_min_max_avg() {
        let records = vec![
            rec(0, ObfuscationKind::Linear, Verdict::Solved, 100),
            rec(1, ObfuscationKind::Linear, Verdict::Solved, 300),
            rec(2, ObfuscationKind::Linear, Verdict::Timeout, 1000),
            rec(3, ObfuscationKind::Polynomial, Verdict::Solved, 50),
        ];
        let a = aggregate(&records, ObfuscationKind::Linear);
        assert_eq!(a.total, 3);
        assert_eq!(a.solved, 2);
        assert_eq!(a.timeouts, 1);
        assert!((a.t_min - 0.1).abs() < 1e-9);
        assert!((a.t_max - 0.3).abs() < 1e-9);
        assert!((a.t_avg - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_category_formats_dashes() {
        let a = aggregate(&[], ObfuscationKind::Linear);
        assert_eq!(a.solved, 0);
        assert!(format_aggregate(&a).contains("[-, -]"));
    }

    #[test]
    fn empty_aggregate_is_all_finite_zeros() {
        // Regression: the empty fold used to leave `t_min = inf`.
        for a in [
            aggregate(&[], ObfuscationKind::Linear),
            // Non-empty category with zero *solved* samples: the times
            // vector is still empty.
            aggregate(
                &[rec(0, ObfuscationKind::Linear, Verdict::Timeout, 900)],
                ObfuscationKind::Linear,
            ),
        ] {
            assert!(a.t_min.is_finite() && a.t_min == 0.0, "t_min = {}", a.t_min);
            assert!(a.t_max.is_finite() && a.t_max == 0.0);
            assert!(a.t_avg.is_finite() && a.t_avg == 0.0);
        }
    }

    #[test]
    fn empty_aggregate_round_trips_through_report_writer() {
        // The full path the bug poisoned: empty aggregate → BenchReport
        // → rendered JSON. The output must parse and contain no nulls
        // (a null is push_float's spelling of a non-finite value).
        let mut r = BenchReport::new("roundtrip");
        for kind in CATEGORIES {
            let a = aggregate(&[], kind);
            r.push_aggregate(&kind.to_string().replace('-', "_"), &a);
        }
        let rendered = r.render();
        let parsed = mba_obs::json::parse_json(&rendered)
            .unwrap_or_else(|e| panic!("unparseable report: {e}\n{rendered}"));
        assert_eq!(
            mba_obs::json::find_non_finite(&parsed),
            None,
            "empty aggregates leaked a non-finite value:\n{rendered}"
        );
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["linear_t_min_s"].as_num(), Some(0.0));
        assert_eq!(obj["linear_solved"].as_u64(), Some(0));
    }

    #[test]
    fn solver_table_contains_all_rows() {
        let records = vec![
            rec(0, ObfuscationKind::Linear, Verdict::Solved, 10),
            rec(1, ObfuscationKind::NonPolynomial, Verdict::Timeout, 500),
        ];
        let table = solver_table(&["z3-style"], &[records]);
        for needle in ["linear", "poly", "non-poly", "Total", "z3-style"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(time_bucket(Duration::from_micros(10), false), "< 1 ms");
        assert_eq!(time_bucket(Duration::from_millis(5), false), "1-10 ms");
        assert_eq!(time_bucket(Duration::from_millis(50), false), "10-100 ms");
        assert_eq!(time_bucket(Duration::from_millis(500), false), "0.1-1 s");
        assert_eq!(time_bucket(Duration::from_secs(2), false), ">= 1 s");
        assert_eq!(time_bucket(Duration::from_secs(2), true), "timeout");
    }

    #[test]
    fn histogram_bars_scale() {
        let line = histogram_line("x", 5, 10, 20);
        assert!(line.contains(&"#".repeat(10)));
        let empty = histogram_line("y", 0, 10, 20);
        assert!(!empty.contains('#'));
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Unsorted input is fine.
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        // 100 samples: p95 is the 95th smallest, p99 the 99th.
        let big: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&big, 50.0), 50.0);
        assert_eq!(percentile(&big, 95.0), 95.0);
        assert_eq!(percentile(&big, 99.0), 99.0);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&v, 150.0), 5.0);
        assert_eq!(percentile(&v, -3.0), 1.0);
    }

    #[test]
    fn percentile_skips_non_finite_samples() {
        // Regression: NaN used to enter the sort via
        // `partial_cmp(..).unwrap_or(Equal)` and scramble the order.
        let v = [f64::NAN, 3.0, f64::INFINITY, 1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        // NaN placement must not depend on position: every permutation
        // of a NaN-poisoned sample gives the same quantiles.
        let a = [f64::NAN, 5.0, 1.0];
        let b = [5.0, f64::NAN, 1.0];
        let c = [5.0, 1.0, f64::NAN];
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
            assert_eq!(percentile(&b, p), percentile(&c, p));
            assert!(percentile(&a, p).is_finite());
        }
        // All-non-finite behaves like empty.
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 50.0), 0.0);
    }

    #[test]
    fn stage_breakdown_reports_every_stage_as_integers() {
        let reg = mba_obs::MetricsRegistry::new();
        reg.histogram("core.stage.signature.micros").record(120);
        reg.histogram("core.stage.signature.micros").record(80);
        reg.histogram("core.stage.basis.micros").record(40);
        let mut r = BenchReport::new("stages");
        r.push_stage_breakdown(&reg.snapshot());
        let rendered = r.render();
        let parsed = mba_obs::json::parse_json(&rendered).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["stage_signature_micros"].as_u64(), Some(200));
        assert_eq!(obj["stage_signature_calls"].as_u64(), Some(2));
        assert_eq!(obj["stage_basis_micros"].as_u64(), Some(40));
        // Stages that never ran still report, as zeros.
        assert_eq!(obj["stage_rewrite_calls"].as_u64(), Some(0));
        assert_eq!(obj["stage_final_fold_micros"].as_u64(), Some(0));
        assert_eq!(mba_obs::json::find_non_finite(&parsed), None);
    }

    #[test]
    fn bench_report_renders_flat_json() {
        let mut r = BenchReport::new("table6");
        r.push_int("samples", 75)
            .push_float("simplify_wall_clock_s", 0.125)
            .push_float("cache_hit_rate", 0.5)
            .push_str("note", "a \"quoted\"\nvalue");
        let json = r.render();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"table6\""));
        assert!(json.contains("\"samples\": 75"));
        assert!(json.contains("\"simplify_wall_clock_s\": 0.125000"));
        assert!(json.contains("\"note\": \"a \\\"quoted\\\"\\nvalue\""));
        // Exactly one trailing-comma-free object: last field has none.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn bench_report_serializes_non_finite_floats_as_null() {
        let mut r = BenchReport::new("x");
        r.push_float("bad", f64::NAN);
        assert!(r.render().contains("\"bad\": null"));
    }
}
