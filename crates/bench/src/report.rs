//! Aggregation and table formatting for the experiment binaries.

use std::time::Duration;

use mba_gen::ObfuscationKind;

use crate::runner::{SolveRecord, Verdict};

/// Per-category aggregate in the shape of the paper's Tables 2 and 6:
/// `N`, `[T_min, T_max]`, `T_avg` over *solved* samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryAggregate {
    /// Samples in the category.
    pub total: usize,
    /// Solved within budget.
    pub solved: usize,
    /// Refuted (non-equivalent) — zero on identity corpora unless a
    /// tool was unsound.
    pub refuted: usize,
    /// Timed out.
    pub timeouts: usize,
    /// Fastest solved time (seconds).
    pub t_min: f64,
    /// Slowest solved time (seconds).
    pub t_max: f64,
    /// Mean solved time (seconds).
    pub t_avg: f64,
}

/// Aggregates records of one category.
pub fn aggregate(records: &[SolveRecord], kind: ObfuscationKind) -> CategoryAggregate {
    let of_kind: Vec<&SolveRecord> = records.iter().filter(|r| r.kind == kind).collect();
    let solved: Vec<&&SolveRecord> = of_kind
        .iter()
        .filter(|r| r.verdict == Verdict::Solved)
        .collect();
    let times: Vec<f64> = solved.iter().map(|r| r.elapsed.as_secs_f64()).collect();
    CategoryAggregate {
        total: of_kind.len(),
        solved: solved.len(),
        refuted: of_kind.iter().filter(|r| r.verdict == Verdict::Refuted).count(),
        timeouts: of_kind.iter().filter(|r| r.verdict == Verdict::Timeout).count(),
        t_min: times.iter().copied().fold(f64::INFINITY, f64::min),
        t_max: times.iter().copied().fold(0.0, f64::max),
        t_avg: if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        },
    }
}

/// Formats one aggregate as the paper's `N  [Tmin, Tmax]  Tavg` triple.
pub fn format_aggregate(a: &CategoryAggregate) -> String {
    if a.solved == 0 {
        return format!("{:>5}  {:>18}  {:>8}", 0, "[-, -]", "-");
    }
    format!(
        "{:>5}  [{:>7.3}, {:>7.3}]  {:>8.3}",
        a.solved, a.t_min, a.t_max, a.t_avg
    )
}

/// The three categories in table order.
pub const CATEGORIES: [ObfuscationKind; 3] = [
    ObfuscationKind::Linear,
    ObfuscationKind::Polynomial,
    ObfuscationKind::NonPolynomial,
];

/// Renders a full solver-performance table (the layout of Tables 2/6):
/// one row per category, one column group per profile.
pub fn solver_table(profile_names: &[&str], per_profile: &[Vec<SolveRecord>]) -> String {
    assert_eq!(profile_names.len(), per_profile.len());
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "MBA Type"));
    for name in profile_names {
        out.push_str(&format!("  | {:^37}", name));
    }
    out.push('\n');
    out.push_str(&format!("{:<12}", ""));
    for _ in profile_names {
        out.push_str(&format!(
            "  | {:>5}  {:>18}  {:>8}",
            "N", "[Tmin, Tmax] (s)", "Tavg (s)"
        ));
    }
    out.push('\n');
    for kind in CATEGORIES {
        out.push_str(&format!("{:<12}", kind.to_string()));
        for records in per_profile {
            let a = aggregate(records, kind);
            out.push_str(&format!("  | {}", format_aggregate(&a)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "Total"));
    for records in per_profile {
        let solved = records.iter().filter(|r| r.verdict == Verdict::Solved).count();
        let total = records.len().max(1);
        out.push_str(&format!(
            "  | {:>5} ({:>5.1}%) {:>21}",
            solved,
            100.0 * solved as f64 / total as f64,
            ""
        ));
    }
    out.push('\n');
    out
}

/// A plain-text histogram line: `label  count  bar`.
pub fn histogram_line(label: &str, count: usize, max: usize, width: usize) -> String {
    let bar_len = (count * width).checked_div(max).unwrap_or(0);
    format!("{:<14} {:>6}  {}", label, count, "#".repeat(bar_len))
}

/// Buckets a solving time for Figure 4-style distributions.
pub fn time_bucket(elapsed: Duration, timed_out: bool) -> &'static str {
    if timed_out {
        return "timeout";
    }
    let s = elapsed.as_secs_f64();
    if s < 0.001 {
        "< 1 ms"
    } else if s < 0.01 {
        "1-10 ms"
    } else if s < 0.1 {
        "10-100 ms"
    } else if s < 1.0 {
        "0.1-1 s"
    } else {
        ">= 1 s"
    }
}

/// Mean of a sequence, 0 when empty.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, kind: ObfuscationKind, verdict: Verdict, ms: u64) -> SolveRecord {
        SolveRecord {
            sample_id: id,
            kind,
            verdict,
            elapsed: Duration::from_millis(ms),
            solved_by_rewriting: false,
        }
    }

    #[test]
    fn aggregate_computes_min_max_avg() {
        let records = vec![
            rec(0, ObfuscationKind::Linear, Verdict::Solved, 100),
            rec(1, ObfuscationKind::Linear, Verdict::Solved, 300),
            rec(2, ObfuscationKind::Linear, Verdict::Timeout, 1000),
            rec(3, ObfuscationKind::Polynomial, Verdict::Solved, 50),
        ];
        let a = aggregate(&records, ObfuscationKind::Linear);
        assert_eq!(a.total, 3);
        assert_eq!(a.solved, 2);
        assert_eq!(a.timeouts, 1);
        assert!((a.t_min - 0.1).abs() < 1e-9);
        assert!((a.t_max - 0.3).abs() < 1e-9);
        assert!((a.t_avg - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_category_formats_dashes() {
        let a = aggregate(&[], ObfuscationKind::Linear);
        assert_eq!(a.solved, 0);
        assert!(format_aggregate(&a).contains("[-, -]"));
    }

    #[test]
    fn solver_table_contains_all_rows() {
        let records = vec![
            rec(0, ObfuscationKind::Linear, Verdict::Solved, 10),
            rec(1, ObfuscationKind::NonPolynomial, Verdict::Timeout, 500),
        ];
        let table = solver_table(&["z3-style"], &[records]);
        for needle in ["linear", "poly", "non-poly", "Total", "z3-style"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(time_bucket(Duration::from_micros(10), false), "< 1 ms");
        assert_eq!(time_bucket(Duration::from_millis(5), false), "1-10 ms");
        assert_eq!(time_bucket(Duration::from_millis(50), false), "10-100 ms");
        assert_eq!(time_bucket(Duration::from_millis(500), false), "0.1-1 s");
        assert_eq!(time_bucket(Duration::from_secs(2), false), ">= 1 s");
        assert_eq!(time_bucket(Duration::from_secs(2), true), "timeout");
    }

    #[test]
    fn histogram_bars_scale() {
        let line = histogram_line("x", 5, 10, 20);
        assert!(line.contains(&"#".repeat(10)));
        let empty = histogram_line("y", 0, 10, 20);
        assert!(!empty.contains('#'));
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }
}
