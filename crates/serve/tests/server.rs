//! End-to-end serving behaviour: correctness of results, shared-cache
//! warming, per-request deadlines, queue overload (backpressure), and
//! graceful drain-then-exit shutdown.

use std::time::Duration;

use mba_serve::{server, Client, ServerConfig};

fn harness(config: ServerConfig) -> (std::net::SocketAddr, server::ServerHandle) {
    server::spawn("127.0.0.1:0", config).expect("spawn server")
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

#[test]
fn serves_the_papers_examples_end_to_end() {
    let (addr, handle) = harness(ServerConfig::default());
    let mut client = connect(addr);
    for (id, expr, want) in [
        (0, "2*(x|y) - (~x&y) - (x&~y)", "x+y"),
        (1, "(x&~y)*(~x&y) + (x&y)*(x|y)", "x*y"),
        (2, "x + y - 2*(x&y)", "x^y"),
        (3, "~(x - 1)", "-x"),
        (4, "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)", "x-y+z"),
    ] {
        let r = client.simplify(id, expr, 64, None).unwrap();
        assert!(r.is_ok(), "`{expr}` errored: {}", r.raw);
        assert_eq!(r.str_field("simplified"), Some(want), "`{expr}`");
        assert_eq!(r.id(), Some(id));
        assert!(r.u64_field("node_count_in").unwrap() >= r.u64_field("node_count_out").unwrap());
        assert!(r.field("micros").is_some());
        assert!(r.field("cache_hit_rate").is_some());
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn synthesis_tier_is_served_by_default_and_gated_by_config() {
    // A parity opaque zero ((x*(x+1)) & 1 ≡ 0) keeps the expression
    // outside the algebraic pipeline's reach; only the synthesis tier
    // recovers `x+y`. With `use_synthesis: false` the server must leave
    // the residual unreduced rather than guess.
    let residual = "x + y + ((x*(x+1)) & 1)";
    let (addr, handle) = harness(ServerConfig::default());
    let mut client = connect(addr);
    let r = client.simplify(0, residual, 64, None).unwrap();
    assert_eq!(r.str_field("simplified"), Some("x+y"), "{}", r.raw);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    let config = ServerConfig {
        use_synthesis: false,
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);
    let mut client = connect(addr);
    let r = client.simplify(0, residual, 64, None).unwrap();
    assert!(r.is_ok(), "{}", r.raw);
    assert_ne!(r.str_field("simplified"), Some("x+y"), "{}", r.raw);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn width_is_honoured_per_request() {
    let (addr, handle) = harness(ServerConfig::default());
    let mut client = connect(addr);
    // 255 + 1 wraps to 0 at width 8 but not at width 64, so the
    // constant folds differently per ring.
    let r8 = client.simplify(0, "x + 255 + 1", 8, None).unwrap();
    assert_eq!(r8.str_field("simplified"), Some("x"), "{}", r8.raw);
    let r64 = client.simplify(1, "x + 255 + 1", 64, None).unwrap();
    assert_eq!(r64.str_field("simplified"), Some("x+256"), "{}", r64.raw);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shared_cache_warms_across_connections() {
    let (addr, handle) = harness(ServerConfig::default());
    let first_rate = {
        let mut a = connect(addr);
        a.simplify(0, "x*y + 2*(x|y) - (~x&y) - (x&~y)", 64, None)
            .unwrap()
            .num_field("cache_hit_rate")
            .unwrap()
    };
    // A *different* connection reuses the same resident signature
    // cache. The expression is a commuted variant: syntactically new
    // (so the expression-level cache cannot short-circuit it) but its
    // subterm signatures were all computed by the first request, so the
    // cumulative signature-cache hit rate must rise. The `x*y` term
    // keeps the request on the truth-table route — without it the whole
    // input is linear and the corner-recovery fast path would skip the
    // cache entirely.
    let mut b = connect(addr);
    let second_rate = b
        .simplify(1, "y*x + 2*(y|x) - (y&~x) - (~y&x)", 64, None)
        .unwrap()
        .num_field("cache_hit_rate")
        .unwrap();
    assert!(
        second_rate > first_rate,
        "cache did not warm across connections: {first_rate} -> {second_rate}"
    );
    b.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn expired_deadline_is_answered_with_a_timeout_error() {
    // The worker holds every job for 30ms, so a 1ms deadline is always
    // expired by dequeue time — deterministically, not by racing.
    let config = ServerConfig {
        workers: 1,
        worker_delay: Some(Duration::from_millis(30)),
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);
    let mut client = connect(addr);

    let r = client.simplify(0, "x + y", 64, Some(1)).unwrap();
    assert_eq!(r.error(), Some("deadline"), "got {}", r.raw);
    assert_eq!(r.id(), Some(0));
    assert!(r.str_field("detail").unwrap().contains("deadline"));

    // Without a deadline the same request succeeds despite the delay,
    // and the server survived the expiry.
    let ok = client.simplify(1, "x + y", 64, None).unwrap();
    assert!(ok.is_ok(), "{}", ok.raw);

    let stats = client.stats().unwrap();
    assert_eq!(stats.u64_field("deadline_expired"), Some(1));
    assert_eq!(stats.u64_field("served"), Some(1));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn zero_deadline_always_expires() {
    // `deadline_ms: 0` grants the half-open budget [0, 0) — no time at
    // all. It must be answered with a `deadline` error no matter how
    // fast the worker dequeues it: the check is `elapsed >= deadline`,
    // and every elapsed time satisfies `elapsed >= 0`. Deterministic,
    // no delays needed.
    let (addr, handle) = harness(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = connect(addr);
    for id in 0..20 {
        let r = client.simplify(id, "x + y", 64, Some(0)).unwrap();
        assert_eq!(r.error(), Some("deadline"), "request {id} got {}", r.raw);
        assert_eq!(r.id(), Some(id));
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.u64_field("deadline_expired"), Some(20));
    assert_eq!(stats.u64_field("served"), Some(0));
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn overload_sheds_load_while_the_server_stays_live() {
    // Queue capacity 1 and a slow single worker: a pipelined burst must
    // overflow the queue, and every overflow must be answered with
    // `overloaded` — while queued work still completes and the server
    // keeps serving afterwards.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        worker_delay: Some(Duration::from_millis(25)),
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);
    let mut client = connect(addr);

    const BURST: usize = 16;
    for id in 0..BURST as u64 {
        client.send_raw(&format!("{{\"id\":{id},\"expr\":\"x + y - (x&y)\"}}")).unwrap();
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let mut seen_ids = std::collections::BTreeSet::new();
    for _ in 0..BURST {
        let r = client.recv().unwrap();
        assert!(seen_ids.insert(r.id().unwrap()), "duplicate response");
        match r.error() {
            None => {
                assert_eq!(r.str_field("simplified"), Some("x|y"));
                ok += 1;
            }
            Some("overloaded") => {
                assert!(r.str_field("detail").unwrap().contains("capacity 1"));
                overloaded += 1;
            }
            Some(other) => panic!("unexpected error `{other}`: {}", r.raw),
        }
    }
    assert_eq!(ok + overloaded, BURST);
    assert!(ok >= 1, "no request got through");
    assert!(
        overloaded >= 1,
        "burst of {BURST} into a capacity-1 queue shed nothing"
    );

    // Backpressure, not failure: once the burst drains, the same
    // connection and a fresh one both get served.
    let again = client.simplify(900, "x ^ x", 64, None).unwrap();
    assert!(again.is_ok(), "{}", again.raw);
    let mut fresh = connect(addr);
    let fresh_ok = fresh.simplify(901, "x & x", 64, None).unwrap();
    assert!(fresh_ok.is_ok(), "{}", fresh_ok.raw);

    let stats = fresh.stats().unwrap();
    assert_eq!(stats.u64_field("overloaded"), Some(overloaded as u64));

    fresh.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_work_before_acking() {
    // A slow worker guarantees requests are still queued when the
    // shutdown request lands right behind them on the same connection.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        worker_delay: Some(Duration::from_millis(20)),
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);
    let mut client = connect(addr);

    const IN_FLIGHT: usize = 5;
    for id in 0..IN_FLIGHT as u64 {
        client
            .send_raw(&format!("{{\"id\":{id},\"expr\":\"x + y - 2*(x&y)\"}}"))
            .unwrap();
    }
    client.send_raw("{\"id\":99,\"control\":\"shutdown\"}").unwrap();

    // Every queued request is answered...
    let mut answered = std::collections::BTreeSet::new();
    for _ in 0..IN_FLIGHT {
        let r = client.recv().unwrap();
        assert!(r.is_ok(), "in-flight request dropped: {}", r.raw);
        assert_eq!(r.str_field("simplified"), Some("x^y"));
        answered.insert(r.id().unwrap());
    }
    assert_eq!(answered.len(), IN_FLIGHT);

    // ...and only then does the acknowledgement arrive, echoing the id
    // and the drain count.
    let ack = client.recv().unwrap();
    assert_eq!(ack.str_field("ok"), Some("shutdown"), "{}", ack.raw);
    assert_eq!(ack.id(), Some(99));
    assert_eq!(ack.u64_field("served"), Some(IN_FLIGHT as u64));

    // run() returns cleanly and the listener is gone.
    handle.join().unwrap().unwrap();
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn requests_after_shutdown_are_refused_on_other_connections() {
    let config = ServerConfig {
        workers: 1,
        worker_delay: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);
    let mut worker_conn = connect(addr);
    let mut shutdown_conn = connect(addr);

    // Put slow work in flight, then request shutdown from a second
    // connection while it is still running. The pause lets the first
    // connection's reader enqueue id 1 before the shutdown flag flips —
    // without it the two reader threads race and id 1 may be refused
    // before it was ever "in flight".
    worker_conn
        .send_raw("{\"id\":1,\"expr\":\"(x&~y)*(~x&y) + (x&y)*(x|y)\"}")
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    shutdown_conn.send_raw("{\"control\":\"shutdown\"}").unwrap();

    // The first connection tries to sneak another request in during
    // the drain: either the reader already stopped (EOF at drain end)
    // or it is refused with `shutting_down` — it must never be
    // silently queued and then dropped without an answer.
    std::thread::sleep(Duration::from_millis(10));
    worker_conn.send_raw("{\"id\":2,\"expr\":\"x\"}").unwrap();

    // The refusal is written inline by the reader while the worker is
    // still computing id 1, so the two responses can arrive in either
    // order — match them by id.
    let mut got_first = false;
    let mut got_second = false;
    loop {
        match worker_conn.recv() {
            Ok(r) if r.id() == Some(1) => {
                assert_eq!(r.str_field("simplified"), Some("x*y"), "{}", r.raw);
                got_first = true;
            }
            Ok(r) if r.id() == Some(2) => {
                assert_eq!(r.error(), Some("shutting_down"), "{}", r.raw);
                got_second = true;
            }
            Ok(r) => panic!("unexpected response: {}", r.raw),
            Err(e) => {
                // Connection teardown is only acceptable once the
                // in-flight result has been delivered and only in place
                // of the refusal (the reader may already have stopped
                // when id 2 arrived). A reader that stopped *before*
                // consuming id 2 leaves those bytes unread, so the drop
                // surfaces as RST (reset) rather than FIN (EOF) —
                // either way id 2 was refused, not silently queued.
                assert!(
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::UnexpectedEof
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                    ),
                    "unexpected transport error: {e}"
                );
                assert!(got_first, "in-flight request dropped");
                break;
            }
        }
        if got_first && got_second {
            break;
        }
    }

    let ack = shutdown_conn.recv().unwrap();
    assert_eq!(ack.str_field("ok"), Some("shutdown"));
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_under_concurrent_load_answers_every_accepted_request_once() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;

    // Multi-threaded shutdown stress: several connections blasting
    // pipelined requests into a small queue while shutdown lands
    // mid-stream. The invariant under test — every accepted request is
    // answered exactly once — shows up client-side as "no duplicate
    // ids, every response well-formed, EOF only after shutdown began",
    // and server-side as `run()` returning `Ok(())` (which it only
    // does after the backlog is drained and flushed).
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 8,
        worker_delay: Some(Duration::from_millis(2)),
        ..ServerConfig::default()
    };
    let (addr, handle) = harness(config);

    const THREADS: u64 = 4;
    const WARMUP: u64 = 8;
    const BLAST: u64 = 40;
    let ready = Barrier::new(THREADS as usize + 1);
    let shutdown_sent = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ready = &ready;
            let shutdown_sent = &shutdown_sent;
            scope.spawn(move || {
                let mut client = connect(addr);
                let mut seen = std::collections::BTreeSet::new();
                // Phase 1, before shutdown: every request must be
                // answered — served or shed, never dropped.
                for i in 0..WARMUP {
                    let id = t * 10_000 + i;
                    client
                        .send_raw(&format!("{{\"id\":{id},\"expr\":\"x + y - 2*(x&y)\"}}"))
                        .unwrap();
                }
                for _ in 0..WARMUP {
                    let r = client.recv().expect("pre-shutdown request dropped");
                    assert!(seen.insert(r.id().unwrap()), "duplicate response: {}", r.raw);
                    match r.error() {
                        None => assert_eq!(r.str_field("simplified"), Some("x^y")),
                        Some("overloaded") => {}
                        Some(other) => panic!("unexpected error `{other}`: {}", r.raw),
                    }
                }
                ready.wait();
                // Phase 2: blast while shutdown lands mid-stream. Late
                // sends may fail once the reader stops; reads end at
                // EOF. Whatever does come back must be well-formed and
                // arrive exactly once.
                for i in 0..BLAST {
                    let id = t * 10_000 + 1_000 + i;
                    if client
                        .send_raw(&format!("{{\"id\":{id},\"expr\":\"x + y - 2*(x&y)\"}}"))
                        .is_err()
                    {
                        break;
                    }
                }
                // Reads end at EOF/reset once the reader winds down —
                // legal only after shutdown was actually requested.
                while let Ok(r) = client.recv() {
                    let id = r.id().unwrap_or_else(|| panic!("no id: {}", r.raw));
                    assert!(seen.insert(id), "duplicate response: {}", r.raw);
                    match r.error() {
                        None => assert_eq!(r.str_field("simplified"), Some("x^y")),
                        Some("overloaded" | "shutting_down") => {}
                        Some(other) => panic!("unexpected error `{other}`: {}", r.raw),
                    }
                }
                assert!(
                    shutdown_sent.load(Ordering::SeqCst),
                    "connection ended before shutdown was requested"
                );
            });
        }
        ready.wait();
        std::thread::sleep(Duration::from_millis(5));
        let mut ctl = connect(addr);
        shutdown_sent.store(true, Ordering::SeqCst);
        let ack = ctl.shutdown().unwrap();
        assert_eq!(ack.str_field("ok"), Some("shutdown"), "{}", ack.raw);
    });

    handle.join().unwrap().unwrap();
}
