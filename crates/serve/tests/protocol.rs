//! Wire-protocol robustness against a live server: malformed JSON,
//! unknown fields, oversized lines, and parse-error floods. The
//! invariant under test is always the same — one bad line gets one
//! error response, and neither the connection nor the worker pool dies.

use std::time::Duration;

use mba_serve::{server, Client, ServerConfig};

/// Spawns a server on a fresh loopback port and connects a client.
fn harness(config: ServerConfig) -> (Client, server::ServerHandle) {
    let (addr, handle) = server::spawn("127.0.0.1:0", config).expect("spawn server");
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (client, handle)
}

fn shutdown(mut client: Client, handle: server::ServerHandle) {
    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.str_field("ok"), Some("shutdown"));
    handle.join().unwrap().unwrap();
}

#[test]
fn table_driven_bad_lines_get_error_responses_and_connection_survives() {
    struct Case {
        name: &'static str,
        line: &'static str,
        expect_code: &'static str,
        /// Expected `id` echo in the error, when the line got that far.
        expect_id: Option<u64>,
    }
    let cases = [
        Case {
            name: "not json at all",
            line: "simplify x+y please",
            expect_code: "parse",
            expect_id: None,
        },
        Case {
            name: "truncated object",
            line: "{\"id\":1,\"expr\":\"x\"",
            expect_code: "parse",
            expect_id: None,
        },
        Case {
            name: "json but not an object",
            line: "[1,2,3]",
            expect_code: "invalid",
            expect_id: None,
        },
        Case {
            name: "missing expr",
            line: "{\"id\":7}",
            expect_code: "invalid",
            expect_id: Some(7),
        },
        Case {
            name: "missing id",
            line: "{\"expr\":\"x\"}",
            expect_code: "invalid",
            expect_id: None,
        },
        Case {
            name: "expr wrong type",
            line: "{\"id\":8,\"expr\":42}",
            expect_code: "invalid",
            expect_id: Some(8),
        },
        Case {
            name: "width out of range",
            line: "{\"id\":9,\"expr\":\"x\",\"width\":65}",
            expect_code: "invalid",
            expect_id: Some(9),
        },
        Case {
            name: "width zero",
            line: "{\"id\":10,\"expr\":\"x\",\"width\":0}",
            expect_code: "invalid",
            expect_id: Some(10),
        },
        Case {
            name: "negative id",
            line: "{\"id\":-4,\"expr\":\"x\"}",
            expect_code: "invalid",
            expect_id: None,
        },
        Case {
            name: "bad deadline type",
            line: "{\"id\":11,\"expr\":\"x\",\"deadline_ms\":\"soon\"}",
            expect_code: "invalid",
            expect_id: Some(11),
        },
        Case {
            name: "unknown control",
            line: "{\"control\":\"reboot\"}",
            expect_code: "invalid",
            expect_id: None,
        },
        Case {
            name: "expression that does not parse",
            line: "{\"id\":12,\"expr\":\"x +* y ((\"}",
            expect_code: "invalid",
            expect_id: Some(12),
        },
    ];

    let (mut client, handle) = harness(ServerConfig::default());
    for case in &cases {
        client.send_raw(case.line).unwrap();
        let response = client.recv().unwrap_or_else(|e| {
            panic!("[{}] no response: {e}", case.name)
        });
        assert_eq!(
            response.error(),
            Some(case.expect_code),
            "[{}] wrong code in {}",
            case.name,
            response.raw
        );
        assert_eq!(
            response.id(),
            case.expect_id,
            "[{}] wrong id echo in {}",
            case.name,
            response.raw
        );
        // The connection survives: a well-formed request still works.
        let ok = client.simplify(1000, "x + y - (x&y)", 64, None).unwrap();
        assert_eq!(
            ok.str_field("simplified"),
            Some("x|y"),
            "[{}] connection did not survive",
            case.name
        );
    }
    shutdown(client, handle);
}

#[test]
fn unknown_fields_are_ignored() {
    let (mut client, handle) = harness(ServerConfig::default());
    client
        .send_raw(
            "{\"id\":3,\"expr\":\"2*(x|y) - (~x&y) - (x&~y)\",\"width\":64,\
             \"priority\":\"high\",\"tags\":[1,2],\"nested\":{\"a\":null}}",
        )
        .unwrap();
    let response = client.recv().unwrap();
    assert!(response.is_ok(), "unexpected error: {}", response.raw);
    assert_eq!(response.str_field("simplified"), Some("x+y"));
    assert_eq!(response.id(), Some(3));
    shutdown(client, handle);
}

#[test]
fn oversized_line_is_rejected_but_connection_survives() {
    let config = ServerConfig {
        max_line_bytes: 512,
        ..ServerConfig::default()
    };
    let (mut client, handle) = harness(config);

    // An oversized, newline-terminated garbage line: one `invalid`
    // response, then business as usual on the same connection.
    let huge = format!("{{\"id\":1,\"expr\":\"{}\"}}", "x+".repeat(4096));
    assert!(huge.len() > 512);
    client.send_raw(&huge).unwrap();
    let response = client.recv().unwrap();
    assert_eq!(response.error(), Some("invalid"), "got {}", response.raw);
    assert!(response.str_field("detail").unwrap().contains("512 bytes"));

    let ok = client.simplify(2, "x ^ x", 64, None).unwrap();
    assert_eq!(ok.str_field("simplified"), Some("0"), "connection died");

    // A second oversized line *without* a newline yet: the reader must
    // reject it mid-stream (no newline needed to detect the overflow)
    // and resynchronize at the next newline.
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(handle_addr(&mut client)).unwrap();
    raw.write_all(&vec![b'a'; 600]).unwrap();
    raw.flush().unwrap();
    let mut oversized_client = client_from(raw);
    let response = oversized_client.recv().unwrap();
    assert_eq!(response.error(), Some("invalid"));
    // Finish the garbage line, then speak properly.
    oversized_client.send_raw("garbage-tail").unwrap();
    let ok = oversized_client.simplify(4, "x & x", 64, None).unwrap();
    assert_eq!(ok.str_field("simplified"), Some("x"));

    shutdown(client, handle);
}

/// The server's address is not directly exposed by `Client`; tests that
/// need a second raw connection stash it via a stats round-trip.
fn handle_addr(client: &mut Client) -> std::net::SocketAddr {
    // `Client` keeps the peer address on its socket.
    client_peer(client)
}

fn client_peer(client: &mut Client) -> std::net::SocketAddr {
    // Ping first so a half-open socket fails loudly here, not later.
    client.ping().expect("ping");
    client.peer_addr().expect("peer addr")
}

fn client_from(stream: std::net::TcpStream) -> Client {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    Client::from_stream(stream).expect("client from stream")
}

#[test]
fn parse_error_flood_never_kills_the_worker_pool() {
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let (mut client, handle) = harness(config);
    for i in 0..100 {
        client.send_raw("}}}{{{").unwrap();
        let e = client.recv().unwrap();
        assert_eq!(e.error(), Some("parse"), "iteration {i}");
    }
    // Workers still serve after the flood.
    let ok = client
        .simplify(7, "(x&~y)*(~x&y) + (x&y)*(x|y)", 64, None)
        .unwrap();
    assert_eq!(ok.str_field("simplified"), Some("x*y"));
    shutdown(client, handle);
}

#[test]
fn blank_lines_are_tolerated_silently() {
    let (mut client, handle) = harness(ServerConfig::default());
    client.send_raw("").unwrap();
    client.send_raw("   ").unwrap();
    let ok = client.simplify(1, "~(x - 1)", 64, None).unwrap();
    assert_eq!(ok.str_field("simplified"), Some("-x"));
    assert_eq!(ok.id(), Some(1));
    shutdown(client, handle);
}

#[test]
fn ping_and_stats_controls_answer_inline() {
    let (mut client, handle) = harness(ServerConfig::default());
    let pong = client.ping().unwrap();
    assert_eq!(pong.str_field("ok"), Some("ping"));

    // A polynomial request: linear inputs ride the corner-recovery fast
    // path and never miss (or hit) the signature cache.
    client.simplify(1, "x*y + 2*(x&y)", 64, None).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.str_field("ok"), Some("stats"));
    assert_eq!(stats.u64_field("served"), Some(1));
    assert_eq!(stats.u64_field("protocol_errors"), Some(0));
    assert!(stats.u64_field("cache_misses").unwrap() > 0);
    assert!(stats.u64_field("queue_capacity").unwrap() > 0);
    shutdown(client, handle);
}
