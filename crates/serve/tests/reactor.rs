//! Reactor-mode state-machine tests: partial reads, chunked writes,
//! mid-stream oversize enforcement, and byte-identity against the
//! thread-per-connection mode.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mba_serve::{Client, ServeMode, Server, ServerConfig};
use mba_verify::{generate_case, CaseConfig};

fn spawn(config: ServerConfig) -> (std::net::SocketAddr, mba_serve::server::ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn reactor_config() -> ServerConfig {
    ServerConfig {
        mode: ServeMode::Reactor,
        workers: 2,
        ..ServerConfig::default()
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    let ack = c.shutdown().expect("shutdown ack");
    assert_eq!(ack.str_field("ok"), Some("shutdown"));
}

/// A slow-loris client dripping one byte at a time must still be parsed
/// correctly — the reactor buffers partial lines per connection and a
/// slow sender never blocks anyone (the other connection's requests
/// keep being served while the drip is in progress).
#[test]
fn slow_loris_byte_at_a_time_is_buffered_not_blocking() {
    let (addr, handle) = spawn(reactor_config());
    let request = b"{\"id\":7,\"expr\":\"(x & y) + (x | y)\",\"width\":64}\n";
    let mut slow = TcpStream::connect(addr).expect("connect");
    let mut fast = Client::connect(addr).expect("connect fast");
    for (i, byte) in request.iter().enumerate() {
        slow.write_all(std::slice::from_ref(byte)).expect("drip");
        slow.flush().expect("flush");
        if i % 16 == 0 {
            // Interleave full requests from another connection: the
            // drip must not stall them.
            let reply = fast.simplify(i as u64, "x ^ x", 64, None).expect("fast request");
            assert_eq!(reply.str_field("simplified"), Some("0"));
        }
    }
    let mut reader = BufReader::new(slow.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(
        line.contains("\"id\":7") && line.contains("\"simplified\":\"x+y\""),
        "unexpected reply: {line}"
    );
    shutdown(addr);
    handle.join().unwrap().unwrap();
}

/// Several requests written in arbitrary chunk sizes (split mid-JSON,
/// across token boundaries) all parse once their newlines arrive.
#[test]
fn requests_split_across_many_reads_reassemble() {
    let (addr, handle) = spawn(reactor_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = (0..10)
        .map(|i| format!("{{\"id\":{i},\"expr\":\"x + {i}*0\",\"width\":64}}\n"))
        .collect::<String>();
    // Chunk sizes coprime with the line length exercise every split.
    for chunk in payload.as_bytes().chunks(13) {
        stream.write_all(chunk).expect("chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..10 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        let json = mba_serve::parse_json(line.trim()).expect("reply parses");
        let obj = json.as_obj().expect("object");
        assert_eq!(
            obj.get("simplified").and_then(|j| j.as_str()),
            Some("x"),
            "bad reply: {line}"
        );
        seen.insert(obj.get("id").and_then(|j| j.as_u64()).expect("id"));
    }
    assert_eq!(seen.len(), 10, "every request answered exactly once");
    shutdown(addr);
    handle.join().unwrap().unwrap();
}

/// With the test-only write chunk limit the response cannot flush in
/// one `write`; the remainder goes through the reactor's pending
/// buffer and writable events, and the client still sees one intact
/// line.
#[test]
fn responses_spanning_multiple_writes_arrive_intact() {
    let (addr, handle) = spawn(ServerConfig {
        write_chunk_limit: Some(7),
        ..reactor_config()
    });
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..20u64 {
        let reply = client
            .simplify(i, "2*(x|y) - (~x&y) - (x&~y)", 64, None)
            .expect("reply");
        assert_eq!(reply.id(), Some(i));
        assert_eq!(reply.str_field("simplified"), Some("x+y"), "run {i}");
    }
    shutdown(addr);
    handle.join().unwrap().unwrap();
}

/// A newline-less flood past the line cap is answered once mid-stream
/// (not after 64KiB of buffering) and the connection resyncs at the
/// next newline.
#[test]
fn oversized_newline_less_flood_is_rejected_mid_stream_and_resyncs() {
    let (addr, handle) = spawn(ServerConfig {
        max_line_bytes: 256,
        ..reactor_config()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[b'x'; 4096]).expect("flood");
    stream.flush().expect("flush");
    // The rejection must arrive while the line is still unterminated.
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("error reply");
    assert!(
        line.contains("\"error\":\"invalid\"") && line.contains("exceeds 256 bytes"),
        "unexpected: {line}"
    );
    // More flood, then the resync newline, then a valid request.
    stream.write_all(&[b'x'; 1000]).expect("more flood");
    stream.write_all(b"\n").expect("resync");
    stream
        .write_all(b"{\"id\":9,\"expr\":\"x & x\",\"width\":64}\n")
        .expect("valid request");
    stream.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("reply");
    assert!(
        line.contains("\"id\":9") && line.contains("\"simplified\":\"x\""),
        "connection did not resync: {line}"
    );
    shutdown(addr);
    handle.join().unwrap().unwrap();
}

/// Blanks the values of timing-dependent fields so responses from two
/// runs can be compared byte-for-byte.
fn mask_timing(line: &str) -> String {
    let mut out = line.to_string();
    for key in ["\"micros\":", "\"cache_hit_rate\":"] {
        if let Some(start) = out.find(key) {
            let value_start = start + key.len();
            let value_end = out[value_start..]
                .find([',', '}'])
                .map_or(out.len(), |off| value_start + off);
            out.replace_range(value_start..value_end, "_");
        }
    }
    out
}

/// The load-bearing differential: the reactor and the thread-per-
/// connection mode must produce byte-identical responses (modulo the
/// masked timing fields) for the same seeded request stream, including
/// protocol errors and the shutdown ack.
#[test]
fn reactor_and_thread_modes_are_byte_identical_on_a_seeded_stream() {
    let case_config = CaseConfig::default();
    let requests: Vec<(u64, String, u32)> = (0..30u64)
        .map(|i| {
            let expr = generate_case(7, i, &case_config).expr.to_string();
            (i, expr, if i % 3 == 0 { 32 } else { 64 })
        })
        .collect();

    let run_mode = |mode: ServeMode| -> Vec<String> {
        let (addr, handle) = spawn(ServerConfig {
            mode,
            workers: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let mut lines: Vec<String> = requests
            .iter()
            .map(|(id, expr, width)| {
                let reply = client.simplify(*id, expr, *width, None).expect("reply");
                mask_timing(&reply.raw)
            })
            .collect();
        // Error paths must match too.
        client.send_raw("{\"id\":99,\"expr\":\"x +\",\"width\":64}").expect("send");
        lines.push(mask_timing(&client.recv().expect("recv").raw));
        client.send_raw("not json").expect("send");
        lines.push(mask_timing(&client.recv().expect("recv").raw));
        let ack = client.shutdown().expect("ack");
        lines.push(mask_timing(&ack.raw));
        handle.join().unwrap().unwrap();
        lines
    };

    let reactor = run_mode(ServeMode::Reactor);
    let threaded = run_mode(ServeMode::ThreadPerConnection);
    assert_eq!(reactor.len(), threaded.len());
    for (i, (r, t)) in reactor.iter().zip(&threaded).enumerate() {
        assert_eq!(r, t, "response {i} differs between modes");
    }
}

/// EOF with a final unterminated line still gets that line answered
/// before the connection is reaped.
#[test]
fn final_unterminated_line_is_served_after_eof() {
    let (addr, handle) = spawn(reactor_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"id\":3,\"expr\":\"x | x\",\"width\":64}")
        .expect("request without newline");
    stream.flush().expect("flush");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    assert!(
        reply.contains("\"id\":3") && reply.contains("\"simplified\":\"x\""),
        "unexpected: {reply}"
    );
    shutdown(addr);
    handle.join().unwrap().unwrap();
}
