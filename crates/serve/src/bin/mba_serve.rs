//! The resident MBA simplification server.
//!
//! ```text
//! mba_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!           [--max-line-bytes N] [--no-synthesis]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (port 0 is
//! resolved), serves until a `{"control":"shutdown"}` request, drains
//! in-flight work, and exits 0.

use std::process::ExitCode;

use mba_serve::{Server, ServerConfig};

fn usage() -> String {
    "usage: mba_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
     [--max-line-bytes N] [--no-synthesis]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7474".into(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr")?.clone(),
            "--workers" => {
                config.workers = parse_num(take("--workers")?)?;
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_num(take("--queue-capacity")?)?;
                if config.queue_capacity == 0 {
                    return Err("--queue-capacity must be positive".into());
                }
            }
            "--max-line-bytes" => {
                config.max_line_bytes = parse_num(take("--max-line-bytes")?)?;
                if config.max_line_bytes < 64 {
                    return Err("--max-line-bytes must be at least 64".into());
                }
            }
            "--no-synthesis" => config.use_synthesis = false,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts scrape this line to learn the resolved port.
    println!("listening on {}", server.local_addr());
    let state = server.state();
    match server.run() {
        Ok(()) => {
            let c = &state.counters;
            eprintln!(
                "shutdown: served={} overloaded={} deadline_expired={} protocol_errors={} internal_errors={} | signature cache: {}",
                c.served.get(),
                c.overloaded.get(),
                c.deadline_expired.get(),
                c.protocol_errors.get(),
                c.internal_errors.get(),
                state.cache_stats(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
