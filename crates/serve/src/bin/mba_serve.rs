//! The resident MBA simplification server.
//!
//! ```text
//! mba_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!           [--max-line-bytes N] [--no-synthesis] [--thread-io]
//!           [--cache-budget N] [--cache-snapshot PATH]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (port 0 is
//! resolved), serves until a `{"control":"shutdown"}` request, drains
//! in-flight work, and exits 0.
//!
//! Connection I/O defaults to the epoll reactor; `--thread-io` selects
//! the thread-per-connection fallback. `--cache-budget N` caps the
//! signature cache at N entries (0 disables eviction); `--cache-snapshot
//! PATH` warm-starts the cache from PATH at bind and writes it back on
//! shutdown.

use std::process::ExitCode;

use mba_serve::{ServeMode, Server, ServerConfig};

fn usage() -> String {
    "usage: mba_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
     [--max-line-bytes N] [--no-synthesis] [--thread-io] [--cache-budget N] \
     [--cache-snapshot PATH]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7474".into(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr")?.clone(),
            "--workers" => {
                config.workers = parse_num(take("--workers")?)?;
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_num(take("--queue-capacity")?)?;
                if config.queue_capacity == 0 {
                    return Err("--queue-capacity must be positive".into());
                }
            }
            "--max-line-bytes" => {
                config.max_line_bytes = parse_num(take("--max-line-bytes")?)?;
                if config.max_line_bytes < 64 {
                    return Err("--max-line-bytes must be at least 64".into());
                }
            }
            "--no-synthesis" => config.use_synthesis = false,
            "--thread-io" => config.mode = ServeMode::ThreadPerConnection,
            "--cache-budget" => {
                let budget: usize = parse_num(take("--cache-budget")?)?;
                config.cache_budget = (budget > 0).then_some(budget);
            }
            "--cache-snapshot" => {
                config.cache_snapshot = Some(take("--cache-snapshot")?.into());
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts scrape this line to learn the resolved port.
    println!("listening on {}", server.local_addr());
    let state = server.state();
    match server.run() {
        Ok(()) => {
            let c = &state.counters;
            eprintln!(
                "shutdown: served={} overloaded={} deadline_expired={} protocol_errors={} internal_errors={} | signature cache: {}",
                c.served.get(),
                c.overloaded.get(),
                c.deadline_expired.get(),
                c.protocol_errors.get(),
                c.internal_errors.get(),
                state.cache_stats(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
