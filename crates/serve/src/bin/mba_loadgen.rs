//! Load generator for `mba_serve`: replays a deterministic
//! generator-built corpus (the `mba-verify` case stream — mixed
//! linear / polynomial / non-polynomial obfuscations plus structural
//! random ASTs), then writes `BENCH_serve.json` with throughput,
//! p50/p95/p99 latency, error counts, and end-of-run cache statistics.
//!
//! ```text
//! mba_loadgen [--addr HOST:PORT] [--requests N] [--concurrency N]
//!             [--mode closed|open] [--rate RPS]
//!             [--seed N] [--width 1..=64] [--deadline-ms N]
//!             [--obfuscated-fraction F] [--no-shutdown]
//!             [--require-warming] [--allow-errors]
//! ```
//!
//! Two arrival models:
//!
//! * **closed** (default): `--concurrency` synchronous clients, each
//!   sending its next request the moment the previous response lands.
//!   Offered load adapts to server speed — good for latency floors,
//!   blind to queueing collapse.
//! * **open**: requests depart on a fixed schedule (`--rate` per
//!   second, round-robin across `--concurrency` pre-opened
//!   connections) regardless of completions, the arrival model real
//!   front-ends face. Latency is measured from the *scheduled* send
//!   time, so server-side queueing is charged to the server. The open
//!   mode drives all connections from one event loop (the same epoll
//!   shim the server's reactor uses), which is what makes 10k+
//!   connection runs possible from a single process.
//!
//! Exit status: 0 only when every request was answered without an
//! error response (unless `--allow-errors`) and, under
//! `--require-warming`, the shared cache's hit rate was strictly
//! higher over the second half of the run than the first.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mba_bench::report::{percentile, BenchReport};
use mba_serve::protocol::json_escape;
use mba_serve::{parse_json, Client};
use mba_verify::{generate_case, CaseConfig};
use mio::{Events, Interest, Poll, Token};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadMode {
    Closed,
    Open,
}

#[derive(Debug, Clone)]
struct LoadConfig {
    addr: String,
    requests: usize,
    concurrency: usize,
    mode: LoadMode,
    /// Open-loop arrival rate, requests per second.
    rate: f64,
    seed: u64,
    width: u32,
    deadline_ms: Option<u64>,
    obfuscated_fraction: f64,
    shutdown: bool,
    require_warming: bool,
    allow_errors: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7474".into(),
            requests: 2000,
            concurrency: 8,
            mode: LoadMode::Closed,
            rate: 500.0,
            seed: 42,
            width: 64,
            deadline_ms: None,
            obfuscated_fraction: 0.75,
            shutdown: true,
            require_warming: false,
            allow_errors: false,
        }
    }
}

fn usage() -> String {
    "usage: mba_loadgen [--addr HOST:PORT] [--requests N] [--concurrency N] \
     [--mode closed|open] [--rate RPS] [--seed N] [--width 1..=64] \
     [--deadline-ms N] [--obfuscated-fraction F] [--no-shutdown] \
     [--require-warming] [--allow-errors]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<LoadConfig, String> {
    let mut config = LoadConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr")?.clone(),
            "--requests" => config.requests = parse_num(take("--requests")?)?,
            "--concurrency" => {
                config.concurrency = parse_num(take("--concurrency")?)?;
                if config.concurrency == 0 {
                    return Err("--concurrency must be positive".into());
                }
            }
            "--mode" => {
                config.mode = match take("--mode")?.as_str() {
                    "closed" => LoadMode::Closed,
                    "open" => LoadMode::Open,
                    other => return Err(format!("unknown mode `{other}` (closed|open)")),
                };
            }
            "--rate" => {
                config.rate = parse_num(take("--rate")?)?;
                if !config.rate.is_finite() || config.rate <= 0.0 {
                    return Err("--rate must be a positive number".into());
                }
            }
            "--seed" => config.seed = parse_num(take("--seed")?)?,
            "--width" => {
                config.width = parse_num(take("--width")?)?;
                if !(1..=64).contains(&config.width) {
                    return Err("--width must be in 1..=64".into());
                }
            }
            "--deadline-ms" => config.deadline_ms = Some(parse_num(take("--deadline-ms")?)?),
            "--obfuscated-fraction" => {
                config.obfuscated_fraction = parse_num(take("--obfuscated-fraction")?)?;
                if !(0.0..=1.0).contains(&config.obfuscated_fraction) {
                    return Err("--obfuscated-fraction must be in 0..=1".into());
                }
            }
            "--no-shutdown" => config.shutdown = false,
            "--require-warming" => config.require_warming = true,
            "--allow-errors" => config.allow_errors = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if config.mode == LoadMode::Open && !mio::backend_available() {
        return Err("--mode open needs the epoll backend (Linux only)".into());
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

/// One completed request, as observed by the client.
struct Sample {
    /// Completion instant, as an offset from run start (for the
    /// first-half / second-half cache-warming split).
    completed_at_micros: u64,
    /// Observed latency: round-trip time in closed mode; time from the
    /// *scheduled* departure in open mode.
    latency_micros: u64,
    /// The server-reported cumulative cache hit rate at completion.
    cache_hit_rate: f64,
    /// The error code, when the response was an error.
    error: Option<String>,
}

/// Renders one simplify request, byte-compatible with
/// [`Client::simplify`].
fn encode_request(id: u64, expr: &str, width: u32, deadline_ms: Option<u64>) -> String {
    let mut line = format!("{{\"id\":{},\"expr\":\"{}\",\"width\":{}", id, json_escape(expr), width);
    if let Some(d) = deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    line.push('}');
    line
}

/// Closed loop: `concurrency` synchronous clients racing down a shared
/// work list. Returns (samples, transport errors, measured wall time).
fn run_closed(config: &LoadConfig, exprs: &[String]) -> (Vec<Sample>, u64, Duration) {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let mut transport_errors = 0u64;
    let mut samples: Vec<Sample> = Vec::with_capacity(config.requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.concurrency)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut failures = 0u64;
                    let mut client = match Client::connect(&config.addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("connect to {} failed: {e}", config.addr);
                            return (local, 1);
                        }
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(expr) = exprs.get(i) else { break };
                        let sent = Instant::now();
                        match client.simplify(i as u64, expr, config.width, config.deadline_ms)
                        {
                            Ok(response) => {
                                let latency = sent.elapsed();
                                let mismatched = response.id() != Some(i as u64);
                                local.push(Sample {
                                    completed_at_micros: start.elapsed().as_micros() as u64,
                                    latency_micros: latency.as_micros() as u64,
                                    cache_hit_rate: response
                                        .num_field("cache_hit_rate")
                                        .unwrap_or(0.0),
                                    error: response
                                        .error()
                                        .map(str::to_string)
                                        .or(mismatched.then(|| "id_mismatch".into())),
                                });
                            }
                            Err(e) => {
                                eprintln!("request {i} failed: {e}");
                                failures += 1;
                            }
                        }
                    }
                    (local, failures)
                })
            })
            .collect();
        for h in handles {
            let (local, failures) = h.join().expect("client thread panicked");
            samples.extend(local);
            transport_errors += failures;
        }
    });
    (samples, transport_errors, start.elapsed())
}

/// One open-loop connection's client-side state.
struct OpenConn {
    stream: TcpStream,
    /// Request bytes scheduled but not yet written.
    out: VecDeque<u8>,
    /// Partial response line.
    in_buf: Vec<u8>,
    /// Requests sent and not yet answered.
    outstanding: u64,
    /// Current registration includes WRITABLE.
    want_write: bool,
    dead: bool,
}

/// How long past the scheduled end of sending the open loop waits for
/// stragglers before declaring the missing responses lost.
const OPEN_LOOP_GRACE: Duration = Duration::from_secs(120);

/// Open loop: pre-connect `concurrency` sockets, then depart requests
/// on the `--rate` schedule round-robin across them, all driven from
/// one epoll event loop. Returns (samples, transport errors, measured
/// wall time) — the connect phase is excluded from the wall time.
fn run_open(config: &LoadConfig, exprs: &[String]) -> Result<(Vec<Sample>, u64, Duration), String> {
    let n = exprs.len();
    let mut poll = Poll::new().map_err(|e| format!("epoll setup failed: {e}"))?;
    let mut events = Events::with_capacity(1024);

    // Phase 1: establish every connection before the clock starts, so
    // measured latency is pure request service, not handshake queueing.
    // Accept backlog overflow shows up as refused/reset connects;
    // retry with a small backoff.
    let mut conns: Vec<OpenConn> = Vec::with_capacity(config.concurrency);
    for c in 0..config.concurrency {
        let mut attempt = 0;
        let stream = loop {
            match TcpStream::connect(&config.addr) {
                Ok(s) => break s,
                Err(e) => {
                    attempt += 1;
                    if attempt >= 200 {
                        return Err(format!("connection {c} failed after {attempt} tries: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking failed: {e}"))?;
        poll.registry()
            .register(&stream, Token(c), Interest::READABLE)
            .map_err(|e| format!("register failed: {e}"))?;
        conns.push(OpenConn {
            stream,
            out: VecDeque::new(),
            in_buf: Vec::new(),
            outstanding: 0,
            want_write: false,
            dead: false,
        });
        if (c + 1) % 2000 == 0 {
            eprintln!("  {} connections open ...", c + 1);
        }
    }
    eprintln!("all {} connections open", conns.len());

    // Phase 2: scheduled departures. Request `i` departs at
    // `start + i/rate` on connection `i % C`; its latency is charged
    // from that scheduled instant.
    let start = Instant::now();
    let due_micros = |i: usize| (i as f64 / config.rate * 1e6) as u64;
    let mut next_send = 0usize;
    let mut accounted = 0usize;
    let mut transport_errors = 0u64;
    let mut samples: Vec<Sample> = Vec::with_capacity(n);
    let deadline = start
        + Duration::from_secs_f64(n as f64 / config.rate)
        + OPEN_LOOP_GRACE;

    while accounted < n {
        let now = Instant::now();
        if now > deadline {
            let missing = n - accounted;
            eprintln!("open loop timed out with {missing} responses outstanding");
            transport_errors += missing as u64;
            break;
        }
        // Depart everything that is due.
        while next_send < n && now.duration_since(start).as_micros() as u64 >= due_micros(next_send)
        {
            let i = next_send;
            next_send += 1;
            let c = i % conns.len();
            let conn = &mut conns[c];
            if conn.dead {
                transport_errors += 1;
                accounted += 1;
                continue;
            }
            let line = encode_request(i as u64, &exprs[i], config.width, config.deadline_ms);
            conn.out.extend(line.as_bytes());
            conn.out.push_back(b'\n');
            conn.outstanding += 1;
            flush_open(conn);
            sync_interest(&poll, c, conn);
            if conn.dead {
                // The write failed: this request and everything else
                // outstanding on the connection is lost.
                let lost = conn.outstanding;
                conn.outstanding = 0;
                transport_errors += lost;
                accounted += lost as usize;
                let _ = poll.registry().deregister(&conn.stream);
            }
        }
        if accounted >= n {
            break;
        }
        // Sleep until the next departure (or a tick, for stragglers).
        let timeout = if next_send < n {
            let due = start + Duration::from_micros(due_micros(next_send));
            due.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(100))
        } else {
            Duration::from_millis(100)
        };
        poll.poll(&mut events, Some(timeout))
            .map_err(|e| format!("poll failed: {e}"))?;
        for event in events.iter() {
            let Token(c) = event.token();
            let conn = &mut conns[c];
            if conn.dead {
                continue;
            }
            if event.is_writable() {
                flush_open(conn);
            }
            if event.is_readable() {
                read_open(
                    conn,
                    start,
                    &due_micros,
                    &mut samples,
                    &mut accounted,
                );
            }
            if conn.dead || (event.is_read_closed() && conn.outstanding > 0) {
                conn.dead = true;
                let lost = conn.outstanding;
                conn.outstanding = 0;
                transport_errors += lost;
                accounted += lost as usize;
                let _ = poll.registry().deregister(&conn.stream);
                continue;
            }
            sync_interest(&poll, c, conn);
        }
    }
    Ok((samples, transport_errors, start.elapsed()))
}

/// Writes as much of the connection's out-buffer as the socket takes.
fn flush_open(conn: &mut OpenConn) {
    while !conn.out.is_empty() {
        let (head, _) = conn.out.as_slices();
        match (&conn.stream).write(head) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(written) => {
                conn.out.drain(..written);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Reads available response bytes and records a sample per line.
fn read_open(
    conn: &mut OpenConn,
    start: Instant,
    due_micros: &dyn Fn(usize) -> u64,
    samples: &mut Vec<Sample>,
    accounted: &mut usize,
) {
    let mut scratch = [0u8; 4096];
    loop {
        match (&conn.stream).read(&mut scratch) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(got) => conn.in_buf.extend_from_slice(&scratch[..got]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    while let Some(pos) = conn.in_buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.in_buf.drain(..=pos).collect();
        let completed_at = start.elapsed().as_micros() as u64;
        let parsed = std::str::from_utf8(&line[..line.len() - 1])
            .ok()
            .and_then(|s| parse_json(s).ok());
        let Some(json) = parsed else {
            // An unparseable response counts as an error sample so the
            // run cannot pass with garbage on the wire.
            samples.push(Sample {
                completed_at_micros: completed_at,
                latency_micros: 0,
                cache_hit_rate: 0.0,
                error: Some("unparseable".into()),
            });
            *accounted += 1;
            conn.outstanding = conn.outstanding.saturating_sub(1);
            continue;
        };
        let field = |name: &str| json.as_obj().and_then(|o| o.get(name).cloned());
        let id = field("id").and_then(|j| j.as_u64());
        let latency = id.map_or(0, |id| {
            completed_at.saturating_sub(due_micros(id as usize))
        });
        samples.push(Sample {
            completed_at_micros: completed_at,
            latency_micros: latency,
            cache_hit_rate: field("cache_hit_rate").and_then(|j| j.as_num()).unwrap_or(0.0),
            error: field("error")
                .and_then(|j| j.as_str().map(str::to_string))
                .or_else(|| id.is_none().then(|| "missing_id".into())),
        });
        *accounted += 1;
        conn.outstanding = conn.outstanding.saturating_sub(1);
    }
}

/// Reregisters the connection when its write interest changed.
fn sync_interest(poll: &Poll, token: usize, conn: &mut OpenConn) {
    if conn.dead {
        return;
    }
    let want_write = !conn.out.is_empty();
    if want_write == conn.want_write {
        return;
    }
    let interest = if want_write {
        Interest::READABLE | Interest::WRITABLE
    } else {
        Interest::READABLE
    };
    if poll
        .registry()
        .reregister(&conn.stream, Token(token), interest)
        .is_err()
    {
        conn.dead = true;
        return;
    }
    conn.want_write = want_write;
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "generating {} cases (seed {}, obfuscated fraction {:.2}) ...",
        config.requests, config.seed, config.obfuscated_fraction
    );
    let case_config = CaseConfig {
        obfuscated_fraction: config.obfuscated_fraction,
        ..CaseConfig::default()
    };
    let exprs: Vec<String> = (0..config.requests as u64)
        .map(|i| generate_case(config.seed, i, &case_config).expr.to_string())
        .collect();

    let (samples, transport_errors, wall) = match config.mode {
        LoadMode::Closed => {
            eprintln!(
                "replaying against {} on {} closed-loop connections ...",
                config.addr, config.concurrency
            );
            run_closed(&config, &exprs)
        }
        LoadMode::Open => {
            eprintln!(
                "open loop against {}: {} connections, {:.0} req/s ...",
                config.addr, config.concurrency, config.rate
            );
            match run_open(&config, &exprs) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("open loop failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // ---------------------------------------------------------------
    // Aggregate.
    // ---------------------------------------------------------------
    let latencies: Vec<f64> = samples.iter().map(|s| s.latency_micros as f64).collect();
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let mean = mba_bench::report::mean(latencies.iter().copied());
    let error_responses = samples.iter().filter(|s| s.error.is_some()).count() as u64;
    let overload_responses = samples
        .iter()
        .filter(|s| s.error.as_deref() == Some("overloaded"))
        .count() as u64;
    let throughput = samples.len() as f64 / wall.as_secs_f64().max(1e-9);

    // Cache warming: cumulative hit rate as reported per response,
    // averaged over the first and second halves of the run (completion
    // order). A warm shared cache makes the second strictly higher.
    let mut by_completion: Vec<&Sample> = samples.iter().collect();
    by_completion.sort_by_key(|s| s.completed_at_micros);
    let mid = by_completion.len() / 2;
    let half_rate = |half: &[&Sample]| {
        mba_bench::report::mean(half.iter().map(|s| s.cache_hit_rate))
    };
    let (first_half, second_half) = by_completion.split_at(mid);
    let rate_first = half_rate(first_half);
    let rate_second = half_rate(second_half);
    let warmed = rate_second > rate_first;

    println!(
        "{} requests in {:.3}s  ({:.0} req/s, {} connections, {} loop)",
        samples.len(),
        wall.as_secs_f64(),
        throughput,
        config.concurrency,
        if config.mode == LoadMode::Open { "open" } else { "closed" },
    );
    println!(
        "latency micros: p50={p50:.0} p95={p95:.0} p99={p99:.0} mean={mean:.0}"
    );
    println!(
        "errors: {error_responses} (overloaded: {overload_responses}, transport: {transport_errors})"
    );
    println!(
        "cache hit rate: first half {rate_first:.4} -> second half {rate_second:.4} ({})",
        if warmed { "warming" } else { "NOT warming" }
    );

    // ---------------------------------------------------------------
    // End-of-run server stats + graceful shutdown.
    // ---------------------------------------------------------------
    let mut served = 0u64;
    let mut overloaded_server = 0u64;
    let mut deadline_expired = 0u64;
    let mut internal_errors = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut cache_hit_rate_end = 0.0f64;
    let mut sig_cache_entries = 0u64;
    let mut sig_cache_budget = 0u64;
    let mut sig_evictions = 0u64;
    // Server-side stage breakdown and queue timings, copied verbatim
    // (they are already integers) from the stats response into the
    // report so `BENCH_serve.json` carries the per-stage story.
    let mut server_breakdown: Vec<(String, u64)> = Vec::new();
    let mut clean_shutdown = !config.shutdown;
    match Client::connect(&config.addr) {
        Err(e) => eprintln!("stats connection failed: {e}"),
        Ok(mut control) => {
            match control.stats() {
                Ok(stats) => {
                    served = stats.u64_field("served").unwrap_or(0);
                    overloaded_server = stats.u64_field("overloaded").unwrap_or(0);
                    deadline_expired = stats.u64_field("deadline_expired").unwrap_or(0);
                    internal_errors = stats.u64_field("internal_errors").unwrap_or(0);
                    cache_hits = stats.u64_field("cache_hits").unwrap_or(0);
                    cache_misses = stats.u64_field("cache_misses").unwrap_or(0);
                    cache_hit_rate_end = stats.num_field("cache_hit_rate").unwrap_or(0.0);
                    sig_cache_entries = stats.u64_field("sig_cache_entries").unwrap_or(0);
                    sig_cache_budget = stats.u64_field("sig_cache_budget").unwrap_or(0);
                    sig_evictions = stats.u64_field("sig_evictions").unwrap_or(0);
                    for stage in mba_bench::report::STAGES {
                        for suffix in ["micros", "calls"] {
                            let field = format!("stage_{stage}_{suffix}");
                            server_breakdown
                                .push((field.clone(), stats.u64_field(&field).unwrap_or(0)));
                        }
                    }
                    for field in [
                        "queue_wait_micros_total",
                        "queue_wait_count",
                        "queue_wait_p95_micros",
                        "queue_service_micros_total",
                        "queue_service_count",
                        "queue_service_p95_micros",
                    ] {
                        server_breakdown
                            .push((field.to_string(), stats.u64_field(field).unwrap_or(0)));
                    }
                    println!(
                        "server: served={served} overloaded={overloaded_server} \
                         deadline_expired={deadline_expired} internal_errors={internal_errors} \
                         cache={cache_hits}h/{cache_misses}m ({cache_hit_rate_end:.4}) \
                         sig_cache={sig_cache_entries}/{sig_cache_budget} evictions={sig_evictions}"
                    );
                }
                Err(e) => eprintln!("stats request failed: {e}"),
            }
            if config.shutdown {
                match control.shutdown() {
                    Ok(ack) if ack.str_field("ok") == Some("shutdown") => {
                        println!(
                            "graceful shutdown acknowledged (drained, {} served)",
                            ack.u64_field("served").unwrap_or(0)
                        );
                        clean_shutdown = true;
                    }
                    Ok(other) => eprintln!("unexpected shutdown reply: {}", other.raw),
                    Err(e) => eprintln!("shutdown failed: {e}"),
                }
            }
        }
    }

    let mut telemetry = BenchReport::new("serve");
    telemetry
        .push_int("requests", config.requests as u64)
        .push_int("completed", samples.len() as u64)
        .push_int("concurrency", config.concurrency as u64)
        .push_int("connections", config.concurrency as u64)
        .push_bool("open_loop", config.mode == LoadMode::Open)
        .push_float(
            "target_rate_rps",
            if config.mode == LoadMode::Open { config.rate } else { 0.0 },
        )
        .push_int("seed", config.seed)
        .push_int("width", u64::from(config.width))
        .push_float("wall_clock_s", wall.as_secs_f64())
        .push_float("throughput_rps", throughput)
        .push_float("latency_p50_micros", p50)
        .push_float("latency_p95_micros", p95)
        .push_float("latency_p99_micros", p99)
        .push_float("latency_mean_micros", mean)
        .push_int("error_responses", error_responses)
        .push_int("overload_responses", overload_responses)
        .push_int("transport_errors", transport_errors)
        .push_int("server_served", served)
        .push_int("server_overloaded", overloaded_server)
        .push_int("server_deadline_expired", deadline_expired)
        .push_int("server_internal_errors", internal_errors)
        .push_int("cache_hits", cache_hits)
        .push_int("cache_misses", cache_misses)
        .push_float("cache_hit_rate", cache_hit_rate_end)
        .push_float("cache_hit_rate_first_half", rate_first)
        .push_float("cache_hit_rate_second_half", rate_second)
        .push_int("sig_cache_entries", sig_cache_entries)
        .push_int("sig_cache_budget", sig_cache_budget)
        .push_int("sig_evictions", sig_evictions)
        .push_bool("cache_warming", warmed)
        .push_bool("clean_shutdown", clean_shutdown);
    for (field, value) in &server_breakdown {
        telemetry.push_int(field, *value);
    }
    match telemetry.write() {
        Ok(path) => eprintln!("telemetry written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }

    let incomplete = samples.len() != config.requests;
    let errored = error_responses > 0 || transport_errors > 0 || incomplete;
    if errored && !config.allow_errors {
        eprintln!("FAIL: errors present (or run incomplete)");
        return ExitCode::FAILURE;
    }
    if config.require_warming && !warmed {
        eprintln!("FAIL: cache hit rate did not rise in the second half");
        return ExitCode::FAILURE;
    }
    if config.shutdown && !clean_shutdown {
        eprintln!("FAIL: graceful shutdown not acknowledged");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
