//! Load generator for `mba_serve`: replays a deterministic
//! generator-built corpus (the `mba-verify` case stream — mixed
//! linear / polynomial / non-polynomial obfuscations plus structural
//! random ASTs) at configurable concurrency, then writes
//! `BENCH_serve.json` with throughput, p50/p95/p99 latency, error
//! counts, and end-of-run cache statistics.
//!
//! ```text
//! mba_loadgen [--addr HOST:PORT] [--requests N] [--concurrency N]
//!             [--seed N] [--width 1..=64] [--deadline-ms N]
//!             [--obfuscated-fraction F] [--no-shutdown]
//!             [--require-warming] [--allow-errors]
//! ```
//!
//! Exit status: 0 only when every request was answered without an
//! error response (unless `--allow-errors`) and, under
//! `--require-warming`, the shared cache's hit rate was strictly
//! higher over the second half of the run than the first.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mba_bench::report::{percentile, BenchReport};
use mba_serve::Client;
use mba_verify::{generate_case, CaseConfig};

#[derive(Debug, Clone)]
struct LoadConfig {
    addr: String,
    requests: usize,
    concurrency: usize,
    seed: u64,
    width: u32,
    deadline_ms: Option<u64>,
    obfuscated_fraction: f64,
    shutdown: bool,
    require_warming: bool,
    allow_errors: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7474".into(),
            requests: 2000,
            concurrency: 8,
            seed: 42,
            width: 64,
            deadline_ms: None,
            obfuscated_fraction: 0.75,
            shutdown: true,
            require_warming: false,
            allow_errors: false,
        }
    }
}

fn usage() -> String {
    "usage: mba_loadgen [--addr HOST:PORT] [--requests N] [--concurrency N] \
     [--seed N] [--width 1..=64] [--deadline-ms N] [--obfuscated-fraction F] \
     [--no-shutdown] [--require-warming] [--allow-errors]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<LoadConfig, String> {
    let mut config = LoadConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr")?.clone(),
            "--requests" => config.requests = parse_num(take("--requests")?)?,
            "--concurrency" => {
                config.concurrency = parse_num(take("--concurrency")?)?;
                if config.concurrency == 0 {
                    return Err("--concurrency must be positive".into());
                }
            }
            "--seed" => config.seed = parse_num(take("--seed")?)?,
            "--width" => {
                config.width = parse_num(take("--width")?)?;
                if !(1..=64).contains(&config.width) {
                    return Err("--width must be in 1..=64".into());
                }
            }
            "--deadline-ms" => config.deadline_ms = Some(parse_num(take("--deadline-ms")?)?),
            "--obfuscated-fraction" => {
                config.obfuscated_fraction = parse_num(take("--obfuscated-fraction")?)?;
                if !(0.0..=1.0).contains(&config.obfuscated_fraction) {
                    return Err("--obfuscated-fraction must be in 0..=1".into());
                }
            }
            "--no-shutdown" => config.shutdown = false,
            "--require-warming" => config.require_warming = true,
            "--allow-errors" => config.allow_errors = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("malformed numeric value `{s}`"))
}

/// One completed request, as observed by the client.
struct Sample {
    /// Completion instant, as an offset from run start (for the
    /// first-half / second-half cache-warming split).
    completed_at_micros: u64,
    /// Client-observed round-trip latency.
    latency_micros: u64,
    /// The server-reported cumulative cache hit rate at completion.
    cache_hit_rate: f64,
    /// The error code, when the response was an error.
    error: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "generating {} cases (seed {}, obfuscated fraction {:.2}) ...",
        config.requests, config.seed, config.obfuscated_fraction
    );
    let case_config = CaseConfig {
        obfuscated_fraction: config.obfuscated_fraction,
        ..CaseConfig::default()
    };
    let exprs: Vec<String> = (0..config.requests as u64)
        .map(|i| generate_case(config.seed, i, &case_config).expr.to_string())
        .collect();

    eprintln!(
        "replaying against {} on {} connections ...",
        config.addr, config.concurrency
    );
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let mut transport_errors = 0u64;
    let mut samples: Vec<Sample> = Vec::with_capacity(config.requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.concurrency)
            .map(|_| {
                let next = &next;
                let exprs = &exprs;
                let config = &config;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut failures = 0u64;
                    let mut client = match Client::connect(&config.addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("connect to {} failed: {e}", config.addr);
                            return (local, 1);
                        }
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(expr) = exprs.get(i) else { break };
                        let sent = Instant::now();
                        match client.simplify(i as u64, expr, config.width, config.deadline_ms)
                        {
                            Ok(response) => {
                                let latency = sent.elapsed();
                                let mismatched = response.id() != Some(i as u64);
                                local.push(Sample {
                                    completed_at_micros: start.elapsed().as_micros() as u64,
                                    latency_micros: latency.as_micros() as u64,
                                    cache_hit_rate: response
                                        .num_field("cache_hit_rate")
                                        .unwrap_or(0.0),
                                    error: response
                                        .error()
                                        .map(str::to_string)
                                        .or(mismatched.then(|| "id_mismatch".into())),
                                });
                            }
                            Err(e) => {
                                eprintln!("request {i} failed: {e}");
                                failures += 1;
                            }
                        }
                    }
                    (local, failures)
                })
            })
            .collect();
        for h in handles {
            let (local, failures) = h.join().expect("client thread panicked");
            samples.extend(local);
            transport_errors += failures;
        }
    });
    let wall = start.elapsed();

    // ---------------------------------------------------------------
    // Aggregate.
    // ---------------------------------------------------------------
    let latencies: Vec<f64> = samples.iter().map(|s| s.latency_micros as f64).collect();
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let mean = mba_bench::report::mean(latencies.iter().copied());
    let error_responses = samples.iter().filter(|s| s.error.is_some()).count() as u64;
    let overload_responses = samples
        .iter()
        .filter(|s| s.error.as_deref() == Some("overloaded"))
        .count() as u64;
    let throughput = samples.len() as f64 / wall.as_secs_f64().max(1e-9);

    // Cache warming: cumulative hit rate as reported per response,
    // averaged over the first and second halves of the run (completion
    // order). A warm shared cache makes the second strictly higher.
    let mut by_completion: Vec<&Sample> = samples.iter().collect();
    by_completion.sort_by_key(|s| s.completed_at_micros);
    let mid = by_completion.len() / 2;
    let half_rate = |half: &[&Sample]| {
        mba_bench::report::mean(half.iter().map(|s| s.cache_hit_rate))
    };
    let (first_half, second_half) = by_completion.split_at(mid);
    let rate_first = half_rate(first_half);
    let rate_second = half_rate(second_half);
    let warmed = rate_second > rate_first;

    println!(
        "{} requests in {:.3}s  ({:.0} req/s, concurrency {})",
        samples.len(),
        wall.as_secs_f64(),
        throughput,
        config.concurrency
    );
    println!(
        "latency micros: p50={p50:.0} p95={p95:.0} p99={p99:.0} mean={mean:.0}"
    );
    println!(
        "errors: {error_responses} (overloaded: {overload_responses}, transport: {transport_errors})"
    );
    println!(
        "cache hit rate: first half {rate_first:.4} -> second half {rate_second:.4} ({})",
        if warmed { "warming" } else { "NOT warming" }
    );

    // ---------------------------------------------------------------
    // End-of-run server stats + graceful shutdown.
    // ---------------------------------------------------------------
    let mut served = 0u64;
    let mut overloaded_server = 0u64;
    let mut deadline_expired = 0u64;
    let mut internal_errors = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut cache_hit_rate_end = 0.0f64;
    // Server-side stage breakdown and queue timings, copied verbatim
    // (they are already integers) from the stats response into the
    // report so `BENCH_serve.json` carries the per-stage story.
    let mut server_breakdown: Vec<(String, u64)> = Vec::new();
    let mut clean_shutdown = !config.shutdown;
    match Client::connect(&config.addr) {
        Err(e) => eprintln!("stats connection failed: {e}"),
        Ok(mut control) => {
            match control.stats() {
                Ok(stats) => {
                    served = stats.u64_field("served").unwrap_or(0);
                    overloaded_server = stats.u64_field("overloaded").unwrap_or(0);
                    deadline_expired = stats.u64_field("deadline_expired").unwrap_or(0);
                    internal_errors = stats.u64_field("internal_errors").unwrap_or(0);
                    cache_hits = stats.u64_field("cache_hits").unwrap_or(0);
                    cache_misses = stats.u64_field("cache_misses").unwrap_or(0);
                    cache_hit_rate_end = stats.num_field("cache_hit_rate").unwrap_or(0.0);
                    for stage in mba_bench::report::STAGES {
                        for suffix in ["micros", "calls"] {
                            let field = format!("stage_{stage}_{suffix}");
                            server_breakdown
                                .push((field.clone(), stats.u64_field(&field).unwrap_or(0)));
                        }
                    }
                    for field in [
                        "queue_wait_micros_total",
                        "queue_wait_count",
                        "queue_wait_p95_micros",
                        "queue_service_micros_total",
                        "queue_service_count",
                        "queue_service_p95_micros",
                    ] {
                        server_breakdown
                            .push((field.to_string(), stats.u64_field(field).unwrap_or(0)));
                    }
                    println!(
                        "server: served={served} overloaded={overloaded_server} \
                         deadline_expired={deadline_expired} internal_errors={internal_errors} \
                         cache={cache_hits}h/{cache_misses}m ({cache_hit_rate_end:.4})"
                    );
                }
                Err(e) => eprintln!("stats request failed: {e}"),
            }
            if config.shutdown {
                match control.shutdown() {
                    Ok(ack) if ack.str_field("ok") == Some("shutdown") => {
                        println!(
                            "graceful shutdown acknowledged (drained, {} served)",
                            ack.u64_field("served").unwrap_or(0)
                        );
                        clean_shutdown = true;
                    }
                    Ok(other) => eprintln!("unexpected shutdown reply: {}", other.raw),
                    Err(e) => eprintln!("shutdown failed: {e}"),
                }
            }
        }
    }

    let mut telemetry = BenchReport::new("serve");
    telemetry
        .push_int("requests", config.requests as u64)
        .push_int("completed", samples.len() as u64)
        .push_int("concurrency", config.concurrency as u64)
        .push_int("seed", config.seed)
        .push_int("width", u64::from(config.width))
        .push_float("wall_clock_s", wall.as_secs_f64())
        .push_float("throughput_rps", throughput)
        .push_float("latency_p50_micros", p50)
        .push_float("latency_p95_micros", p95)
        .push_float("latency_p99_micros", p99)
        .push_float("latency_mean_micros", mean)
        .push_int("error_responses", error_responses)
        .push_int("overload_responses", overload_responses)
        .push_int("transport_errors", transport_errors)
        .push_int("server_served", served)
        .push_int("server_overloaded", overloaded_server)
        .push_int("server_deadline_expired", deadline_expired)
        .push_int("server_internal_errors", internal_errors)
        .push_int("cache_hits", cache_hits)
        .push_int("cache_misses", cache_misses)
        .push_float("cache_hit_rate", cache_hit_rate_end)
        .push_float("cache_hit_rate_first_half", rate_first)
        .push_float("cache_hit_rate_second_half", rate_second)
        .push_bool("cache_warming", warmed)
        .push_bool("clean_shutdown", clean_shutdown);
    for (field, value) in &server_breakdown {
        telemetry.push_int(field, *value);
    }
    match telemetry.write() {
        Ok(path) => eprintln!("telemetry written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }

    let incomplete = samples.len() != config.requests;
    let errored = error_responses > 0 || transport_errors > 0 || incomplete;
    if errored && !config.allow_errors {
        eprintln!("FAIL: errors present (or run incomplete)");
        return ExitCode::FAILURE;
    }
    if config.require_warming && !warmed {
        eprintln!("FAIL: cache hit rate did not rise in the second half");
        return ExitCode::FAILURE;
    }
    if config.shutdown && !clean_shutdown {
        eprintln!("FAIL: graceful shutdown not acknowledged");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
