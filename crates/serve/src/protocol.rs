//! The wire protocol: newline-delimited JSON objects, one message per
//! line, in both directions.
//!
//! Requests:
//!
//! ```text
//! {"id": 7, "expr": "2*(x|y) - (~x&y) - (x&~y)", "width": 64, "deadline_ms": 250}
//! {"control": "stats"}
//! {"control": "ping"}
//! {"control": "shutdown"}
//! ```
//!
//! `width` (default 64) and `deadline_ms` (default: none) are optional;
//! unknown fields are **ignored** for forward compatibility. Responses
//! either succeed:
//!
//! ```text
//! {"id": 7, "simplified": "x+y", "node_count_in": 13, "node_count_out": 3,
//!  "micros": 412, "cache_hit_rate": 0.83}
//! ```
//!
//! or carry an `error` code (`parse`, `invalid`, `overloaded`,
//! `deadline`, `shutting_down`) plus a human-readable `detail`. An
//! error answers the offending *line* only — the connection and the
//! worker pool always survive.
//!
//! The workspace has no JSON dependency (the build environment is
//! offline), so this module carries a small recursive-descent JSON
//! parser and a hand renderer, both total: any input either parses or
//! yields a `parse` error, and rendering escapes everything JSON
//! requires.

use std::collections::BTreeMap;
use std::fmt;

/// Upper bound on one protocol line, in bytes. A line longer than this
/// is answered with an `invalid` error and discarded up to the next
/// newline; the connection survives. Generous enough for any realistic
/// MBA expression (the paper's corpus averages ~120 characters).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Maximum JSON nesting depth the parser accepts (the protocol itself
/// is flat; the bound only stops adversarial `[[[[…` stack growth).
const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (lossy for integers above 2^53, which the
    /// protocol never uses).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is irrelevant to the protocol.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to consume the whole input.
///
/// # Errors
///
/// Returns a position-annotated message on any syntax error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_JSON_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates render as U+FFFD; the protocol never
                        // emits them, so no pairing logic is warranted.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences were
                // validated when the line was decoded).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Typed request layer.
// ---------------------------------------------------------------------

/// A simplification request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The expression to simplify, in the `mba-expr` surface syntax.
    pub expr: String,
    /// Bit width of the target ring (1..=64).
    pub width: u32,
    /// Serving deadline: a request older than this when (or after) a
    /// worker handles it is answered with a `deadline` error.
    pub deadline_ms: Option<u64>,
}

/// A control request (no expression payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe; answered immediately from the connection thread.
    Ping,
    /// Snapshot of serving counters and cache statistics.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight work, flush
    /// responses, ack, exit 0.
    Shutdown,
}

/// One decoded client line.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// A simplification request.
    Simplify(Request),
    /// A control request, with the optional correlation id.
    Control(Control, Option<u64>),
}

/// Machine-readable error codes carried in the `error` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Parse,
    /// The line was JSON but not a valid request (bad field types,
    /// missing `expr`, out-of-range `width`, oversized line, or an
    /// expression that does not parse).
    Invalid,
    /// The bounded request queue was full — explicit backpressure.
    Overloaded,
    /// The request's `deadline_ms` expired before a result was ready.
    Deadline,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level rejection of one line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The request id, when the line got far enough to reveal one.
    pub id: Option<u64>,
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl ProtocolError {
    /// Convenience constructor.
    pub fn new(id: Option<u64>, code: ErrorCode, detail: impl Into<String>) -> ProtocolError {
        ProtocolError {
            id,
            code,
            detail: detail.into(),
        }
    }
}

/// Decodes one request line into a [`ClientMessage`].
///
/// Unknown fields are ignored; known fields with wrong types are
/// errors. Field semantics are documented on [`Request`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] (`parse` or `invalid`) describing the
/// first problem found; the caller answers it and keeps the connection.
pub fn decode_line(line: &str) -> Result<ClientMessage, ProtocolError> {
    let json = parse_json(line.trim())
        .map_err(|e| ProtocolError::new(None, ErrorCode::Parse, e))?;
    let obj = json.as_obj().ok_or_else(|| {
        ProtocolError::new(None, ErrorCode::Invalid, "request must be a JSON object")
    })?;
    // Surface the id in errors whenever it is present and well-formed.
    let id = obj.get("id").and_then(Json::as_u64);
    if let Some(v) = obj.get("id") {
        if v.as_u64().is_none() {
            return Err(ProtocolError::new(
                None,
                ErrorCode::Invalid,
                "`id` must be a non-negative integer",
            ));
        }
    }

    if let Some(control) = obj.get("control") {
        let name = control.as_str().ok_or_else(|| {
            ProtocolError::new(id, ErrorCode::Invalid, "`control` must be a string")
        })?;
        let control = match name {
            "ping" => Control::Ping,
            "stats" => Control::Stats,
            "shutdown" => Control::Shutdown,
            other => {
                return Err(ProtocolError::new(
                    id,
                    ErrorCode::Invalid,
                    format!("unknown control `{other}`"),
                ))
            }
        };
        return Ok(ClientMessage::Control(control, id));
    }

    let id = id.ok_or_else(|| {
        ProtocolError::new(None, ErrorCode::Invalid, "missing `id` field")
    })?;
    let expr = obj
        .get("expr")
        .ok_or_else(|| ProtocolError::new(Some(id), ErrorCode::Invalid, "missing `expr` field"))?
        .as_str()
        .ok_or_else(|| {
            ProtocolError::new(Some(id), ErrorCode::Invalid, "`expr` must be a string")
        })?
        .to_string();
    let width = match obj.get("width") {
        None => 64,
        Some(v) => {
            let w = v.as_u64().unwrap_or(0);
            if !(1..=64).contains(&w) {
                return Err(ProtocolError::new(
                    Some(id),
                    ErrorCode::Invalid,
                    "`width` must be an integer in 1..=64",
                ));
            }
            w as u32
        }
    };
    let deadline_ms = match obj.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ProtocolError::new(
                Some(id),
                ErrorCode::Invalid,
                "`deadline_ms` must be a non-negative integer",
            )
        })?),
    };
    Ok(ClientMessage::Simplify(Request {
        id,
        expr,
        width,
        deadline_ms,
    }))
}

// ---------------------------------------------------------------------
// Response rendering. One line each, no trailing newline — the writer
// appends it, so a response can never smuggle a line break.
// ---------------------------------------------------------------------

/// A successful simplification, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echo of the request id.
    pub id: u64,
    /// The simplified expression, printed canonically.
    pub simplified: String,
    /// AST node count of the input.
    pub node_count_in: u64,
    /// AST node count of the output.
    pub node_count_out: u64,
    /// End-to-end service time in microseconds (queue wait included —
    /// this is the latency the client experienced, minus network).
    pub micros: u64,
    /// The shared signature cache's cumulative hit rate at completion.
    pub cache_hit_rate: f64,
}

/// Renders a success line.
pub fn render_reply(r: &Reply) -> String {
    format!(
        "{{\"id\":{},\"simplified\":\"{}\",\"node_count_in\":{},\"node_count_out\":{},\"micros\":{},\"cache_hit_rate\":{:.6}}}",
        r.id,
        json_escape(&r.simplified),
        r.node_count_in,
        r.node_count_out,
        r.micros,
        r.cache_hit_rate,
    )
}

/// Renders an error line.
pub fn render_error(e: &ProtocolError) -> String {
    match e.id {
        Some(id) => format!(
            "{{\"id\":{},\"error\":\"{}\",\"detail\":\"{}\"}}",
            id,
            e.code,
            json_escape(&e.detail)
        ),
        None => format!(
            "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
            e.code,
            json_escape(&e.detail)
        ),
    }
}

/// Renders a control acknowledgement (`{"ok":"ping"}` etc.), with the
/// request's id echoed when it sent one and extra pre-rendered fields
/// appended verbatim.
pub fn render_ok(kind: &str, id: Option<u64>, extra_fields: &[(String, String)]) -> String {
    let mut out = String::from("{");
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
    out.push_str(&format!("\"ok\":\"{}\"", json_escape(kind)));
    for (k, v) in extra_fields {
        out.push_str(&format!(",\"{}\":{}", json_escape(k), v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse_json("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        assert_eq!(
            parse_json("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "{\"a\"}", "{\"a\":}", "[1,]", "{\"a\":1,}", "tru", "\"open",
            "{\"a\":1} trailing", "{'a':1}", "{\"a\":01x}",
        ] {
            assert!(parse_json(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn decode_full_request() {
        let m = decode_line(
            r#"{"id": 3, "expr": "x + y", "width": 16, "deadline_ms": 100}"#,
        )
        .unwrap();
        assert_eq!(
            m,
            ClientMessage::Simplify(Request {
                id: 3,
                expr: "x + y".into(),
                width: 16,
                deadline_ms: Some(100),
            })
        );
    }

    #[test]
    fn decode_applies_defaults_and_ignores_unknown_fields() {
        let m = decode_line(r#"{"id":0,"expr":"x","future_knob":[1,2],"tag":"abc"}"#).unwrap();
        let ClientMessage::Simplify(r) = m else {
            panic!("expected simplify")
        };
        assert_eq!(r.width, 64);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn decode_controls() {
        assert_eq!(
            decode_line(r#"{"control":"shutdown"}"#).unwrap(),
            ClientMessage::Control(Control::Shutdown, None)
        );
        assert_eq!(
            decode_line(r#"{"id":9,"control":"stats"}"#).unwrap(),
            ClientMessage::Control(Control::Stats, Some(9))
        );
        assert_eq!(
            decode_line(r#"{"control":"ping"}"#).unwrap(),
            ClientMessage::Control(Control::Ping, None)
        );
    }

    #[test]
    fn decode_errors_carry_codes_and_ids() {
        let e = decode_line("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::Parse);
        let e = decode_line(r#"{"expr":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        assert_eq!(e.id, None);
        let e = decode_line(r#"{"id":5}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"id":5,"expr":"x","width":65}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"id":5,"expr":"x","width":0}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        let e = decode_line(r#"{"id":-1,"expr":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        let e = decode_line(r#"{"id":5,"expr":7}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"control":"reboot"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let line = render_reply(&Reply {
            id: 12,
            simplified: "x+y".into(),
            node_count_in: 13,
            node_count_out: 3,
            micros: 412,
            cache_hit_rate: 0.5,
        });
        let obj = parse_json(&line).unwrap();
        let obj = obj.as_obj().unwrap();
        assert_eq!(obj["id"].as_u64(), Some(12));
        assert_eq!(obj["simplified"].as_str(), Some("x+y"));
        assert_eq!(obj["micros"].as_u64(), Some(412));

        let line = render_error(&ProtocolError::new(
            Some(3),
            ErrorCode::Overloaded,
            "queue full (capacity 256)",
        ));
        let parsed = parse_json(&line).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["error"].as_str(), Some("overloaded"));
        assert_eq!(obj["id"].as_u64(), Some(3));

        let line = render_ok("stats", None, &[("served".into(), "7".into())]);
        let parsed = parse_json(&line).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["served"].as_u64(), Some(7));
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let hostile = "a\"b\\c\nd\te\r\u{1}";
        let line = render_error(&ProtocolError::new(None, ErrorCode::Parse, hostile));
        let parsed = parse_json(&line).unwrap();
        assert_eq!(
            parsed.as_obj().unwrap()["detail"].as_str(),
            Some(hostile)
        );
    }
}
