//! The wire protocol: newline-delimited JSON objects, one message per
//! line, in both directions.
//!
//! Requests:
//!
//! ```text
//! {"id": 7, "expr": "2*(x|y) - (~x&y) - (x&~y)", "width": 64, "deadline_ms": 250}
//! {"control": "stats"}
//! {"control": "ping"}
//! {"control": "shutdown"}
//! ```
//!
//! `width` (default 64) and `deadline_ms` (default: none) are optional;
//! unknown fields are **ignored** for forward compatibility. Control
//! requests accept `cmd` as an alias for `control` (`{"cmd":"stats"}`),
//! so stats pollers can use either spelling. Responses either succeed:
//!
//! ```text
//! {"id": 7, "simplified": "x+y", "node_count_in": 13, "node_count_out": 3,
//!  "micros": 412, "cache_hit_rate": 0.83}
//! ```
//!
//! or carry an `error` code (`parse`, `invalid`, `overloaded`,
//! `deadline`, `shutting_down`, `internal`) plus a human-readable
//! `detail`. An error answers the offending *line* only — the
//! connection and the worker pool always survive.
//!
//! The workspace has no JSON dependency (the build environment is
//! offline); the recursive-descent JSON value parser lives in
//! [`mba_obs::json`] (shared with the bench-report validators) and is
//! re-exported here for protocol consumers.

use std::fmt;

pub use mba_obs::json::{json_escape, parse_json, Json};

/// Upper bound on one protocol line, in bytes. A line longer than this
/// is answered with an `invalid` error and discarded up to the next
/// newline; the connection survives. Generous enough for any realistic
/// MBA expression (the paper's corpus averages ~120 characters).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

// ---------------------------------------------------------------------
// Typed request layer.
// ---------------------------------------------------------------------

/// A simplification request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The expression to simplify, in the `mba-expr` surface syntax.
    pub expr: String,
    /// Bit width of the target ring (1..=64).
    pub width: u32,
    /// Serving deadline: the time budget is the half-open interval
    /// `[0, deadline_ms)` from arrival, so a request whose age reaches
    /// the deadline when (or after) a worker handles it is answered
    /// with a `deadline` error — and `deadline_ms: 0` always expires.
    pub deadline_ms: Option<u64>,
}

/// A control request (no expression payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe; answered immediately from the connection thread.
    Ping,
    /// Snapshot of serving counters and cache statistics.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight work, flush
    /// responses, ack, exit 0.
    Shutdown,
}

/// One decoded client line.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// A simplification request.
    Simplify(Request),
    /// A control request, with the optional correlation id.
    Control(Control, Option<u64>),
}

/// Machine-readable error codes carried in the `error` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Parse,
    /// The line was JSON but not a valid request (bad field types,
    /// missing `expr`, out-of-range `width`, oversized line, or an
    /// expression that does not parse).
    Invalid,
    /// The bounded request queue was full — explicit backpressure.
    Overloaded,
    /// The request's `deadline_ms` expired before a result was ready.
    Deadline,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The worker handling the request panicked. The request is
    /// answered (never silently dropped), the panic is counted, and the
    /// worker pool survives.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level rejection of one line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The request id, when the line got far enough to reveal one.
    pub id: Option<u64>,
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl ProtocolError {
    /// Convenience constructor.
    pub fn new(id: Option<u64>, code: ErrorCode, detail: impl Into<String>) -> ProtocolError {
        ProtocolError {
            id,
            code,
            detail: detail.into(),
        }
    }
}

/// Decodes one request line into a [`ClientMessage`].
///
/// Unknown fields are ignored; known fields with wrong types are
/// errors. Field semantics are documented on [`Request`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] (`parse` or `invalid`) describing the
/// first problem found; the caller answers it and keeps the connection.
pub fn decode_line(line: &str) -> Result<ClientMessage, ProtocolError> {
    let json = parse_json(line.trim())
        .map_err(|e| ProtocolError::new(None, ErrorCode::Parse, e))?;
    let obj = json.as_obj().ok_or_else(|| {
        ProtocolError::new(None, ErrorCode::Invalid, "request must be a JSON object")
    })?;
    // Surface the id in errors whenever it is present and well-formed.
    let id = obj.get("id").and_then(Json::as_u64);
    if let Some(v) = obj.get("id") {
        if v.as_u64().is_none() {
            return Err(ProtocolError::new(
                None,
                ErrorCode::Invalid,
                "`id` must be a non-negative integer",
            ));
        }
    }

    // `cmd` is an accepted alias for `control` (`{"cmd":"stats"}`);
    // when both are present they must agree on being strings, and
    // `control` wins.
    if let Some(control) = obj.get("control").or_else(|| obj.get("cmd")) {
        let name = control.as_str().ok_or_else(|| {
            ProtocolError::new(id, ErrorCode::Invalid, "`control` must be a string")
        })?;
        let control = match name {
            "ping" => Control::Ping,
            "stats" => Control::Stats,
            "shutdown" => Control::Shutdown,
            other => {
                return Err(ProtocolError::new(
                    id,
                    ErrorCode::Invalid,
                    format!("unknown control `{other}`"),
                ))
            }
        };
        return Ok(ClientMessage::Control(control, id));
    }

    let id = id.ok_or_else(|| {
        ProtocolError::new(None, ErrorCode::Invalid, "missing `id` field")
    })?;
    let expr = obj
        .get("expr")
        .ok_or_else(|| ProtocolError::new(Some(id), ErrorCode::Invalid, "missing `expr` field"))?
        .as_str()
        .ok_or_else(|| {
            ProtocolError::new(Some(id), ErrorCode::Invalid, "`expr` must be a string")
        })?
        .to_string();
    let width = match obj.get("width") {
        None => 64,
        Some(v) => {
            let w = v.as_u64().unwrap_or(0);
            if !(1..=64).contains(&w) {
                return Err(ProtocolError::new(
                    Some(id),
                    ErrorCode::Invalid,
                    "`width` must be an integer in 1..=64",
                ));
            }
            w as u32
        }
    };
    let deadline_ms = match obj.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ProtocolError::new(
                Some(id),
                ErrorCode::Invalid,
                "`deadline_ms` must be a non-negative integer",
            )
        })?),
    };
    Ok(ClientMessage::Simplify(Request {
        id,
        expr,
        width,
        deadline_ms,
    }))
}

// ---------------------------------------------------------------------
// Response rendering. One line each, no trailing newline — the writer
// appends it, so a response can never smuggle a line break.
// ---------------------------------------------------------------------

/// A successful simplification, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echo of the request id.
    pub id: u64,
    /// The simplified expression, printed canonically.
    pub simplified: String,
    /// AST node count of the input.
    pub node_count_in: u64,
    /// AST node count of the output.
    pub node_count_out: u64,
    /// End-to-end service time in microseconds (queue wait included —
    /// this is the latency the client experienced, minus network).
    pub micros: u64,
    /// The shared signature cache's cumulative hit rate at completion.
    pub cache_hit_rate: f64,
}

/// Renders a success line.
pub fn render_reply(r: &Reply) -> String {
    format!(
        "{{\"id\":{},\"simplified\":\"{}\",\"node_count_in\":{},\"node_count_out\":{},\"micros\":{},\"cache_hit_rate\":{:.6}}}",
        r.id,
        json_escape(&r.simplified),
        r.node_count_in,
        r.node_count_out,
        r.micros,
        r.cache_hit_rate,
    )
}

/// Renders an error line.
pub fn render_error(e: &ProtocolError) -> String {
    match e.id {
        Some(id) => format!(
            "{{\"id\":{},\"error\":\"{}\",\"detail\":\"{}\"}}",
            id,
            e.code,
            json_escape(&e.detail)
        ),
        None => format!(
            "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
            e.code,
            json_escape(&e.detail)
        ),
    }
}

/// Renders a control acknowledgement (`{"ok":"ping"}` etc.), with the
/// request's id echoed when it sent one and extra pre-rendered fields
/// appended verbatim.
pub fn render_ok(kind: &str, id: Option<u64>, extra_fields: &[(String, String)]) -> String {
    let mut out = String::from("{");
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
    out.push_str(&format!("\"ok\":\"{}\"", json_escape(kind)));
    for (k, v) in extra_fields {
        out.push_str(&format!(",\"{}\":{}", json_escape(k), v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_full_request() {
        let m = decode_line(
            r#"{"id": 3, "expr": "x + y", "width": 16, "deadline_ms": 100}"#,
        )
        .unwrap();
        assert_eq!(
            m,
            ClientMessage::Simplify(Request {
                id: 3,
                expr: "x + y".into(),
                width: 16,
                deadline_ms: Some(100),
            })
        );
    }

    #[test]
    fn decode_applies_defaults_and_ignores_unknown_fields() {
        let m = decode_line(r#"{"id":0,"expr":"x","future_knob":[1,2],"tag":"abc"}"#).unwrap();
        let ClientMessage::Simplify(r) = m else {
            panic!("expected simplify")
        };
        assert_eq!(r.width, 64);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn decode_controls() {
        assert_eq!(
            decode_line(r#"{"control":"shutdown"}"#).unwrap(),
            ClientMessage::Control(Control::Shutdown, None)
        );
        assert_eq!(
            decode_line(r#"{"id":9,"control":"stats"}"#).unwrap(),
            ClientMessage::Control(Control::Stats, Some(9))
        );
        assert_eq!(
            decode_line(r#"{"control":"ping"}"#).unwrap(),
            ClientMessage::Control(Control::Ping, None)
        );
    }

    #[test]
    fn cmd_is_an_alias_for_control() {
        assert_eq!(
            decode_line(r#"{"cmd":"stats"}"#).unwrap(),
            ClientMessage::Control(Control::Stats, None)
        );
        assert_eq!(
            decode_line(r#"{"id":4,"cmd":"ping"}"#).unwrap(),
            ClientMessage::Control(Control::Ping, Some(4))
        );
        // `control` wins when both are given.
        assert_eq!(
            decode_line(r#"{"cmd":"ping","control":"stats"}"#).unwrap(),
            ClientMessage::Control(Control::Stats, None)
        );
        let e = decode_line(r#"{"cmd":"reboot"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        let e = decode_line(r#"{"cmd":7}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
    }

    #[test]
    fn decode_errors_carry_codes_and_ids() {
        let e = decode_line("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::Parse);
        let e = decode_line(r#"{"expr":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        assert_eq!(e.id, None);
        let e = decode_line(r#"{"id":5}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"id":5,"expr":"x","width":65}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"id":5,"expr":"x","width":0}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        let e = decode_line(r#"{"id":-1,"expr":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
        let e = decode_line(r#"{"id":5,"expr":7}"#).unwrap_err();
        assert_eq!((e.id, e.code), (Some(5), ErrorCode::Invalid));
        let e = decode_line(r#"{"control":"reboot"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Invalid);
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let line = render_reply(&Reply {
            id: 12,
            simplified: "x+y".into(),
            node_count_in: 13,
            node_count_out: 3,
            micros: 412,
            cache_hit_rate: 0.5,
        });
        let obj = parse_json(&line).unwrap();
        let obj = obj.as_obj().unwrap();
        assert_eq!(obj["id"].as_u64(), Some(12));
        assert_eq!(obj["simplified"].as_str(), Some("x+y"));
        assert_eq!(obj["micros"].as_u64(), Some(412));

        let line = render_error(&ProtocolError::new(
            Some(3),
            ErrorCode::Overloaded,
            "queue full (capacity 256)",
        ));
        let parsed = parse_json(&line).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["error"].as_str(), Some("overloaded"));
        assert_eq!(obj["id"].as_u64(), Some(3));

        let line = render_ok("stats", None, &[("served".into(), "7".into())]);
        let parsed = parse_json(&line).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["served"].as_u64(), Some(7));
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let hostile = "a\"b\\c\nd\te\r\u{1}";
        let line = render_error(&ProtocolError::new(None, ErrorCode::Parse, hostile));
        let parsed = parse_json(&line).unwrap();
        assert_eq!(
            parsed.as_obj().unwrap()["detail"].as_str(),
            Some(hostile)
        );
    }
}
