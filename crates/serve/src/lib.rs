//! `mba-serve`: a production-style, long-running MBA simplification
//! service.
//!
//! The paper positions MBA-Solver as a *preprocessing pass in front of
//! SMT solvers* — a component that sits in a pipeline and absorbs a
//! sustained stream of simplification queries. The one-shot CLIs
//! rebuild their caches per invocation and throw them away; this crate
//! is the resident form: one process, one shared
//! [`SigCache`](mba_sig::SigCache), a bounded request queue with
//! explicit backpressure, per-request deadlines, and graceful
//! drain-then-exit shutdown.
//!
//! * [`protocol`] — the newline-delimited JSON wire format (requests,
//!   responses, error codes) plus the offline-friendly JSON
//!   parser/renderer it rides on;
//! * [`queue`] — the bounded MPMC queue whose `try_push` failure *is*
//!   the `overloaded` response;
//! * [`server`] — acceptor, connection I/O (reactor or
//!   thread-per-connection, see [`server::ServeMode`]), and the worker
//!   pool;
//! * [`reactor`] — the epoll event loop behind the default serving
//!   mode;
//! * [`client`] — a blocking protocol client.
//!
//! Binaries: `mba_serve` (the server) and `mba_loadgen` (replays a
//! generator-built corpus at configurable concurrency and writes
//! `BENCH_serve.json` with throughput, p50/p95/p99 latency, error
//! counts, and end-of-run cache statistics).
//!
//! ```
//! use mba_serve::{server, ServerConfig};
//!
//! let (addr, handle) = server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = mba_serve::Client::connect(addr).unwrap();
//! let reply = client
//!     .simplify(1, "2*(x|y) - (~x&y) - (x&~y)", 64, None)
//!     .unwrap();
//! assert_eq!(reply.str_field("simplified"), Some("x+y"));
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod server;

pub use client::{Client, Response};
pub use protocol::{
    decode_line, parse_json, ClientMessage, Control, ErrorCode, Json, ProtocolError, Reply,
    Request, MAX_LINE_BYTES,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeMode, Server, ServerConfig, ServerState, DEFAULT_CACHE_BUDGET};
