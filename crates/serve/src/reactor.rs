//! The event-driven serving mode: one reactor thread drives a
//! nonblocking listener and every connection's read/write state machine
//! through an epoll event loop (the `mio` shim), while the worker pool
//! and bounded queue stay exactly as they are in thread mode — the
//! backpressure boundary does not move.
//!
//! # Connection state machine
//!
//! Every connection lives in a slab slot and cycles through:
//!
//! ```text
//!            ┌────────── readable ──────────┐
//!            ▼                              │
//!   [reading] --newline--> handle_line --> try_push / control reply
//!       │ cap exceeded                        │ response bytes
//!       ▼                                     ▼
//!   [discarding]  (answered once,      direct write; leftover
//!    until next newline)               bytes → pending buffer
//!                                             │
//!                                             ▼
//!                               [write interest registered]
//!                               flushed on writable events,
//!                               interest dropped when empty
//! ```
//!
//! * **Partial lines** accumulate in a per-connection buffer across
//!   reads; the 64KiB cap is enforced mid-stream — a newline-less flood
//!   is answered once and discarded up to the next newline, exactly
//!   like thread mode.
//! * **Write interest is registered only while bytes are pending.**
//!   Responses are written directly (from the worker thread or the
//!   reactor); only the unwritten remainder lands in the connection's
//!   pending buffer, and only then does the connection subscribe to
//!   writable events. This is what makes level-triggered epoll safe:
//!   an idle socket is never registered for the always-ready writable
//!   state.
//! * **Workers never block on slow clients**: a response that does not
//!   flush in one write is handed to the reactor via the pending
//!   buffer, a dirty-connection list, and a waker.
//!
//! # Shutdown
//!
//! A shutdown request closes the queue and stops reads; a joiner thread
//! joins the workers (they drain the accepted backlog) and wakes the
//! reactor, which answers any leftover jobs with `shutting_down`,
//! flushes every pending buffer (switching the sockets back to blocking
//! writes with a timeout), and only then acknowledges the shutdown
//! callers — the same drain-then-ack contract as thread mode.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use mio::{Events, Interest, Poll, Token, Waker};

use crate::protocol::{render_error, ErrorCode, ProtocolError};
use crate::queue::BoundedQueue;
use crate::server::{handle_line, write_line, Job, ServerConfig, ServerState};

/// Token of the listening socket.
const LISTENER: Token = Token(0);
/// Token of the cross-thread waker.
const WAKER: Token = Token(1);
/// First connection token; slab slot `i` maps to token `i + CONN_BASE`.
const CONN_BASE: usize = 2;

/// Events drained per poll; level triggering re-delivers the rest.
const EVENTS_PER_POLL: usize = 1024;
/// Upper bound on bytes read from one connection per readable event, so
/// one fast sender cannot starve ten thousand others.
const READ_BURST_BYTES: usize = 64 * 1024;
/// Poll timeout: bounds shutdown latency and paces the parked-connection
/// sweep; never load-bearing for liveness (the waker is).
const POLL_TIMEOUT: Duration = Duration::from_millis(100);
/// Per-socket timeout for the final blocking flush during shutdown.
const FINAL_FLUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Recovers a mutex guard from a poisoning panic; every protected value
/// here (byte buffers, token lists) is valid at every await-free point.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State the worker threads share with the reactor thread.
pub(crate) struct ReactorShared {
    waker: Waker,
    /// Connections whose pending buffers gained bytes since the reactor
    /// last looked; carrying the `Arc` (not the token) makes stale
    /// entries for recycled slots harmless.
    dirty: Mutex<Vec<Arc<ConnHandle>>>,
    /// Test-only cap on bytes per `write` call, to deterministically
    /// exercise the multi-write response path.
    write_chunk_limit: Option<usize>,
}

/// The outgoing-bytes side of one connection, shared between the
/// reactor (flushing) and the workers (responding).
pub(crate) struct ConnHandle {
    stream: TcpStream,
    /// This connection's slab slot.
    slot: usize,
    pending: Mutex<Pending>,
    shared: Arc<ReactorShared>,
}

struct Pending {
    /// Bytes accepted but not yet written, in order.
    buf: VecDeque<u8>,
    /// A hard write error was seen; all further output is dropped (the
    /// client is gone — same policy as thread mode's ignored errors).
    dead: bool,
}

/// Where a response to one request goes: a blocking per-connection
/// stream (thread mode) or a reactor connection's pending buffer.
#[derive(Clone)]
pub(crate) enum ResponseSink {
    /// Thread mode: the shared blocking writer.
    Blocking(Arc<Mutex<TcpStream>>),
    /// Reactor mode: the connection's outgoing half.
    Reactor(Arc<ConnHandle>),
}

impl ResponseSink {
    /// Writes one response line (appending the newline). Errors mean
    /// the client is gone; the server does not care.
    pub(crate) fn send(&self, line: &str) {
        match self {
            ResponseSink::Blocking(writer) => {
                let mut w = lock(writer);
                let _ = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
            }
            ResponseSink::Reactor(handle) => handle.send_with(Arc::clone(handle), line),
        }
    }
}

impl ConnHandle {
    /// Queues one response line (appending the newline), writing as
    /// much as the socket takes right now. Called from worker threads
    /// and from the reactor itself; the pending mutex makes the bytes
    /// of concurrent responses atomic on the wire. `this` is the same
    /// handle's `Arc`, threaded through so the dirty list can hold a
    /// real clone.
    fn send_with(&self, this: Arc<ConnHandle>, line: &str) {
        debug_assert!(std::ptr::eq(self, Arc::as_ptr(&this)));
        let mut pending = lock(&self.pending);
        if pending.dead {
            return;
        }
        if !pending.buf.is_empty() {
            pending.buf.extend(line.as_bytes());
            pending.buf.push_back(b'\n');
        } else {
            let mut data = Vec::with_capacity(line.len() + 1);
            data.extend_from_slice(line.as_bytes());
            data.push(b'\n');
            match write_some(&self.stream, &data, self.shared.write_chunk_limit) {
                Ok(n) if n < data.len() => pending.buf.extend(&data[n..]),
                Ok(_) => {}
                Err(()) => {
                    pending.dead = true;
                    return;
                }
            }
        }
        let has_pending = !pending.buf.is_empty();
        drop(pending);
        if has_pending {
            lock(&self.shared.dirty).push(this);
            let _ = self.shared.waker.wake();
        }
    }

    /// Final blocking write used during shutdown, after the socket has
    /// been switched back to blocking mode and the pending buffer
    /// drained. Bypasses the event loop (it has exited) and the
    /// test-only chunking.
    fn send_final(&self, line: &str) {
        let pending = lock(&self.pending);
        if pending.dead {
            return;
        }
        let _ = (&self.stream)
            .write_all(line.as_bytes())
            .and_then(|()| (&self.stream).write_all(b"\n"))
            .and_then(|()| (&self.stream).flush());
    }
}

/// Writes from `data` until done, `WouldBlock`, or the test-only chunk
/// limit; returns bytes written, or `Err` on a hard I/O error.
fn write_some(mut stream: &TcpStream, data: &[u8], chunk_limit: Option<usize>) -> Result<usize, ()> {
    let mut written = 0;
    while written < data.len() {
        let end = match chunk_limit {
            Some(limit) => (written + limit).min(data.len()),
            None => data.len(),
        };
        match stream.write(&data[written..end]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                written += n;
                if chunk_limit.is_some() {
                    // One chunk per call: the remainder goes through
                    // the reactor so tests observe multi-write flushes.
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(written)
}

/// Per-connection reactor-side state (reads and interest tracking; the
/// write half lives in the shared [`ConnHandle`]).
struct Conn {
    handle: Arc<ConnHandle>,
    /// Partial-line accumulator.
    read_buf: Vec<u8>,
    /// Where the newline scan resumes (bytes before this were scanned).
    scan_from: usize,
    /// An oversized line was answered; input is dropped to the next
    /// newline.
    discarding: bool,
    /// EOF or peer close observed; the connection is kept only until
    /// its pending bytes flush and its in-flight jobs finish.
    read_closed: bool,
    /// What the fd is currently registered for (`None` = deregistered).
    registered: Option<Interest>,
}

/// The reactor: owns the slab, the poll, and the serving loop.
struct Reactor {
    poll: Poll,
    listener: TcpListener,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots that are read-closed and may be reclaimable.
    parked: Vec<usize>,
    shared: Arc<ReactorShared>,
    state: Arc<ServerState>,
    queue: Arc<BoundedQueue<Job>>,
    max_line_bytes: usize,
    /// Set once the shutdown transition ran (listener closed, queue
    /// closed, joiner spawned).
    draining: bool,
    workers_done: Arc<AtomicBool>,
}

/// Runs the reactor serving loop to completion. The caller (thread
/// mode's twin of `Server::run`) has already bound the listener and
/// spawned the workers.
///
/// # Errors
///
/// Propagates reactor-infrastructure failures (epoll/eventfd creation);
/// per-connection errors are contained.
pub(crate) fn run(
    listener: TcpListener,
    config: &ServerConfig,
    state: Arc<ServerState>,
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.registry()
        .register(&listener, LISTENER, Interest::READABLE)?;
    let waker = Waker::new(poll.registry(), WAKER)?;
    let shared = Arc::new(ReactorShared {
        waker,
        dirty: Mutex::new(Vec::new()),
        write_chunk_limit: config.write_chunk_limit,
    });
    let mut reactor = Reactor {
        poll,
        listener,
        slab: Vec::new(),
        free: Vec::new(),
        parked: Vec::new(),
        shared,
        state,
        queue,
        max_line_bytes: config.max_line_bytes,
        draining: false,
        workers_done: Arc::new(AtomicBool::new(false)),
    };
    reactor.serve(workers)
}

impl Reactor {
    fn serve(&mut self, workers: Vec<std::thread::JoinHandle<()>>) -> std::io::Result<()> {
        let mut workers = Some(workers);
        let mut events = Events::with_capacity(EVENTS_PER_POLL);
        loop {
            self.poll.poll(&mut events, Some(POLL_TIMEOUT))?;
            for event in events.iter() {
                match event.token() {
                    WAKER => self.shared.waker.drain(),
                    LISTENER => self.accept_burst(),
                    Token(t) => self.on_conn_event(
                        t - CONN_BASE,
                        event.is_readable(),
                        event.is_writable(),
                        event.is_read_closed(),
                    ),
                }
            }
            self.apply_dirty();
            self.sweep_parked();
            if !self.draining && self.state.is_shutting_down() {
                self.begin_drain(workers.take().expect("drain begins once"));
            }
            if self.draining && self.workers_done.load(Ordering::SeqCst) {
                self.finish_drain();
                return Ok(());
            }
        }
    }

    /// Accepts until the listener would block. Failures other than
    /// `WouldBlock` (fd exhaustion, aborted handshakes) drop that
    /// attempt; the next readable event retries.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.state.is_shutting_down() {
                        continue; // dropped: the acceptor is closing
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.slab.push(None);
                        self.slab.len() - 1
                    });
                    let handle = Arc::new(ConnHandle {
                        stream,
                        slot,
                        pending: Mutex::new(Pending {
                            buf: VecDeque::new(),
                            dead: false,
                        }),
                        shared: Arc::clone(&self.shared),
                    });
                    let mut conn = Conn {
                        handle,
                        read_buf: Vec::new(),
                        scan_from: 0,
                        discarding: false,
                        read_closed: false,
                        registered: None,
                    };
                    if self.set_interest(&mut conn, Some(Interest::READABLE)).is_err() {
                        self.free.push(slot);
                        continue;
                    }
                    self.slab[slot] = Some(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// (Re/de)registers a connection to match `desired`, tracking the
    /// current registration so redundant syscalls are skipped.
    fn set_interest(&self, conn: &mut Conn, desired: Option<Interest>) -> std::io::Result<()> {
        if conn.registered == desired {
            return Ok(());
        }
        let registry = self.poll.registry();
        let stream = &conn.handle.stream;
        match (conn.registered, desired) {
            (None, Some(i)) => registry.register(stream, Token(conn.handle.slot + CONN_BASE), i)?,
            (Some(_), Some(i)) => {
                registry.reregister(stream, Token(conn.handle.slot + CONN_BASE), i)?;
            }
            (Some(_), None) => registry.deregister(stream)?,
            (None, None) => {}
        }
        conn.registered = desired;
        Ok(())
    }

    /// The interest a connection should hold given its state.
    fn desired_interest(&self, conn: &Conn) -> Option<Interest> {
        let want_read = !conn.read_closed && !self.draining;
        let want_write = !lock(&conn.handle.pending).buf.is_empty();
        match (want_read, want_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        }
    }

    fn on_conn_event(&mut self, slot: usize, readable: bool, writable: bool, read_closed: bool) {
        let Some(conn) = self.slab.get(slot).map(Option::as_ref) else {
            return; // stale event for a reclaimed slot
        };
        if conn.is_none() {
            return;
        }
        if writable {
            self.flush_slot(slot);
        }
        if readable && !self.draining {
            self.read_slot(slot);
        } else if read_closed {
            if let Some(conn) = &mut self.slab[slot] {
                if !conn.read_closed {
                    conn.read_closed = true;
                    self.park(slot);
                }
            }
        }
        self.refresh_interest(slot);
    }

    /// Flushes the pending buffer as far as the socket (and the
    /// test-only chunk limit) allows.
    fn flush_slot(&mut self, slot: usize) {
        let Some(conn) = &self.slab[slot] else { return };
        let handle = Arc::clone(&conn.handle);
        let mut pending = lock(&handle.pending);
        if pending.dead {
            pending.buf.clear();
            return;
        }
        while !pending.buf.is_empty() {
            let (head, _) = pending.buf.as_slices();
            let take = self
                .shared
                .write_chunk_limit
                .map_or(head.len(), |l| l.min(head.len()));
            match (&handle.stream).write(&head[..take]) {
                Ok(0) => {
                    pending.dead = true;
                    pending.buf.clear();
                    return;
                }
                Ok(n) => {
                    pending.buf.drain(..n);
                    if self.shared.write_chunk_limit.is_some() {
                        // One chunk per writable event, so a long
                        // response observably spans several flushes.
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    pending.dead = true;
                    pending.buf.clear();
                    return;
                }
            }
        }
    }

    /// Reads one bounded burst and processes every completed line.
    fn read_slot(&mut self, slot: usize) {
        let Some(conn) = &mut self.slab[slot] else { return };
        let handle = Arc::clone(&conn.handle);
        let mut scratch = [0u8; 4096];
        let mut total = 0;
        let mut saw_eof = false;
        loop {
            match (&handle.stream).read(&mut scratch) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    let Some(conn) = &mut self.slab[slot] else { return };
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    total += n;
                    if total >= READ_BURST_BYTES {
                        break; // level triggering re-delivers the rest
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    saw_eof = true;
                    break;
                }
            }
        }
        let shutdown = self.process_lines(slot);
        if saw_eof || shutdown {
            if let Some(conn) = &mut self.slab[slot] {
                if saw_eof && !conn.read_buf.is_empty() && !conn.discarding && !shutdown {
                    // Final unterminated line: still a request.
                    let raw = std::mem::take(&mut conn.read_buf);
                    let sink = ResponseSink::Reactor(Arc::clone(&conn.handle));
                    if handle_line(&raw, &self.state, &self.queue, &sink) {
                        self.state.begin_shutdown();
                    }
                }
            }
            if let Some(conn) = &mut self.slab[slot] {
                // A shutdown requester stops being read but stays
                // registered for writes: its ack is still owed.
                conn.read_closed = true;
                conn.read_buf.clear();
                conn.scan_from = 0;
                self.park(slot);
            }
        }
    }

    /// Scans the accumulated buffer for complete lines and dispatches
    /// them. Returns `true` when a shutdown request was handled (the
    /// rest of the buffer is discarded, matching thread mode).
    fn process_lines(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = &mut self.slab[slot] else { return false };
            match conn.read_buf[conn.scan_from..]
                .iter()
                .position(|&b| b == b'\n')
            {
                Some(offset) => {
                    let line_end = conn.scan_from + offset;
                    let line: Vec<u8> = conn.read_buf[..line_end].to_vec();
                    conn.read_buf.drain(..=line_end);
                    conn.scan_from = 0;
                    if conn.discarding {
                        conn.discarding = false;
                        continue;
                    }
                    if line.len() > self.max_line_bytes {
                        let sink = ResponseSink::Reactor(Arc::clone(&conn.handle));
                        self.reject_oversized(&sink);
                        continue;
                    }
                    let sink = ResponseSink::Reactor(Arc::clone(&conn.handle));
                    if handle_line(&line, &self.state, &self.queue, &sink) {
                        self.state.begin_shutdown();
                        return true;
                    }
                }
                None => {
                    conn.scan_from = conn.read_buf.len();
                    if !conn.discarding && conn.read_buf.len() > self.max_line_bytes {
                        // Mid-stream cap: answer once, drop until the
                        // next newline resyncs the stream.
                        let sink = ResponseSink::Reactor(Arc::clone(&conn.handle));
                        self.reject_oversized(&sink);
                        let Some(conn) = &mut self.slab[slot] else { return false };
                        conn.discarding = true;
                        conn.read_buf.clear();
                        conn.scan_from = 0;
                    }
                    return false;
                }
            }
        }
    }

    fn reject_oversized(&self, sink: &ResponseSink) {
        self.state.counters.protocol_errors.inc();
        write_line(
            sink,
            &render_error(&ProtocolError::new(
                None,
                ErrorCode::Invalid,
                format!("line exceeds {} bytes", self.max_line_bytes),
            )),
        );
    }

    /// Registers newly-dirty connections (worker responses that did not
    /// flush in one write) for writable events.
    fn apply_dirty(&mut self) {
        let dirty = std::mem::take(&mut *lock(&self.shared.dirty));
        for handle in dirty {
            let slot = handle.slot;
            let live = matches!(
                self.slab.get(slot),
                Some(Some(conn)) if Arc::ptr_eq(&conn.handle, &handle)
            );
            if live {
                self.refresh_interest(slot);
            }
        }
    }

    fn refresh_interest(&mut self, slot: usize) {
        let Some(Some(conn)) = self.slab.get(slot) else {
            return;
        };
        let desired = self.desired_interest(conn);
        let mut conn = self.slab[slot].take().expect("checked above");
        if self.set_interest(&mut conn, desired).is_err() {
            // Registration failures orphan the fd; drop the connection.
            lock(&conn.handle.pending).dead = true;
        }
        self.slab[slot] = Some(conn);
    }

    fn park(&mut self, slot: usize) {
        if !self.parked.contains(&slot) {
            self.parked.push(slot);
        }
    }

    /// Reclaims read-closed connections whose output is fully flushed
    /// and whose handle nobody (worker job, acker) still holds.
    fn sweep_parked(&mut self) {
        let mut still_parked = Vec::new();
        for slot in std::mem::take(&mut self.parked) {
            let Some(Some(conn)) = self.slab.get(slot) else {
                continue;
            };
            let flushed = {
                let p = lock(&conn.handle.pending);
                p.dead || p.buf.is_empty()
            };
            if flushed && Arc::strong_count(&conn.handle) == 1 {
                let mut conn = self.slab[slot].take().expect("checked above");
                let _ = self.set_interest(&mut conn, None);
                self.free.push(slot);
            } else {
                still_parked.push(slot);
            }
        }
        self.parked = still_parked;
    }

    /// The shutdown transition: stop accepting and reading, close the
    /// queue, and hand the worker pool to a joiner thread that wakes
    /// the reactor when the backlog is drained.
    fn begin_drain(&mut self, workers: Vec<std::thread::JoinHandle<()>>) {
        self.draining = true;
        let _ = self.poll.registry().deregister(&self.listener);
        // Stop read interest everywhere; pending writes stay registered.
        for slot in 0..self.slab.len() {
            self.refresh_interest(slot);
        }
        self.queue.close();
        let done = Arc::clone(&self.workers_done);
        let state = Arc::clone(&self.state);
        let waker_shared = Arc::clone(&self.shared);
        std::thread::spawn(move || {
            for w in workers {
                if w.join().is_err() {
                    state.counters.internal_errors.inc();
                }
            }
            done.store(true, Ordering::SeqCst);
            let _ = waker_shared.waker.wake();
        });
    }

    /// Workers are done: answer anything left in the queue, flush every
    /// pending buffer with blocking writes, and acknowledge shutdown.
    fn finish_drain(&mut self) {
        while let Some((job, _)) = self.queue.pop() {
            write_line(
                &job.writer,
                &render_error(&ProtocolError::new(
                    Some(job.request.id),
                    ErrorCode::ShuttingDown,
                    "server is draining",
                )),
            );
        }
        // Final flush: switch the sockets back to blocking (with a
        // timeout so one dead client cannot wedge shutdown) and drain
        // the buffers synchronously.
        for conn in self.slab.iter().flatten() {
            let handle = &conn.handle;
            let mut pending = lock(&handle.pending);
            if pending.dead || pending.buf.is_empty() {
                continue;
            }
            if handle.stream.set_nonblocking(false).is_err()
                || handle
                    .stream
                    .set_write_timeout(Some(FINAL_FLUSH_TIMEOUT))
                    .is_err()
            {
                continue;
            }
            let bytes: Vec<u8> = pending.buf.iter().copied().collect();
            let _ = (&handle.stream).write_all(&bytes).and_then(|()| (&handle.stream).flush());
            pending.buf.clear();
        }
        for conn in self.slab.iter().flatten() {
            // Remaining sockets switch to blocking so the acks below
            // (and nothing else) write synchronously.
            let _ = conn.handle.stream.set_nonblocking(false);
            let _ = conn.handle.stream.set_write_timeout(Some(FINAL_FLUSH_TIMEOUT));
        }
        let ackers = std::mem::take(&mut *lock(self.state.ackers()));
        let drained = self.state.counters.served.get();
        for (id, sink) in ackers {
            let ack = crate::protocol::render_ok(
                "shutdown",
                id,
                &[("served".into(), drained.to_string())],
            );
            match &sink {
                ResponseSink::Reactor(handle) => handle.send_final(&ack),
                ResponseSink::Blocking(_) => write_line(&sink, &ack),
            }
        }
    }
}
