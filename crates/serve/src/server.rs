//! The resident simplification server.
//!
//! Two serving modes share the protocol, queue, and worker pool; they
//! differ only in how connection I/O is driven (see
//! [`ServeMode`]):
//!
//! * **Reactor** (default on Linux): one event-loop thread drives a
//!   nonblocking listener and every connection through epoll — see
//!   [`crate::reactor`]. This is the production-scale mode: ten
//!   thousand connections cost ten thousand slab slots, not ten
//!   thousand stacks.
//! * **Thread-per-connection**: one blocking reader thread per
//!   connection with short read timeouts (the original architecture,
//!   kept as the portable fallback and as a differential oracle — both
//!   modes must produce byte-identical responses).
//!
//! ```text
//!             ┌─────────────┐  accept   ┌─────────────────────┐
//!  clients ──▶│ acceptor /  │──────────▶│ reader thread (1/conn)│
//!             │ reactor loop│           │ or reactor state machine│
//!             └─────────────┘           └────────┬────────────┘
//!                                                │ try_push (never blocks)
//!                                       ┌────────▼─────────┐
//!                                       │  BoundedQueue    │──full──▶ {"error":"overloaded"}
//!                                       └────────┬─────────┘
//!                                                │ pop
//!                                       ┌────────▼─────────┐
//!                                       │   worker pool    │ shares one Arc<SigCache>
//!                                       └────────┬─────────┘
//!                                                │ ResponseSink (write mutex or
//!                                                ▼  reactor pending buffer)
//!                                     responses (any order, matched by id)
//! ```
//!
//! **Backpressure.** Readers enqueue with [`BoundedQueue::try_push`];
//! a full queue is answered immediately with an `overloaded` error —
//! the server sheds load instead of queueing unboundedly, and stays
//! live for later requests.
//!
//! **Deadlines.** A request carrying `deadline_ms` is checked against
//! its arrival time when a worker dequeues it and again after
//! simplification; either way past-deadline work is answered with a
//! `deadline` error, never silently dropped. Simplification itself is
//! not preempted (the simplifier has no cancellation points), so the
//! deadline bounds *useful* work, not worst-case occupancy.
//!
//! **Graceful shutdown.** A `{"control":"shutdown"}` request flips the
//! shutdown flag; the acceptor stops (unblocked by a loopback
//! self-connection), readers wind down at their next read-timeout tick,
//! the queue closes and workers drain the backlog, every in-flight
//! response is flushed, and only then is the shutdown acknowledged and
//! the process free to exit 0.

use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mba_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use mba_sig::{CacheStats, SigCache};
use mba_solver::{Simplifier, SimplifyConfig};

use crate::protocol::{
    decode_line, render_error, render_ok, render_reply, ClientMessage, Control, ErrorCode,
    ProtocolError, Reply, Request, MAX_LINE_BYTES,
};
use crate::queue::{BoundedQueue, PushError};
use crate::reactor::{self, ResponseSink};

/// How often blocked readers and the acceptor re-check the shutdown
/// flag. Bounds shutdown latency, not request latency.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How connection I/O is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One event-loop thread drives all connections through epoll.
    /// Scales to tens of thousands of concurrent connections.
    Reactor,
    /// One blocking reader thread per connection. Portable everywhere
    /// `std::net` works; thread cost caps realistic concurrency.
    ThreadPerConnection,
}

impl Default for ServeMode {
    /// Reactor wherever the epoll backend exists, threads elsewhere.
    fn default() -> Self {
        if mio::backend_available() {
            ServeMode::Reactor
        } else {
            ServeMode::ThreadPerConnection
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure threshold.
    pub queue_capacity: usize,
    /// Maximum accepted line length in bytes.
    pub max_line_bytes: usize,
    /// Test-only throttle: hold each job for this long before
    /// simplifying, to make queue-overflow behaviour deterministic in
    /// tests. Always `None` in production configurations.
    pub worker_delay: Option<Duration>,
    /// Whether the per-width simplifiers run the enumerative synthesis
    /// tier on residual expressions. On by default; `--no-synthesis`
    /// turns it off for latency-sensitive deployments.
    pub use_synthesis: bool,
    /// Connection I/O mode; defaults to the reactor where available.
    pub mode: ServeMode,
    /// Signature-cache entry budget; `None` disables eviction. The
    /// default bounds resident cache memory so a long-lived server
    /// cannot grow without limit under an adversarial key stream.
    pub cache_budget: Option<usize>,
    /// Signature-cache snapshot path: loaded (if present) at bind for a
    /// warm start, written back when the server drains.
    pub cache_snapshot: Option<PathBuf>,
    /// Test-only cap on bytes per socket `write` in reactor mode, to
    /// deterministically exercise multi-write response flushes. Always
    /// `None` in production configurations.
    pub write_chunk_limit: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            max_line_bytes: MAX_LINE_BYTES,
            worker_delay: None,
            use_synthesis: true,
            mode: ServeMode::default(),
            cache_budget: Some(DEFAULT_CACHE_BUDGET),
            cache_snapshot: None,
            write_chunk_limit: None,
        }
    }
}

/// Default signature-cache entry budget. At roughly a hundred bytes per
/// cached table this bounds the cache near tens of MiB — far above any
/// working set the benchmarks reach, so eviction is a memory ceiling,
/// not a throughput tax.
pub const DEFAULT_CACHE_BUDGET: usize = 262_144;

/// Monotonic serving counters, pre-resolved `mba-obs` handles so the
/// hot path never touches the registry lock. The same counters are
/// visible under their dotted names in [`ServerState::metrics`]
/// snapshots (`serve.requests.served`, `serve.error.*`).
#[derive(Debug)]
pub struct Counters {
    /// Requests answered with a simplified expression.
    pub served: Arc<Counter>,
    /// Lines rejected at the protocol layer (`parse` / `invalid`).
    pub protocol_errors: Arc<Counter>,
    /// Requests shed by backpressure.
    pub overloaded: Arc<Counter>,
    /// Requests answered with a `deadline` error.
    pub deadline_expired: Arc<Counter>,
    /// Requests answered with an `internal` error because the worker
    /// handling them panicked. Nonzero means a bug, but never a hang.
    pub internal_errors: Arc<Counter>,
}

impl Counters {
    fn resolve(obs: &MetricsRegistry) -> Counters {
        Counters {
            served: obs.counter("serve.requests.served"),
            protocol_errors: obs.counter("serve.error.protocol"),
            overloaded: obs.counter("serve.error.overloaded"),
            deadline_expired: obs.counter("serve.error.deadline"),
            internal_errors: obs.counter("serve.error.internal"),
        }
    }
}

/// State shared by the acceptor, readers, and workers.
pub struct ServerState {
    sig_cache: Arc<SigCache>,
    /// One simplifier per requested width, all sharing `sig_cache`.
    /// Width changes the coefficient ring, so results are width-keyed;
    /// the signature layer underneath is width-generic and shared.
    simplifiers: RwLock<HashMap<u32, Arc<Simplifier>>>,
    /// Whether freshly built simplifiers enable the synthesis tier
    /// (frozen at bind time from [`ServerConfig::use_synthesis`]).
    use_synthesis: bool,
    shutting_down: AtomicBool,
    /// Process-wide metrics registry; per-width simplifiers record
    /// their stage spans here, so `stats` can break serving time down
    /// by pipeline stage.
    obs: Arc<MetricsRegistry>,
    /// Serving counters.
    pub counters: Counters,
    /// Time from `try_push` acceptance to worker dequeue.
    queue_wait: Arc<Histogram>,
    /// Time from worker dequeue to response written.
    queue_service: Arc<Histogram>,
    /// Instantaneous queue depth, sampled at enqueue/dequeue edges.
    queue_depth: Arc<Gauge>,
    /// Sinks owed a shutdown acknowledgement once draining finishes.
    ackers: Mutex<Vec<(Option<u64>, ResponseSink)>>,
}

impl ServerState {
    fn new(config: &ServerConfig) -> ServerState {
        let obs = Arc::new(MetricsRegistry::new());
        let sig_cache = match config.cache_budget {
            Some(budget) => SigCache::with_budget(budget),
            None => SigCache::new(),
        };
        ServerState {
            sig_cache: Arc::new(sig_cache),
            simplifiers: RwLock::new(HashMap::new()),
            use_synthesis: config.use_synthesis,
            shutting_down: AtomicBool::new(false),
            counters: Counters::resolve(&obs),
            queue_wait: obs.histogram("serve.queue.wait.micros"),
            queue_service: obs.histogram("serve.queue.service.micros"),
            queue_depth: obs.gauge("serve.queue.depth"),
            obs,
            ackers: Mutex::new(Vec::new()),
        }
    }

    /// The shared signature cache (all widths, all connections).
    pub fn sig_cache(&self) -> &Arc<SigCache> {
        &self.sig_cache
    }

    /// The process-wide metrics registry (serving counters, queue
    /// histograms, and the simplifiers' per-stage spans).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Cumulative signature-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.sig_cache.stats()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (idempotent). The serving loop observes
    /// it and begins draining.
    pub(crate) fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Sinks owed a shutdown acknowledgement once draining finishes.
    pub(crate) fn ackers(&self) -> &Mutex<Vec<(Option<u64>, ResponseSink)>> {
        &self.ackers
    }

    fn simplifier_for(&self, width: u32) -> Arc<Simplifier> {
        if let Some(s) = self.simplifiers.read().unwrap().get(&width) {
            return Arc::clone(s);
        }
        let mut map = self.simplifiers.write().unwrap();
        Arc::clone(map.entry(width).or_insert_with(|| {
            Arc::new(Simplifier::with_metrics(
                SimplifyConfig {
                    width,
                    use_synthesis: self.use_synthesis,
                    ..SimplifyConfig::default()
                },
                Arc::clone(&self.sig_cache),
                Arc::clone(&self.obs),
            ))
        }))
    }
}

/// One unit of queued work.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) received: Instant,
    pub(crate) writer: ResponseSink,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    state: Arc<ServerState>,
    queue: Arc<BoundedQueue<Job>>,
}

impl Server {
    /// Binds the listener (port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let state = Arc::new(ServerState::new(&config));
        // Warm-start: a readable snapshot primes the cache; a missing
        // or malformed one costs nothing but the cold misses.
        if let Some(path) = &config.cache_snapshot {
            match std::fs::read_to_string(path) {
                Ok(doc) => {
                    if let Err(e) = state.sig_cache.load_snapshot(&doc) {
                        eprintln!("mba-serve: ignoring snapshot {}: {e}", path.display());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!("mba-serve: ignoring snapshot {}: {e}", path.display());
                }
            }
        }
        Ok(Server {
            listener,
            local_addr,
            state,
            config,
            queue,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (counters and caches), e.g. for tests.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `shutdown` control request, then drains and
    /// returns. Returning `Ok(())` means every accepted request was
    /// answered and flushed.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O failures only; per-connection
    /// errors are contained.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            local_addr,
            config,
            state,
            queue,
        } = self;

        let workers: Vec<_> = (0..effective_workers(config.workers))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let delay = config.worker_delay;
                std::thread::spawn(move || worker_loop(&queue, &state, delay))
            })
            .collect();

        let result = match config.mode {
            ServeMode::Reactor => {
                reactor::run(listener, &config, Arc::clone(&state), queue, workers)
            }
            ServeMode::ThreadPerConnection => {
                run_threaded(listener, local_addr, &config, &state, &queue, workers);
                Ok(())
            }
        };
        // Persist the cache across restarts; the next bind warm-starts
        // from it. Failures cost only the warm start.
        if let Some(path) = &config.cache_snapshot {
            if let Err(e) = std::fs::write(path, state.sig_cache.snapshot_json()) {
                eprintln!("mba-serve: could not write snapshot {}: {e}", path.display());
            }
        }
        result
    }
}

/// The thread-per-connection serving loop: blocking accept, one reader
/// thread per connection, drain-then-ack on shutdown.
fn run_threaded(
    listener: TcpListener,
    local_addr: SocketAddr,
    config: &ServerConfig,
    state: &Arc<ServerState>,
    queue: &Arc<BoundedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
) {
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if state.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        let queue = Arc::clone(queue);
        let max_line = config.max_line_bytes;
        connections.push(std::thread::spawn(move || {
            // A failed socket setup just drops the connection.
            let _ = handle_connection(stream, &state, &queue, max_line, local_addr);
        }));
    }

    // Shutdown: readers exit at their next poll tick, the queue
    // closes once no reader can enqueue, and workers drain what was
    // accepted. Join order matters — readers first, so every
    // enqueue happens before close().
    for c in connections {
        let _ = c.join();
    }
    queue.close();
    for w in workers {
        if w.join().is_err() {
            // A worker died outside the per-job catch-unwind guard
            // (pre-pop or post-respond). No job is lost at those
            // points, but count it — a dead worker is still a bug.
            state.counters.internal_errors.inc();
        }
    }
    // Belt-and-braces: if a worker died, its share of the backlog
    // may still be queued. The queue is closed, so pop() cannot
    // block; answer anything left rather than stranding it.
    while let Some((job, _)) = queue.pop() {
        write_line(
            &job.writer,
            &render_error(&ProtocolError::new(
                Some(job.request.id),
                ErrorCode::ShuttingDown,
                "server is draining",
            )),
        );
    }
    // All responses are flushed; acknowledge the shutdown callers.
    let ackers = std::mem::take(&mut *state.ackers().lock().unwrap());
    let drained = state.counters.served.get();
    for (id, writer) in ackers {
        write_line(
            &writer,
            &render_ok("shutdown", id, &[("served".into(), drained.to_string())]),
        );
    }
}

fn effective_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Writes one response line (appending the newline) through the sink.
/// Write errors mean the client is gone; the server does not care.
pub(crate) fn write_line(writer: &ResponseSink, line: &str) {
    writer.send(line);
}

/// Reads newline-delimited requests off one connection until EOF or
/// shutdown. Protocol errors are answered per line; nothing a client
/// sends can take down the reader, let alone the worker pool.
fn handle_connection(
    stream: TcpStream,
    state: &Arc<ServerState>,
    queue: &BoundedQueue<Job>,
    max_line_bytes: usize,
    local_addr: SocketAddr,
) -> std::io::Result<()> {
    // Short read timeouts turn the blocking read into a poll loop on
    // the shutdown flag.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let writer = ResponseSink::Blocking(Arc::new(Mutex::new(stream.try_clone()?)));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    // When a line overflows `max_line_bytes` it is answered once and
    // the remainder (up to the next newline) silently discarded.
    let mut discarding = false;

    loop {
        match read_until_newline(&mut reader, &mut buf) {
            ReadOutcome::WouldBlock => {
                if state.is_shutting_down() {
                    return Ok(());
                }
                if !discarding && buf.len() > max_line_bytes {
                    reject_oversized(state, &writer, max_line_bytes);
                    discarding = true;
                    buf.clear();
                }
                continue;
            }
            ReadOutcome::Eof => {
                if !buf.is_empty() && !discarding {
                    // Final unterminated line: still a request.
                    if handle_line(&buf, state, queue, &writer) {
                        poke_acceptor(local_addr);
                    }
                }
                return Ok(());
            }
            ReadOutcome::Line => {
                if discarding {
                    discarding = false;
                    buf.clear();
                    continue;
                }
                if buf.len() > max_line_bytes {
                    reject_oversized(state, &writer, max_line_bytes);
                    buf.clear();
                    continue;
                }
                let shutdown_received = handle_line(&buf, state, queue, &writer);
                buf.clear();
                if shutdown_received {
                    // No further requests on this connection; the ack
                    // arrives once draining completes. The blocking
                    // acceptor needs a poke to notice the flag.
                    poke_acceptor(local_addr);
                    return Ok(());
                }
            }
            ReadOutcome::Error(e) => return Err(e),
        }
    }
}

enum ReadOutcome {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// Timeout tick; the buffer may hold a partial line.
    WouldBlock,
    /// Clean end of stream.
    Eof,
    /// Hard I/O error.
    Error(std::io::Error),
}

/// Appends bytes to `buf` until a newline (consumed, not kept), EOF, or
/// a timeout tick. Partial reads accumulate across ticks.
fn read_until_newline(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(_) => {
                if byte[0] == b'\n' {
                    return ReadOutcome::Line;
                }
                buf.push(byte[0]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ReadOutcome::WouldBlock
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Error(e),
        }
    }
}

fn reject_oversized(state: &ServerState, writer: &ResponseSink, max_line_bytes: usize) {
    state.counters.protocol_errors.inc();
    write_line(
        writer,
        &render_error(&ProtocolError::new(
            None,
            ErrorCode::Invalid,
            format!("line exceeds {max_line_bytes} bytes"),
        )),
    );
}

/// Decodes and dispatches one complete line. Returns `true` when the
/// line was a shutdown request (the shutdown flag is already set; the
/// caller unblocks its accept loop however that loop blocks).
pub(crate) fn handle_line(
    raw: &[u8],
    state: &Arc<ServerState>,
    queue: &BoundedQueue<Job>,
    writer: &ResponseSink,
) -> bool {
    let Ok(line) = std::str::from_utf8(raw) else {
        state.counters.protocol_errors.inc();
        write_line(
            writer,
            &render_error(&ProtocolError::new(
                None,
                ErrorCode::Parse,
                "line is not valid UTF-8",
            )),
        );
        return false;
    };
    if line.trim().is_empty() {
        // Blank keep-alive lines are tolerated silently.
        return false;
    }
    match decode_line(line) {
        Err(e) => {
            state.counters.protocol_errors.inc();
            write_line(writer, &render_error(&e));
            false
        }
        Ok(ClientMessage::Control(Control::Ping, id)) => {
            write_line(writer, &render_ok("ping", id, &[]));
            false
        }
        Ok(ClientMessage::Control(Control::Stats, id)) => {
            write_line(writer, &render_ok("stats", id, &stats_fields(state, queue)));
            false
        }
        Ok(ClientMessage::Control(Control::Shutdown, id)) => {
            state.ackers().lock().unwrap().push((id, writer.clone()));
            state.begin_shutdown();
            true
        }
        Ok(ClientMessage::Simplify(request)) => {
            if state.is_shutting_down() {
                write_line(
                    writer,
                    &render_error(&ProtocolError::new(
                        Some(request.id),
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    )),
                );
                return false;
            }
            let job = Job {
                request,
                received: Instant::now(),
                writer: writer.clone(),
            };
            match queue.try_push(job) {
                // The post-push depth comes back from under the queue
                // lock; a separate `queue.len()` here would race with
                // concurrent pops and publish incoherent gauges.
                Ok(depth) => state.queue_depth.set(depth as i64),
                Err((why, job)) => {
                    let (code, detail) = match why {
                        PushError::Full => {
                            state.counters.overloaded.inc();
                            (
                                ErrorCode::Overloaded,
                                format!("queue full (capacity {})", queue.capacity()),
                            )
                        }
                        PushError::Closed => {
                            (ErrorCode::ShuttingDown, "server is draining".to_string())
                        }
                    };
                    write_line(
                        &job.writer,
                        &render_error(&ProtocolError::new(Some(job.request.id), code, detail)),
                    );
                }
            }
            false
        }
    }
}

/// Unblocks the thread-mode acceptor with a loopback self-connection
/// (idempotent; extra connections are dropped by the accept loop's
/// flag check). The reactor needs no poke — its loop polls the flag.
fn poke_acceptor(local_addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&local_addr, Duration::from_millis(200));
}

fn stats_fields(state: &ServerState, queue: &BoundedQueue<Job>) -> Vec<(String, String)> {
    // Refresh the cache gauges so the snapshot below is current.
    state.sig_cache.publish_metrics(&state.obs);
    let cache = state.cache_stats();
    let c = &state.counters;
    let snapshot = state.obs.snapshot();
    let mut fields = vec![
        ("served".into(), c.served.get().to_string()),
        ("protocol_errors".into(), c.protocol_errors.get().to_string()),
        ("overloaded".into(), c.overloaded.get().to_string()),
        (
            "deadline_expired".into(),
            c.deadline_expired.get().to_string(),
        ),
        ("internal_errors".into(), c.internal_errors.get().to_string()),
        ("queue_depth".into(), queue.len().to_string()),
        ("queue_capacity".into(), queue.capacity().to_string()),
        ("cache_hits".into(), cache.hits.to_string()),
        ("cache_misses".into(), cache.misses.to_string()),
        (
            "cache_hit_rate".into(),
            format!("{:.6}", cache.hit_rate()),
        ),
        (
            "sig_cache_entries".into(),
            state.sig_cache.len().to_string(),
        ),
        (
            "sig_cache_budget".into(),
            state.sig_cache.budget().unwrap_or(0).to_string(),
        ),
        (
            "sig_evictions".into(),
            state.sig_cache.evictions().to_string(),
        ),
    ];
    for (field, metric) in [
        ("queue_wait", "serve.queue.wait.micros"),
        ("queue_service", "serve.queue.service.micros"),
    ] {
        let (total, count, p95) = snapshot
            .histogram(metric)
            .map_or((0, 0, 0), |h| (h.sum, h.count, h.approx_quantile(0.95)));
        fields.push((format!("{field}_micros_total"), total.to_string()));
        fields.push((format!("{field}_count"), count.to_string()));
        fields.push((format!("{field}_p95_micros"), p95.to_string()));
    }
    // Pipeline-stage breakdown across every width-keyed simplifier —
    // same stage set as `mba_bench::report::STAGES`.
    for stage in ["signature", "basis", "poly_reduce", "rewrite", "final_fold"] {
        let (sum, count) = snapshot
            .histogram(&format!("core.stage.{stage}.micros"))
            .map_or((0, 0), |h| (h.sum, h.count));
        fields.push((format!("stage_{stage}_micros"), sum.to_string()));
        fields.push((format!("stage_{stage}_calls"), count.to_string()));
    }
    fields
}

/// The worker loop: drain the queue until it is closed and empty.
///
/// Each job runs under a catch-unwind guard, so a panic inside the
/// simplifier answers *that* request with an `internal` error and the
/// worker lives on — a panicking input can never strand its caller or
/// shrink the pool.
fn worker_loop(queue: &BoundedQueue<Job>, state: &ServerState, delay: Option<Duration>) {
    while let Some((job, depth)) = queue.pop() {
        state.queue_wait.record(job.received.elapsed().as_micros() as u64);
        // Post-pop depth observed under the queue lock (see try_push).
        state.queue_depth.set(depth as i64);
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let service = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_job(&job, state);
        }));
        if outcome.is_err() {
            state.counters.internal_errors.inc();
            write_line(
                &job.writer,
                &render_error(&ProtocolError::new(
                    Some(job.request.id),
                    ErrorCode::Internal,
                    "worker panicked while serving this request",
                )),
            );
        }
        state
            .queue_service
            .record(service.elapsed().as_micros() as u64);
    }
}

/// Answers one dequeued request: deadline check, parse, simplify,
/// deadline re-check, respond.
fn serve_job(job: &Job, state: &ServerState) {
    // `>=` so `deadline_ms: 0` means "already expired", matching the
    // protocol doc: the budget is the half-open interval [0, d).
    let deadline = job.request.deadline_ms.map(Duration::from_millis);
    let expired = |elapsed: Duration| deadline.is_some_and(|d| elapsed >= d);

    if expired(job.received.elapsed()) {
        return reject_deadline(job, state);
    }
    let expr: mba_expr::Expr = match job.request.expr.parse() {
        Ok(e) => e,
        Err(e) => {
            state.counters.protocol_errors.inc();
            write_line(
                &job.writer,
                &render_error(&ProtocolError::new(
                    Some(job.request.id),
                    ErrorCode::Invalid,
                    format!("expr does not parse: {e}"),
                )),
            );
            return;
        }
    };
    let simplifier = state.simplifier_for(job.request.width);
    let result = simplifier.simplify_detailed(&expr);
    let elapsed = job.received.elapsed();
    if expired(elapsed) {
        return reject_deadline(job, state);
    }
    state.counters.served.inc();
    write_line(
        &job.writer,
        &render_reply(&Reply {
            id: job.request.id,
            simplified: result.output.to_string(),
            node_count_in: expr.node_count() as u64,
            node_count_out: result.output.node_count() as u64,
            micros: elapsed.as_micros() as u64,
            cache_hit_rate: state.cache_stats().hit_rate(),
        }),
    );
}

fn reject_deadline(job: &Job, state: &ServerState) {
    state.counters.deadline_expired.inc();
    write_line(
        &job.writer,
        &render_error(&ProtocolError::new(
            Some(job.request.id),
            ErrorCode::Deadline,
            format!(
                "deadline of {}ms exceeded after {}us",
                job.request.deadline_ms.unwrap_or(0),
                job.received.elapsed().as_micros()
            ),
        )),
    );
}

/// The background server thread's join handle; joining yields the
/// result of [`Server::run`].
pub type ServerHandle = std::thread::JoinHandle<std::io::Result<()>>;

/// Binds on `addr`, runs in a background thread, and returns the
/// resolved address plus the join handle — the standard harness for
/// tests and for embedding the server in another process.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn<A: ToSocketAddrs>(
    addr: A,
    mut config: ServerConfig,
) -> std::io::Result<(SocketAddr, ServerHandle)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    config.addr = addr.to_string();
    let server = Server::bind(config)?;
    let local = server.local_addr();
    Ok((local, std::thread::spawn(move || server.run())))
}
