//! A small blocking client for the serve protocol — used by the load
//! generator, the integration tests, and anything that wants to embed a
//! protocol speaker without hand-writing JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{json_escape, parse_json, Json};

/// One parsed response line.
#[derive(Debug, Clone)]
pub struct Response {
    /// The raw line, without the newline.
    pub raw: String,
    /// The parsed object.
    pub json: Json,
}

impl Response {
    /// The echoed request id, when present.
    pub fn id(&self) -> Option<u64> {
        self.field("id").and_then(Json::as_u64)
    }

    /// The error code, when this is an error response.
    pub fn error(&self) -> Option<&str> {
        self.field("error").and_then(Json::as_str)
    }

    /// Whether this is a success (no `error` field).
    pub fn is_ok(&self) -> bool {
        self.error().is_none()
    }

    /// A raw field by name.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.json.as_obj().and_then(|o| o.get(name))
    }

    /// A string field by name.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.field(name).and_then(Json::as_str)
    }

    /// An integer field by name.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.field(name).and_then(Json::as_u64)
    }

    /// A float field by name.
    pub fn num_field(&self, name: &str) -> Option<f64> {
        self.field(name).and_then(Json::as_num)
    }
}

/// A blocking protocol client over one TCP connection.
///
/// Methods pair one request with one response, which is the protocol's
/// per-connection discipline under synchronous use; [`Client::send_raw`]
/// and [`Client::recv`] expose the pipelined form (many requests in
/// flight, responses matched by `id`).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Propagates the stream-clone failure.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// The server's address.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.writer.peer_addr()
    }

    /// Sets a read timeout for [`Client::recv`] (mostly for tests that
    /// must not hang on a silent server).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one already-rendered line (the newline is appended).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads and parses one response line.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed the connection,
    /// `InvalidData` when the line is not valid JSON.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let raw = line.trim_end_matches(['\n', '\r']).to_string();
        let json = parse_json(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response `{raw}`: {e}"),
            )
        })?;
        Ok(Response { raw, json })
    }

    /// Sends a simplification request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; protocol-level errors come back
    /// as a normal [`Response`] with an `error` field.
    pub fn simplify(
        &mut self,
        id: u64,
        expr: &str,
        width: u32,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Response> {
        let mut line = format!(
            "{{\"id\":{},\"expr\":\"{}\",\"width\":{}",
            id,
            json_escape(expr),
            width
        );
        if let Some(d) = deadline_ms {
            line.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        line.push('}');
        self.send_raw(&line)?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.send_raw("{\"control\":\"ping\"}")?;
        self.recv()
    }

    /// Requests a counters/cache/stage-breakdown snapshot. Sent via
    /// the `cmd` spelling to keep the wire alias exercised end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.send_raw("{\"cmd\":\"stats\"}")?;
        self.recv()
    }

    /// Requests graceful shutdown and waits for the drain
    /// acknowledgement (which only arrives after every in-flight
    /// request has been answered).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.send_raw("{\"control\":\"shutdown\"}")?;
        self.recv()
    }
}
