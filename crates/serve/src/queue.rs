//! A bounded MPMC queue with *rejecting* backpressure.
//!
//! The serving layer's load-shedding contract lives here: producers
//! (connection readers) never block and never buffer unboundedly —
//! [`BoundedQueue::try_push`] either enqueues or fails immediately, and
//! the caller turns the failure into an `overloaded` response. Workers
//! block on [`BoundedQueue::pop`] until an item arrives or the queue is
//! closed **and drained**, which is exactly the graceful-shutdown
//! sequence: close, let workers finish the backlog, join.
//!
//! # Shutdown/wakeup audit
//!
//! The invariant under scrutiny: **no item that `try_push` accepted can
//! be stranded by a concurrent `close()`**. It holds because both sides
//! run under the one mutex and the close-side wakeup is `notify_all`:
//!
//! * An accepted push inserts while holding the lock, so it is ordered
//!   against any `close()` — the item is in `items` before `closed`
//!   becomes visible, or the push observed `closed` and was refused.
//! * `pop` re-checks `items` before `closed` on every wakeup inside its
//!   lock-held loop, so a popper can never see `closed == true` yet
//!   skip a non-empty backlog, and spurious wakeups are harmless.
//! * `close()` uses `notify_all`, so every parked popper re-evaluates;
//!   `notify_one` on push is safe because each push adds exactly one
//!   item, and any single woken popper either consumes it or, finding
//!   the queue already emptied by a faster thread, parks again.
//!
//! The residual stranding vector is therefore *outside* the queue: a
//! worker that panics after popping holds the only reference to its
//! job. The server contains that with a catch-unwind guard per job (the
//! request is answered with an `internal` error) plus a post-join drain
//! in `Server::run`. `concurrent_close_never_strands_accepted_items`
//! below pins the queue half of the story.
//!
//! # Poison tolerance
//!
//! Every lock acquisition recovers the guard from a [`PoisonError`]
//! rather than unwrapping it. A thread that panics *while holding the
//! queue mutex* (a popper dying between `lock()` and the guard drop,
//! say) used to poison it, and every later `try_push`/`pop`/`len`/
//! `close` — acceptor, readers, and the rest of the worker pool —
//! would then panic in a cascade that no per-job `catch_unwind`
//! downstream could contain. The queue's state is a `VecDeque` plus a
//! `bool`; every mutation (push_back / pop_front / `closed = true`) is
//! a single atomic step with no intermediate invariant to corrupt, so
//! recovering the guard is sound. `poisoned_lock_keeps_serving` below
//! is the regression test.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the load.
    Full,
    /// The queue was closed for shutdown; no new work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods take `&self`; share it via `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Acquires the state lock, recovering from poison (see module doc).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy by nature; telemetry only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (telemetry only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. On success, returns the queue depth
    /// *after* the push, observed under the same lock acquisition —
    /// callers publish this into the depth gauge instead of re-reading
    /// `len()` separately (which races with concurrent ops and used to
    /// publish stale/incoherent depths into stats).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is returned alongside so the
    /// caller can answer its originator.
    pub fn try_push(&self, item: T) -> Result<usize, (PushError, T)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available, returning `None` only when
    /// the queue is closed **and** the backlog is fully drained — so a
    /// `close()` never drops accepted work. The `usize` alongside the
    /// item is the queue depth *after* the pop, observed under the same
    /// lock acquisition (same coherent-gauge contract as `try_push`).
    pub fn pop(&self) -> Option<(T, usize)> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, poppers drain the backlog
    /// then observe the close. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers_after_pop() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        let (err, item) = q.try_push(3).unwrap_err();
        assert_eq!((err, item), (PushError::Full, 3));
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.try_push(3).unwrap(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_before_ending_poppers() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c").unwrap_err().0, PushError::Closed);
        assert_eq!(q.pop(), Some(("a", 1)));
        assert_eq!(q.pop(), Some(("b", 0)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // idempotent
    }

    #[test]
    fn post_op_depth_is_coherent_under_contention() {
        // The depth returned by try_push/pop is read under the same
        // lock as the mutation, so pushing N items single-threadedly
        // yields depths 1..=N and popping yields N-1..=0 — and under
        // contention every reported depth must stay within [0, cap].
        let q = Arc::new(BoundedQueue::new(16));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..200 {
                        if let Ok(d) = q.try_push(i) {
                            assert!((1..=16).contains(&d), "push depth {d}");
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    while let Some((_, d)) = q.pop() {
                        assert!(d < 16, "pop depth {d}");
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            q.close();
        });
    }

    #[test]
    fn poisoned_lock_keeps_serving() {
        // Regression: a popper panicking while holding the queue mutex
        // used to poison it, cascading panics into every later queue
        // call from acceptor, readers, and the remaining worker pool.
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.inner.lock().unwrap();
                panic!("die while holding the queue lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.inner.is_poisoned(), "test setup: lock must be poisoned");
        // Every entry point keeps working on the recovered guard.
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((2, 0)));
        q.close();
        assert_eq!(q.try_push(3).unwrap_err().0, PushError::Closed);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().0, PushError::Full);
    }

    #[test]
    fn blocked_popper_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((v, _)) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Give the popper a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        assert_eq!(popper.join().unwrap(), vec![7, 8]);
    }

    #[test]
    fn concurrent_close_never_strands_accepted_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Stress the shutdown race: producers pushing flat-out, a pool
        // of blocking poppers, and a close() landing mid-stream. Every
        // accepted item must be consumed exactly once — by count, and
        // by value via a per-item consumption tally.
        for round in 0..20 {
            let q = Arc::new(BoundedQueue::new(8));
            let accepted = AtomicUsize::new(0);
            let consumed_flags: Vec<AtomicUsize> =
                (0..4 * 64).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let q = Arc::clone(&q);
                    let flags = &consumed_flags;
                    scope.spawn(move || {
                        while let Some((v, _)) = q.pop() {
                            flags[v as usize].fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
                for t in 0..4 {
                    let q = Arc::clone(&q);
                    let accepted = &accepted;
                    scope.spawn(move || {
                        for i in 0..64 {
                            if q.try_push(t * 64 + i).is_ok() {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            if i % 16 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
                // Close somewhere in the middle of the producer burst.
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    if round % 2 == 0 {
                        std::thread::yield_now();
                    }
                    q.close();
                });
            });
            let consumed: usize = consumed_flags
                .iter()
                .map(|f| f.load(Ordering::SeqCst))
                .sum();
            assert_eq!(
                consumed,
                accepted.load(Ordering::SeqCst),
                "round {round}: accepted items lost or duplicated"
            );
            assert!(
                consumed_flags
                    .iter()
                    .all(|f| f.load(Ordering::SeqCst) <= 1),
                "round {round}: an item was consumed twice"
            );
            assert!(q.is_empty(), "round {round}: backlog left behind");
        }
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..100 {
                        q.try_push(t * 1000 + i).unwrap();
                    }
                });
            }
        });
        q.close();
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }
}
