//! A bounded MPMC queue with *rejecting* backpressure.
//!
//! The serving layer's load-shedding contract lives here: producers
//! (connection readers) never block and never buffer unboundedly —
//! [`BoundedQueue::try_push`] either enqueues or fails immediately, and
//! the caller turns the failure into an `overloaded` response. Workers
//! block on [`BoundedQueue::pop`] until an item arrives or the queue is
//! closed **and drained**, which is exactly the graceful-shutdown
//! sequence: close, let workers finish the backlog, join.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the load.
    Full,
    /// The queue was closed for shutdown; no new work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods take `&self`; share it via `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy by nature; telemetry only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (telemetry only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is returned alongside so the
    /// caller can answer its originator.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available, returning `None` only when
    /// the queue is closed **and** the backlog is fully drained — so a
    /// `close()` never drops accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail, poppers drain the backlog
    /// then observe the close. Idempotent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (err, item) = q.try_push(3).unwrap_err();
        assert_eq!((err, item), (PushError::Full, 3));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_before_ending_poppers() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c").unwrap_err().0, PushError::Closed);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // idempotent
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().0, PushError::Full);
    }

    #[test]
    fn blocked_popper_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        // Give the popper a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        assert_eq!(popper.join().unwrap(), vec![7, 8]);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..100 {
                        q.try_push(t * 1000 + i).unwrap();
                    }
                });
            }
        });
        q.close();
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }
}
