//! Structural peephole rewrites.
//!
//! When the polynomial pipeline's candidate is worse than the input
//! (e.g. a degree-2 product whose expansion does not cancel), Algorithm 1
//! still simplifies *sub*-expressions and keeps "intermediate results for
//! certain MBA sub-expressions" (§7). This module provides that partial
//! pass: children are simplified independently and cheap local identities
//! fold the rebuilt node.

use mba_expr::{BinOp, Expr, UnOp};

/// Applies local algebraic identities to a node whose children are
/// already simplified. Pure peephole: never recurses.
pub(crate) fn peephole(e: Expr) -> Expr {
    match e {
        Expr::Unary(op, inner) => fold_unary(op, *inner),
        Expr::Binary(op, a, b) => fold_binary(op, *a, *b),
        leaf => leaf,
    }
}

fn fold_unary(op: UnOp, inner: Expr) -> Expr {
    match (op, inner) {
        (UnOp::Neg, Expr::Const(c)) => Expr::Const(c.wrapping_neg()),
        (UnOp::Not, Expr::Const(c)) => Expr::Const(!c),
        // ¬¬e = e and −−e = e.
        (UnOp::Neg, Expr::Unary(UnOp::Neg, e)) => *e,
        (UnOp::Not, Expr::Unary(UnOp::Not, e)) => *e,
        (op, inner) => Expr::unary(op, inner),
    }
}

fn fold_binary(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    match (op, &a, &b) {
        // Constant folding.
        (_, Expr::Const(x), Expr::Const(y)) => Expr::Const(match op {
            Add => x.wrapping_add(*y),
            Sub => x.wrapping_sub(*y),
            Mul => x.wrapping_mul(*y),
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
        }),
        // Additive / multiplicative units and annihilators.
        (Add, _, Expr::Const(0)) => a,
        (Add, Expr::Const(0), _) => b,
        (Sub, _, Expr::Const(0)) => a,
        (Sub, Expr::Const(0), _) => peephole(Expr::unary(UnOp::Neg, b)),
        (Mul, _, Expr::Const(1)) => a,
        (Mul, Expr::Const(1), _) => b,
        (Mul, _, Expr::Const(0)) | (Mul, Expr::Const(0), _) => Expr::zero(),
        // Bitwise units and annihilators.
        (And, _, Expr::Const(-1)) => a,
        (And, Expr::Const(-1), _) => b,
        (And, _, Expr::Const(0)) | (And, Expr::Const(0), _) => Expr::zero(),
        (Or, _, Expr::Const(0)) => a,
        (Or, Expr::Const(0), _) => b,
        (Or, _, Expr::Const(-1)) | (Or, Expr::Const(-1), _) => Expr::minus_one(),
        (Xor, _, Expr::Const(0)) => a,
        (Xor, Expr::Const(0), _) => b,
        // Idempotence / self-inverses on structurally equal operands.
        (And | Or, x, y) if x == y => a,
        (Xor | Sub, x, y) if x == y => Expr::zero(),
        _ => Expr::binary(op, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(peephole(p("3 + 4")), Expr::Const(7));
        assert_eq!(peephole(p("3 & 5")), Expr::Const(1));
        assert_eq!(peephole(p("2 * 8")), Expr::Const(16));
        assert_eq!(peephole(p("~0")), Expr::Const(-1));
        assert_eq!(peephole(Expr::unary(UnOp::Neg, Expr::Const(5))), Expr::Const(-5));
    }

    #[test]
    fn units_fold() {
        assert_eq!(peephole(p("x + 0")), p("x"));
        assert_eq!(peephole(p("0 + x")), p("x"));
        assert_eq!(peephole(p("x * 1")), p("x"));
        assert_eq!(peephole(p("x * 0")), Expr::zero());
        assert_eq!(peephole(p("x & -1")), p("x"));
        assert_eq!(peephole(p("x | 0")), p("x"));
        assert_eq!(peephole(p("x ^ 0")), p("x"));
        assert_eq!(peephole(p("x | -1")), Expr::minus_one());
        assert_eq!(peephole(p("x & 0")), Expr::zero());
    }

    #[test]
    fn zero_minus_becomes_negation() {
        assert_eq!(peephole(p("0 - x")).to_string(), "-x");
        // And double negation cancels through.
        let e = Expr::binary(BinOp::Sub, Expr::zero(), p("-x"));
        assert_eq!(peephole(e), p("x"));
    }

    #[test]
    fn idempotence_and_self_inverse() {
        assert_eq!(peephole(p("(x*y) & (x*y)")).to_string(), "x*y");
        assert_eq!(peephole(p("(x+1) | (x+1)")).to_string(), "x+1");
        assert_eq!(peephole(p("(x*y) ^ (x*y)")), Expr::zero());
        assert_eq!(peephole(p("(x*y) - (x*y)")), Expr::zero());
    }

    #[test]
    fn involutions() {
        assert_eq!(peephole(p("~~x")), p("x"));
        let negneg = Expr::unary(UnOp::Neg, Expr::unary(UnOp::Neg, p("x")));
        assert_eq!(peephole(negneg), p("x"));
    }

    #[test]
    fn non_matching_nodes_pass_through() {
        assert_eq!(peephole(p("x + y")), p("x + y"));
        assert_eq!(peephole(p("x & y")), p("x & y"));
    }
}
