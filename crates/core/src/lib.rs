//! MBA-Solver: the paper's core contribution (§4, Algorithm 1).
//!
//! A semantic-preserving simplifier for Mixed-Bitwise-Arithmetic
//! expressions, designed as a preprocessing pass in front of an SMT
//! solver. The pipeline:
//!
//! 1. **Signature extraction** — every maximal pure-bitwise subtree is
//!    converted to its signature vector (Definition 3) and re-expressed
//!    in the normalized basis `{−1} ∪ {∧S}` by exact Möbius inversion
//!    (§4.2–§4.3), collapsing MBA alternation.
//! 2. **Arithmetic reduction** — the whole expression becomes an exact
//!    multivariate polynomial over *atoms* (variables and normalized
//!    `∧`-terms) with coefficients in `Z/2^w`; expansion and collection
//!    cancel the obfuscation residue (the paper's SymPy step, §4.4).
//! 3. **Opaque abstraction** — arithmetic subtrees under bitwise
//!    operators are replaced by fresh temporaries, simplified
//!    independently, and substituted back; identical subtrees share a
//!    temporary, which *is* the paper's common-subexpression
//!    optimization (§4.5).
//! 4. **Final-step optimization** — a result whose signature is a scaled
//!    truth-table column folds to a single bitwise operation via the
//!    minimal-expression catalog (§4.5), e.g.
//!    `x + y − 2(x∧y) → x⊕y`.
//!
//! The transformation never changes semantics — every step is justified
//! by Theorem 1 or by ring arithmetic — and the simplifier returns the
//! input unchanged rather than emit anything weaker.
//!
//! # Quick start
//!
//! ```
//! use mba_solver::Simplifier;
//!
//! let simplifier = Simplifier::new();
//! // The paper's Figure 1 query that Z3 cannot crack in an hour:
//! let hard = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
//! let simplified = simplifier.simplify(&hard);
//! assert_eq!(simplified.to_string(), "x*y");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
pub mod poly;
mod rewrite;
mod simplifier;

pub use mba_sig::CacheStats;
pub use poly::Poly;
pub use simplifier::{
    Basis, InjectedBug, Simplified, Simplifier, SimplifyConfig, SimplifyResult, SimplifyTier,
    TierSkipped,
};
