//! The [`Simplifier`] driver: rounds, caching, scoring, and the
//! final-step optimization (Algorithm 1's outer loop).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mba_expr::{metrics, Expr, ExprArena, Ident, MbaClass, Metrics};
use mba_obs::{Counter, Histogram, MetricsRegistry};
use mba_sig::{catalog, linear_combination, CacheStats, SigCache, SignatureVector};
use parking_lot::Mutex;

use crate::pipeline::Pipeline;

/// Pre-resolved instrument handles for the simplifier's per-stage
/// telemetry, so the hot path never touches the registry's lock.
///
/// Latency histograms cover the paper's pipeline stages:
///
/// * `core.stage.signature.micros` — truth-table extraction (§4.1's
///   `2^t` evaluation sweep);
/// * `core.stage.basis.micros` — normalized-basis solving (§4.3 Möbius
///   inversion, Table 9 linear solve);
/// * `core.stage.poly_reduce.micros` — one whole lowering pass
///   (polynomial expansion + reduction); **includes** the signature and
///   basis spans, which fire inside it;
/// * `core.stage.simba.micros` — the SiMBA corner-evaluation fast path
///   and the semi-linear group-mask tier (fires inside `poly_reduce`,
///   like the signature/basis spans it replaces on a hit);
/// * `core.stage.rewrite.micros` — the structural peephole pass;
/// * `core.stage.final_fold.micros` — the §4.5 final-step bitwise fold;
/// * `core.stage.synth.micros` — the enumerative synthesis tier (fires
///   once per result whose final form is still polynomial or
///   non-polynomial, covering pool lookup plus the first-use pool
///   build).
///
/// Counters under `core.result.*` are pure functions of the simplified
/// results (and, for `core.result.class.*`, of the *inputs*), so they
/// are byte-identical across worker counts and cache schedules (unlike
/// stage-span *counts*, which vary with cache hits). The tier-event
/// counters (`core.result.bdd_canonicalized`,
/// `core.result.skipped.too_many_vars`) keep that property by riding on
/// flags threaded through the round cache: the flag is a pure function
/// of the input, recorded once per `simplify_detailed` call, never once
/// per (schedule-dependent) cache miss.
#[derive(Debug)]
pub(crate) struct StageMetrics {
    pub(crate) signature: Arc<Histogram>,
    pub(crate) basis: Arc<Histogram>,
    pub(crate) simba: Arc<Histogram>,
    poly_reduce: Arc<Histogram>,
    rewrite: Arc<Histogram>,
    final_fold: Arc<Histogram>,
    synth: Arc<Histogram>,
    result_exprs: Arc<Counter>,
    result_rounds: Arc<Counter>,
    result_bailouts: Arc<Counter>,
    result_output_nodes: Arc<Counter>,
    result_bdd: Arc<Counter>,
    result_skipped_too_many_vars: Arc<Counter>,
    result_class_linear: Arc<Counter>,
    result_class_semi_linear: Arc<Counter>,
    result_class_poly: Arc<Counter>,
    result_class_non_poly: Arc<Counter>,
}

impl StageMetrics {
    fn resolve(registry: &MetricsRegistry) -> StageMetrics {
        StageMetrics {
            signature: registry.histogram("core.stage.signature.micros"),
            basis: registry.histogram("core.stage.basis.micros"),
            simba: registry.histogram("core.stage.simba.micros"),
            poly_reduce: registry.histogram("core.stage.poly_reduce.micros"),
            rewrite: registry.histogram("core.stage.rewrite.micros"),
            final_fold: registry.histogram("core.stage.final_fold.micros"),
            synth: registry.histogram("core.stage.synth.micros"),
            result_exprs: registry.counter("core.result.exprs"),
            result_rounds: registry.counter("core.result.rounds"),
            result_bailouts: registry.counter("core.result.bailouts"),
            result_output_nodes: registry.counter("core.result.output_nodes"),
            result_bdd: registry.counter("core.result.bdd_canonicalized"),
            result_skipped_too_many_vars: registry
                .counter("core.result.skipped.too_many_vars"),
            result_class_linear: registry.counter("core.result.class.linear"),
            result_class_semi_linear: registry.counter("core.result.class.semi_linear"),
            result_class_poly: registry.counter("core.result.class.poly"),
            result_class_non_poly: registry.counter("core.result.class.non_poly"),
        }
    }

    /// Bumps the `core.result.class.*` counter for `class` — keyed on
    /// the input's classification, a pure function of the input.
    fn count_class(&self, class: MbaClass) {
        match class {
            MbaClass::Linear => self.result_class_linear.inc(),
            MbaClass::SemiLinear => self.result_class_semi_linear.inc(),
            MbaClass::Polynomial => self.result_class_poly.inc(),
            MbaClass::NonPolynomial => self.result_class_non_poly.inc(),
        }
    }
}

/// Which normalized basis the §4.3 reduction targets (§7 discusses the
/// trade-off; Table 4 is the ∧-basis, Table 9 the ∨-basis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Basis {
    /// `{−1} ∪ {∧S}` — unimodular, always integer-solvable (Table 4).
    #[default]
    And,
    /// `{−1} ∪ {∨S}` — sometimes shorter, falls back to ∧ when no
    /// integer solution exists (Table 9).
    Or,
    /// Try both bases and keep the better result — the base-vector
    /// selection heuristic §7 proposes as future work. Costs roughly
    /// twice the time of a fixed basis.
    Adaptive,
}

/// A deliberately unsound rewrite applied to the simplifier's *output*.
///
/// This exists solely for the verification subsystem (`mba-verify`):
/// its self-tests enable one of these bugs and assert that the fuzzing
/// harness both detects the resulting discrepancy and shrinks it to a
/// minimal reproducer. Production code must leave
/// [`SimplifyConfig::injected_bug`] at `None`; the soundness contract
/// of every other simplifier path is unaffected by that default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// Rewrites the first `a|b` node of the output to `a^b` — wrong
    /// exactly when `a ∧ b ≠ 0` somewhere.
    OrToXor,
    /// Rewrites the first `a+b` node of the output to `a|b` — wrong
    /// exactly when the addition carries.
    AddToOr,
    /// Adds 1 to the whole output — wrong on every input.
    OffByOne,
    /// Zeroes the first nonzero coefficient the SiMBA fast path
    /// recovers from corner evaluations (applied *after* the fast
    /// path's internal verification, so it cannot catch itself). Unlike
    /// the output-level bugs above, this one corrupts inside the new
    /// tier: it only fires on expressions the fast path serves, and the
    /// dropped term makes the output strictly simpler — exactly the
    /// kind of plausible-looking corruption the score guard would wave
    /// through.
    SimbaCoeffFlip,
    /// Makes the arena intern table return a *stale* id: after interning
    /// the pipeline's root/skeleton, the id is swapped for its first
    /// child's id — exactly the failure mode of an interner that kept an
    /// entry alive across a rewrite. Like [`InjectedBug::SimbaCoeffFlip`]
    /// this corrupts *inside* a tier (the arena-keyed signature route),
    /// so it only fires when [`SimplifyConfig::use_arena`] is set, and
    /// the arena-off differential path is immune by construction.
    ArenaStaleId,
    /// Makes the synthesis tier accept its candidate **without any
    /// probe check**: the first enumerated expression whose *width-1
    /// truth table* matches the target's is substituted outright —
    /// exactly the unsound shortcut a signature-only matcher would
    /// take. Since `x^y` and `x+y` share a width-1 table (and `^` is
    /// enumerated first), an obfuscated addition demonstrably comes
    /// back as an xor. Fires only when [`SimplifyConfig::use_synthesis`]
    /// is set and the synthesis tier is reached; the probe re-verify it
    /// skips is the tier's whole soundness argument.
    SynthUnsoundAccept,
    /// Flips the complement flag on the root edge of the BDD tier's
    /// diagram *between build and extraction*, so the canonicalized
    /// subterm comes back as its bitwise complement — exactly the
    /// corruption a broken complement-edge invariant (a lost or doubled
    /// flag during `mk_node` normalization) would produce. Fires only
    /// when [`SimplifyConfig::use_bdd`] is set and a pure-bitwise
    /// subterm beyond `TruthTable::MAX_VARS` reaches the tier, so the
    /// fuzzer needs a high-variable-count case stream to catch it; the
    /// `use_bdd:false` differential path is immune by construction.
    BddComplementFlip,
}

/// Tuning knobs for the simplifier. [`SimplifyConfig::default`] matches
/// the paper's prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplifyConfig {
    /// Bit width of the target ring `Z/2^w`; coefficients reduce
    /// symmetrically modulo `2^width`. MBA identities are width-generic,
    /// so 64 (the default) is safe for any narrower target.
    pub width: u32,
    /// Maximum simplification rounds (substituting temporaries back can
    /// expose further reductions, as in the §4.5 example).
    pub max_rounds: usize,
    /// Bail-out threshold on distinct monomials during expansion.
    pub max_monomials: usize,
    /// Enable the final-step optimization (§4.5): fold a scaled
    /// truth-table signature into a single bitwise expression.
    pub final_step: bool,
    /// Enable the look-up table (§4.5): memoize per-expression results.
    pub use_cache: bool,
    /// Enable the SiMBA linear fast path: recover basis coefficients of
    /// linear candidates from `2^t` corner evaluations instead of
    /// per-term truth tables. Off routes every linear candidate through
    /// the classic truth-table/basis pipeline; outputs are
    /// byte-identical either way (`tests/simba_differential.rs` holds
    /// this pinned).
    pub use_simba: bool,
    /// Route the pipeline's hot interior through the hash-consed
    /// [`ExprArena`]: classification, corner recovery, and truth-table
    /// extraction run over interned node ids, and the signature cache is
    /// keyed by id instead of re-hashed subtrees. Off routes everything
    /// through the original `Expr`-walking code; outputs are
    /// byte-identical either way (`tests/arena_differential.rs` holds
    /// this pinned).
    pub use_arena: bool,
    /// Enable the enumerative synthesis tier (`mba-synth`): results the
    /// algebraic pipeline leaves polynomial or non-polynomial are
    /// looked up in a signature-deduplicated pool of small candidate
    /// expressions, and a strictly simpler equivalent replaces the
    /// result only after its complete width-1 truth table *and*
    /// deterministic probe valuations at the request width agree. A
    /// rejection is never result-changing, so outputs with the tier off
    /// are byte-identical whenever the tier rejects
    /// (`tests/synth_differential.rs` holds this pinned).
    pub use_synthesis: bool,
    /// Enable the BDD canonicalization tier (`mba-bdd`): pure-bitwise
    /// subterms with more than `TruthTable::MAX_VARS` variables — too
    /// wide for any `2^t`-row tier — are canonicalized through a
    /// hash-consed ROBDD and rendered back via Shannon extraction,
    /// instead of being kept opaque. The tier only ever replaces a
    /// subterm by an exactly equivalent canonical form; when it
    /// declines (non-bitwise construct, diagram or render blow-up) the
    /// pipeline records an explicit [`TierSkipped::TooManyVars`] and
    /// keeps the subterm opaque as before. Off restores the pre-BDD
    /// behaviour byte-identically (`Simplified::used_bdd` reports
    /// whether the tier influenced a result).
    pub use_bdd: bool,
    /// Largest candidate node count the synthesis tier enumerates.
    pub synth_max_nodes: usize,
    /// Synthesis enumeration cap (per variable-set pool, checked per
    /// candidate so truncation is deterministic).
    pub synth_max_candidates: u64,
    /// Wall-clock budget for one synthesis pool build, in milliseconds
    /// (checked between node-count levels only).
    pub synth_budget_ms: u64,
    /// Normalized basis selection (§7).
    pub basis: Basis,
    /// Testing-only fault injection for the verification subsystem; see
    /// [`InjectedBug`]. Must be `None` outside fuzzer self-tests.
    pub injected_bug: Option<InjectedBug>,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        SimplifyConfig {
            width: 64,
            max_rounds: 4,
            max_monomials: 4096,
            final_step: true,
            use_cache: true,
            use_simba: true,
            use_arena: true,
            use_synthesis: true,
            use_bdd: true,
            synth_max_nodes: 5,
            synth_max_candidates: 20_000,
            synth_budget_ms: 1000,
            basis: Basis::And,
            injected_bug: None,
        }
    }
}

/// Alias for [`Simplified`] under the batch API's name:
/// [`Simplifier::simplify_batch`] returns `Vec<SimplifyResult>`.
pub type SimplifyResult = Simplified;

/// Which tier of the pipeline claimed a result (reported per result in
/// the CLI's verbose output and the serving layer's diagnostics).
///
/// The tag is derived deterministically: a synthesis acceptance wins
/// outright; an output byte-identical to the input is `Unchanged`;
/// otherwise the *input's* classification names the algebraic tier that
/// handled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplifyTier {
    /// The linear pipeline (truth-table/basis solve or the SiMBA corner
    /// fast path).
    Linear,
    /// The semi-linear group-mask tier.
    SemiLinear,
    /// The polynomial/non-polynomial reduction pipeline.
    Poly,
    /// The enumerative synthesis tier substituted a verified candidate.
    Synthesis,
    /// No tier improved the input; the output is the input.
    Unchanged,
}

impl std::fmt::Display for SimplifyTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimplifyTier::Linear => "linear",
            SimplifyTier::SemiLinear => "semi-linear",
            SimplifyTier::Poly => "poly",
            SimplifyTier::Synthesis => "synthesis",
            SimplifyTier::Unchanged => "unchanged",
        })
    }
}

/// Why a canonicalization tier declined a subterm — an *explicit*
/// record of what used to be a silent fall-through, surfaced on
/// [`Simplified::skipped`] and counted under
/// `core.result.skipped.too_many_vars`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSkipped {
    /// A pure-bitwise subterm had more variables than every available
    /// canonicalization tier supports (beyond `TruthTable::MAX_VARS`
    /// and, when the BDD tier is enabled, beyond its own variable or
    /// node budget too), so it was kept as an opaque atom.
    TooManyVars,
}

impl std::fmt::Display for TierSkipped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TierSkipped::TooManyVars => "too-many-vars",
        })
    }
}

/// Flags threaded through the round/canonical caches alongside each
/// result. Each entry's flags are a pure function of its key (like the
/// result itself), so counters derived from them stay byte-identical
/// across worker counts and cache schedules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RoundFlags {
    /// A pass hit the monomial cap and kept its input.
    pub(crate) bailed: bool,
    /// The BDD tier canonicalized some subterm along the way (even one
    /// later discarded by scoring — an over-approximation is safe: the
    /// `use_bdd:false` differential path skips byte-comparison when
    /// set, it never falsely diverges).
    pub(crate) used_bdd: bool,
    /// Some pure-bitwise subterm was too wide for every
    /// canonicalization tier and stayed opaque.
    pub(crate) skipped_too_many_vars: bool,
}

impl RoundFlags {
    /// Folds a nested round's tier flags in, *without* its `bailed`
    /// bit: nested bail-outs were never reported by the rounds loop,
    /// and widening them now would shift the pinned
    /// `core.result.bailouts` counter.
    pub(crate) fn absorb_nested(&mut self, nested: RoundFlags) {
        self.used_bdd |= nested.used_bdd;
        self.skipped_too_many_vars |= nested.skipped_too_many_vars;
    }
}

/// The result of [`Simplifier::simplify_detailed`].
#[derive(Debug, Clone)]
pub struct Simplified {
    /// The simplified expression (the input itself when no improvement
    /// was found — never anything semantically different).
    pub output: Expr,
    /// Rounds executed before the fixpoint.
    pub rounds: usize,
    /// Whether any pass hit the monomial cap and kept its input.
    pub bailed: bool,
    /// Whether the BDD canonicalization tier fired anywhere while
    /// producing this result (including on candidates later discarded
    /// by scoring). Differential harnesses comparing against a
    /// `use_bdd:false` run should only demand byte-identity when this
    /// is `false`.
    pub used_bdd: bool,
    /// Set when some subterm was declined by every canonicalization
    /// tier and kept opaque — previously a silent fall-through, now an
    /// explicit, observable outcome.
    pub skipped: Option<TierSkipped>,
    /// Metrics of the input.
    pub input_metrics: Metrics,
    /// Metrics of the output.
    pub output_metrics: Metrics,
    /// Which tier claimed the result.
    pub tier: SimplifyTier,
}

/// The MBA-Solver simplifier (Algorithm 1).
///
/// A `Simplifier` owns a lookup-table cache shared across calls, so reuse
/// one instance when simplifying a corpus. All methods take `&self`; the
/// type is `Send + Sync`.
///
/// ```
/// use mba_solver::Simplifier;
/// let s = Simplifier::new();
/// let e = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
/// assert_eq!(s.simplify(&e).to_string(), "x+y");
/// ```
#[derive(Debug)]
pub struct Simplifier {
    config: SimplifyConfig,
    cache: Mutex<HashMap<Expr, (Expr, RoundFlags)>>,
    canonical_cache: Mutex<HashMap<Expr, (Expr, RoundFlags)>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Signature-layer memoization (truth tables and basis
    /// coefficients), shareable across simplifiers via
    /// [`Simplifier::with_cache`] and across batch workers. Consulted
    /// only when [`SimplifyConfig::use_cache`] is set.
    sig_cache: Arc<SigCache>,
    /// The hash-consed node arena the pipeline's interior runs over when
    /// [`SimplifyConfig::use_arena`] is set. Shared across batch workers
    /// and adaptive sub-solvers (like the signature cache), so
    /// structurally identical subtrees intern to one id across the whole
    /// corpus — the cross-expression CSE the id-keyed signature cache
    /// exploits.
    arena: Arc<ExprArena>,
    /// The enumerative synthesis engine, consulted when
    /// [`SimplifyConfig::use_synthesis`] is set. Shared across batch
    /// workers and adaptive sub-solvers so candidate pools are built
    /// once per variable set for the whole corpus.
    synth: Arc<mba_synth::Synthesizer>,
    /// Per-stage telemetry registry, shareable via
    /// [`Simplifier::with_metrics`] (the serving layer hands every
    /// simplifier its process-wide registry).
    obs: Arc<MetricsRegistry>,
    stages: StageMetrics,
}

impl Default for Simplifier {
    fn default() -> Self {
        Simplifier::with_metrics(
            SimplifyConfig::default(),
            Arc::new(SigCache::new()),
            Arc::new(MetricsRegistry::new()),
        )
    }
}

/// Recursion guard for nested temporary simplification.
const MAX_DEPTH: usize = 32;

impl Simplifier {
    /// Creates a simplifier with the default (paper) configuration.
    pub fn new() -> Simplifier {
        Simplifier::default()
    }

    /// Creates a simplifier with an explicit configuration.
    pub fn with_config(config: SimplifyConfig) -> Simplifier {
        Simplifier {
            config,
            ..Simplifier::default()
        }
    }

    /// Creates a simplifier sharing an existing signature cache.
    ///
    /// Hand clones of one `Arc<SigCache>` to several simplifiers (or to
    /// several [`Simplifier::simplify_batch`] calls) and they pool their
    /// memoized truth tables and basis coefficients:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mba_sig::SigCache;
    /// use mba_solver::{Simplifier, SimplifyConfig};
    ///
    /// let cache = Arc::new(SigCache::new());
    /// let a = Simplifier::with_cache(SimplifyConfig::default(), Arc::clone(&cache));
    /// let b = Simplifier::with_cache(SimplifyConfig::default(), Arc::clone(&cache));
    /// // Polynomial inputs walk the truth-table route (linear ones are
    /// // handled by the corner-recovery fast path, which needs no cache).
    /// a.simplify(&"x*y + 2*(x&y)".parse().unwrap());
    /// b.simplify(&"x*y + 2*(x&y)".parse().unwrap());
    /// assert!(cache.stats().hits > 0, "b reuses a's signature work");
    /// ```
    pub fn with_cache(config: SimplifyConfig, sig_cache: Arc<SigCache>) -> Simplifier {
        Simplifier::with_metrics(config, sig_cache, Arc::new(MetricsRegistry::new()))
    }

    /// Creates a simplifier sharing both a signature cache and a
    /// metrics registry — the fully-shared constructor the serving
    /// layer and the bench runners use, so per-stage spans from every
    /// worker land in one process-wide registry.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mba_obs::MetricsRegistry;
    /// use mba_sig::SigCache;
    /// use mba_solver::{Simplifier, SimplifyConfig};
    ///
    /// let obs = Arc::new(MetricsRegistry::new());
    /// let s = Simplifier::with_metrics(
    ///     SimplifyConfig::default(),
    ///     Arc::new(SigCache::new()),
    ///     Arc::clone(&obs),
    /// );
    /// s.simplify(&"x*y + 2*(x&y)".parse().unwrap());
    /// let snap = obs.snapshot();
    /// assert_eq!(snap.counter("core.result.exprs"), 1);
    /// assert!(snap.histogram("core.stage.signature.micros").unwrap().count > 0);
    /// ```
    pub fn with_metrics(
        config: SimplifyConfig,
        sig_cache: Arc<SigCache>,
        obs: Arc<MetricsRegistry>,
    ) -> Simplifier {
        let synth = Arc::new(mba_synth::Synthesizer::new(mba_synth::SynthConfig {
            width: config.width,
            max_nodes: config.synth_max_nodes,
            max_candidates: config.synth_max_candidates,
            budget_ms: config.synth_budget_ms,
        }));
        Simplifier::with_parts(config, sig_cache, Arc::new(ExprArena::new()), synth, obs)
    }

    /// The fully-explicit constructor: every shared component handed in.
    /// Internal — adaptive sub-solvers use it to share their parent's
    /// arena and synthesis pools alongside its signature cache and
    /// registry.
    fn with_parts(
        config: SimplifyConfig,
        sig_cache: Arc<SigCache>,
        arena: Arc<ExprArena>,
        synth: Arc<mba_synth::Synthesizer>,
        obs: Arc<MetricsRegistry>,
    ) -> Simplifier {
        let stages = StageMetrics::resolve(&obs);
        Simplifier {
            config,
            cache: Mutex::new(HashMap::new()),
            canonical_cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            sig_cache,
            arena,
            synth,
            obs,
            stages,
        }
    }

    /// The shared signature-layer cache (for stats or further sharing).
    pub fn sig_cache(&self) -> &Arc<SigCache> {
        &self.sig_cache
    }

    /// The shared hash-consed node arena (for stats, telemetry bridging,
    /// or further sharing). Populated only when
    /// [`SimplifyConfig::use_arena`] is set; an arena-off simplifier
    /// never interns into it.
    pub fn arena(&self) -> &Arc<ExprArena> {
        &self.arena
    }

    /// The shared per-stage metrics registry (for snapshots or further
    /// sharing).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Pre-resolved stage instrument handles, for the pipeline.
    pub(crate) fn stages(&self) -> &StageMetrics {
        &self.stages
    }

    /// The active configuration.
    pub fn config(&self) -> &SimplifyConfig {
        &self.config
    }

    /// Simplifies an expression, returning the best equivalent form
    /// found (possibly the input itself).
    pub fn simplify(&self, e: &Expr) -> Expr {
        self.simplify_detailed(e).output
    }

    /// Simplifies an expression and reports round/bail-out details.
    pub fn simplify_detailed(&self, e: &Expr) -> Simplified {
        if self.config.basis == Basis::Adaptive {
            return self.simplify_adaptive(e);
        }
        let input_class = e.mba_class();
        let mut current = e.clone();
        let mut rounds = 0;
        let mut bailed = false;
        let mut flags = RoundFlags::default();
        for _ in 0..self.config.max_rounds {
            let (next, round_flags) = self.simplify_round(&current, 0);
            bailed |= round_flags.bailed;
            flags.absorb_nested(round_flags);
            rounds += 1;
            if next == current || score(&next) > score(&current) {
                break;
            }
            current = next;
        }
        if self.config.final_step {
            current = self.final_step(&current);
        }
        // The synthesis tier runs last, on the algebraic pipeline's
        // residue: only results still classified polynomial or
        // non-polynomial are eligible, and a rejection keeps `current`
        // untouched (the tier is sound by construction — see
        // `mba-synth`'s crate docs).
        let mut synthesized = false;
        if self.config.use_synthesis {
            if let Some(better) = self.synthesis_step(&current) {
                current = better;
                synthesized = true;
            }
        }
        if let Some(bug) = self.config.injected_bug {
            current = apply_injected_bug(bug, &current);
        }
        let tier = if synthesized {
            SimplifyTier::Synthesis
        } else if current == *e {
            SimplifyTier::Unchanged
        } else {
            match input_class {
                MbaClass::Linear => SimplifyTier::Linear,
                MbaClass::SemiLinear => SimplifyTier::SemiLinear,
                MbaClass::Polynomial | MbaClass::NonPolynomial => SimplifyTier::Poly,
            }
        };
        // `core.result.*` counters are derived from the result alone —
        // the batch API guarantees results are byte-identical across
        // worker counts, so these counters inherit that determinism.
        // The per-class counters key on the *input* classification,
        // also a pure function of the case stream.
        self.stages.count_class(input_class);
        self.stages.result_exprs.inc();
        self.stages.result_rounds.add(rounds as u64);
        if bailed {
            self.stages.result_bailouts.inc();
        }
        self.stages.result_output_nodes.add(current.node_count() as u64);
        // Tier-event counters: once per input, from flags that are a
        // pure function of the input — bumping them at the (cache-
        // schedule-dependent) tier sites instead would break the
        // cross-jobs metrics determinism pin.
        if flags.used_bdd {
            self.stages.result_bdd.inc();
        }
        if flags.skipped_too_many_vars {
            self.stages.result_skipped_too_many_vars.inc();
        }
        Simplified {
            rounds,
            bailed,
            used_bdd: flags.used_bdd,
            skipped: flags
                .skipped_too_many_vars
                .then_some(TierSkipped::TooManyVars),
            input_metrics: Metrics::of(e),
            output_metrics: Metrics::of(&current),
            output: current,
            tier,
        }
    }

    /// One synthesis query against the pipeline's final form. Gated on
    /// the result still being polynomial/non-polynomial (anything the
    /// algebraic tiers classify is theirs); variable-count and
    /// node-count gates live inside the engine. Under the
    /// [`InjectedBug::SynthUnsoundAccept`] fault injection the probe
    /// checks are skipped — the corruption the verify harness must
    /// catch.
    fn synthesis_step(&self, e: &Expr) -> Option<Expr> {
        if !matches!(
            e.mba_class(),
            MbaClass::Polynomial | MbaClass::NonPolynomial
        ) {
            return None;
        }
        let _t = self.stages.synth.time();
        if self.config.injected_bug == Some(InjectedBug::SynthUnsoundAccept) {
            self.synth.synthesize_unchecked(e)
        } else {
            self.synth.synthesize(e)
        }
    }

    /// Simplifies a batch of expressions in parallel, one worker per
    /// available core, all workers sharing this simplifier's caches.
    ///
    /// Results arrive in input order, and each is byte-identical to
    /// what a sequential [`Simplifier::simplify_detailed`] loop would
    /// produce — every memoized value is a pure function of its key, so
    /// scheduling cannot leak into outputs
    /// (`tests/differential_cache.rs` holds this pinned).
    pub fn simplify_batch(&self, exprs: &[Expr]) -> Vec<SimplifyResult> {
        self.simplify_batch_with_jobs(exprs, 0)
    }

    /// [`Simplifier::simplify_batch`] with an explicit worker count.
    ///
    /// `jobs == 0` means "one worker per available core"
    /// ([`std::thread::available_parallelism`]), `jobs == 1` runs inline
    /// on the calling thread, and any count is capped at the batch
    /// length. The worker count never affects outputs — results are
    /// byte-identical across any `jobs` value.
    pub fn simplify_batch_with_jobs(&self, exprs: &[Expr], jobs: usize) -> Vec<SimplifyResult> {
        let refs: Vec<&Expr> = exprs.iter().collect();
        self.simplify_batch_refs(&refs, jobs)
    }

    /// [`Simplifier::simplify_batch_with_jobs`] over borrowed inputs.
    ///
    /// Callers that already own their corpus elsewhere (the fuzz
    /// harness, replay drivers) hand in `&[&Expr]` and skip the deep
    /// `Expr::clone` per case that assembling an owned `Vec<Expr>` would
    /// cost — with the arena interning structure anyway, that clone was
    /// pure job-setup overhead. Semantics are identical to the owned
    /// entry point: same worker resolution, same input-order results,
    /// byte-identical outputs at any `jobs` value.
    pub fn simplify_batch_refs(&self, exprs: &[&Expr], jobs: usize) -> Vec<SimplifyResult> {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            jobs
        };
        let jobs = jobs.clamp(1, exprs.len().max(1));
        if jobs == 1 {
            return exprs.iter().map(|e| self.simplify_detailed(e)).collect();
        }
        // Work-stealing by atomic index: workers pull the next
        // unclaimed expression, tagging results with their input
        // position so the merge restores input order.
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, Simplified)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(e) = exprs.get(i) else { break };
                            local.push((i, self.simplify_detailed(e)));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("batch worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, s)| s).collect()
    }

    /// §7's base-vector selection: run the ∧- and ∨-basis pipelines
    /// independently and keep whichever result scores better (ties go
    /// to the ∧ basis, the paper's default).
    fn simplify_adaptive(&self, e: &Expr) -> Simplified {
        // Both sub-solvers share this simplifier's signature cache (the
        // truth tables are basis-independent, and the ∧ run's Möbius
        // coefficients double as the ∨ run's fallback), its node arena
        // (ids stay valid across both runs, so the ∨ run's lookups hit
        // the ∧ run's interned skeletons), and its metrics registry — so
        // adaptive runs record one `core.result.exprs` per basis
        // attempt, i.e. two per input expression.
        let and_solver = Simplifier::with_parts(
            SimplifyConfig {
                basis: Basis::And,
                ..self.config.clone()
            },
            Arc::clone(&self.sig_cache),
            Arc::clone(&self.arena),
            Arc::clone(&self.synth),
            Arc::clone(&self.obs),
        );
        let or_solver = Simplifier::with_parts(
            SimplifyConfig {
                basis: Basis::Or,
                ..self.config.clone()
            },
            Arc::clone(&self.sig_cache),
            Arc::clone(&self.arena),
            Arc::clone(&self.synth),
            Arc::clone(&self.obs),
        );
        let and_result = and_solver.simplify_detailed(e);
        let or_result = or_solver.simplify_detailed(e);
        if score(&or_result.output) < score(&and_result.output) {
            or_result
        } else {
            and_result
        }
    }

    /// Hit/miss counters of the expression-level lookup table since
    /// construction (or the last [`Simplifier::clear_cache`]).
    ///
    /// Distinct from [`Simplifier::sig_cache`]'s counters: this table
    /// memoizes whole `expression → result` rounds, the signature cache
    /// memoizes the truth-table/basis layer underneath. Both report
    /// through the same [`CacheStats`] shape
    /// (`hit_rate()` / `lookups()`).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Empties the lookup table and resets its counters.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
        self.canonical_cache.lock().clear();
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }

    /// One lowering pass; returns `(result, flags)`. The result is
    /// never worse than the input under [`score`].
    pub(crate) fn simplify_round(&self, e: &Expr, depth: usize) -> (Expr, RoundFlags) {
        if depth > MAX_DEPTH {
            return (e.clone(), RoundFlags::default());
        }
        if self.config.use_cache {
            if let Some(hit) = self.cache.lock().get(e) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut pipeline = Pipeline::new(self, e, depth);
        let candidate = {
            let _t = self.stages.poly_reduce.time();
            pipeline.run(e)
        };
        let mut flags = RoundFlags {
            bailed: pipeline.bailed,
            used_bdd: pipeline.used_bdd,
            skipped_too_many_vars: pipeline.skipped_too_many_vars,
        };
        let mut result = e.clone();
        // Prefer the pipeline's canonical render even on score ties:
        // canonical forms make structurally-diverged but equivalent
        // subtrees deduplicate (the common-subexpression optimization
        // depends on it).
        if let Some(c) = candidate {
            if score(&c) <= score(&result) {
                result = c;
            }
        }
        // Fallback: even when full expansion loses, children may still
        // simplify (§7's "intermediate results for sub-expressions").
        let (structural, structural_flags) = self.structural_pass(e, depth);
        flags.absorb_nested(structural_flags);
        if score(&structural) < score(&result) {
            result = structural;
        }
        if self.config.use_cache {
            self.cache
                .lock()
                .insert(e.clone(), (result.clone(), flags));
        }
        (result, flags)
    }

    /// The canonical polynomial render of `e` — the pipeline's output
    /// with no size gating. Used as the deduplication key for opaque
    /// temporaries: syntactically different but polynomially equal
    /// subtrees share a canonical form. Falls back to `e` itself on a
    /// monomial-cap bail-out.
    pub(crate) fn canonical_form(&self, e: &Expr, depth: usize) -> (Expr, RoundFlags) {
        if depth > MAX_DEPTH {
            return (e.clone(), RoundFlags::default());
        }
        if let Some(hit) = self.canonical_cache.lock().get(e) {
            return hit.clone();
        }
        let mut pipeline = Pipeline::new(self, e, depth);
        let out = {
            let _t = self.stages.poly_reduce.time();
            pipeline.run(e).unwrap_or_else(|| e.clone())
        };
        // Canonical probes report tier flags (a BDD firing here changes
        // temp-dedup keys, so the `use_bdd:false` differential must see
        // it) but never `bailed` — callers only absorb the tier bits.
        let flags = RoundFlags {
            bailed: false,
            used_bdd: pipeline.used_bdd,
            skipped_too_many_vars: pipeline.skipped_too_many_vars,
        };
        self.canonical_cache
            .lock()
            .insert(e.clone(), (out.clone(), flags));
        (out, flags)
    }

    /// Rebuilds `e` with each child simplified independently, then folds
    /// local identities at this node. The returned flags carry only the
    /// children's *tier* bits (see [`RoundFlags::absorb_nested`]).
    fn structural_pass(&self, e: &Expr, depth: usize) -> (Expr, RoundFlags) {
        let mut flags = RoundFlags::default();
        let rebuilt = match e {
            Expr::Const(_) | Expr::Var(_) => e.clone(),
            Expr::Unary(op, a) => {
                let (a, fa) = self.simplify_round(a, depth + 1);
                flags.absorb_nested(fa);
                Expr::unary(*op, a)
            }
            Expr::Binary(op, a, b) => {
                let (a, fa) = self.simplify_round(a, depth + 1);
                let (b, fb) = self.simplify_round(b, depth + 1);
                flags.absorb_nested(fa);
                flags.absorb_nested(fb);
                Expr::binary(*op, a, b)
            }
        };
        let _t = self.stages.rewrite.time();
        (crate::rewrite::peephole(rebuilt), flags)
    }

    /// Attempts to *prove* two expressions equivalent by comparing their
    /// canonical polynomial forms over shared atoms.
    ///
    /// `Some(true)` is a proof of equivalence at the configured width
    /// (Theorem 1 plus ring arithmetic). `Some(false)` means the
    /// polynomial forms differ — which does **not** disprove equivalence,
    /// since distinct atoms can still be related (e.g.
    /// `(x∧y)·(x∨y) = x·y`). `None` means a monomial-cap bail-out.
    ///
    /// ```
    /// use mba_solver::Simplifier;
    /// let s = Simplifier::new();
    /// let a = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
    /// let b = "x*y".parse().unwrap();
    /// assert_eq!(s.proves_equivalent(&a, &b), Some(true));
    /// ```
    pub fn proves_equivalent(&self, a: &Expr, b: &Expr) -> Option<bool> {
        // Simplify the difference with the full rounds loop: shared
        // opaque subtrees on both sides unify through the temporary
        // deduplication, and the certificate succeeds iff the
        // difference collapses to 0.
        let diff = Expr::binary(mba_expr::BinOp::Sub, a.clone(), b.clone());
        let d = self.simplify_detailed(&diff);
        if d.output == Expr::zero() {
            Some(true)
        } else if d.bailed {
            None
        } else {
            Some(false)
        }
    }

    /// §4.5 final-step optimization: if the (linear, ≤3-variable) result
    /// is a scaled truth-table column, replace it by `c ·` the minimal
    /// bitwise expression from the catalog when that is strictly better.
    pub(crate) fn final_step(&self, e: &Expr) -> Expr {
        let _t = self.stages.final_fold.time();
        if e.mba_class() != MbaClass::Linear {
            return e.clone();
        }
        let vars: Vec<Ident> = e.vars().into_iter().collect();
        if vars.is_empty() || vars.len() > catalog::MAX_CATALOG_VARS {
            return e.clone();
        }
        let Ok(sig) = SignatureVector::of_linear(e, &vars) else {
            return e.clone();
        };
        let Some((c, tt)) = sig.as_scaled_truth_table() else {
            return e.clone();
        };
        let Some(catalog) = catalog::shared(&vars) else {
            return e.clone();
        };
        let Some(minimal) = catalog.minimal_expr(&tt) else {
            return e.clone();
        };
        let candidate = linear_combination(&[(c, minimal.clone())]);
        if score(&candidate) < score(e) {
            candidate
        } else {
            e.clone()
        }
    }
}

/// Applies one [`InjectedBug`] to a finished output. Deterministic (the
/// *first* eligible node in pre-order is rewritten), so the corrupted
/// stream is identical across the sequential, batch, and cache-off
/// paths — the fuzzer's oracle, not its differential layer, must catch
/// these.
fn apply_injected_bug(bug: InjectedBug, e: &Expr) -> Expr {
    use mba_expr::BinOp;
    match bug {
        InjectedBug::OffByOne => {
            Expr::binary(BinOp::Add, e.clone(), Expr::one())
        }
        InjectedBug::OrToXor => replace_first(e, &mut |n| match n {
            Expr::Binary(BinOp::Or, a, b) => {
                Some(Expr::Binary(BinOp::Xor, a.clone(), b.clone()))
            }
            _ => None,
        }),
        InjectedBug::AddToOr => replace_first(e, &mut |n| match n {
            Expr::Binary(BinOp::Add, a, b) => {
                Some(Expr::Binary(BinOp::Or, a.clone(), b.clone()))
            }
            _ => None,
        }),
        // Applied inside the fast path (`pipeline.rs`), not at the
        // output level — a corruption of the corner-recovery tier
        // itself. Nothing to do here.
        InjectedBug::SimbaCoeffFlip => e.clone(),
        // Applied where the pipeline interns into the arena
        // (`pipeline.rs`): the freshly-interned id is swapped for its
        // first child's, modelling a stale intern-table entry. Nothing
        // to do at the output level.
        InjectedBug::ArenaStaleId => e.clone(),
        // Applied inside the synthesis tier (`synthesis_step` routes to
        // `synthesize_unchecked`, which accepts on the width-1 table
        // alone). Nothing to do at the output level.
        InjectedBug::SynthUnsoundAccept => e.clone(),
        // Applied inside the BDD tier (`pipeline.rs` flips the root
        // edge's complement flag between build and extraction). Nothing
        // to do at the output level.
        InjectedBug::BddComplementFlip => e.clone(),
    }
}

/// Rewrites the first (pre-order) node `f` accepts; returns the input
/// unchanged when no node matches.
fn replace_first(e: &Expr, f: &mut impl FnMut(&Expr) -> Option<Expr>) -> Expr {
    fn walk(e: &Expr, f: &mut impl FnMut(&Expr) -> Option<Expr>, done: &mut bool) -> Expr {
        if *done {
            return e.clone();
        }
        if let Some(replacement) = f(e) {
            *done = true;
            return replacement;
        }
        match e {
            Expr::Const(_) | Expr::Var(_) => e.clone(),
            Expr::Unary(op, a) => Expr::unary(*op, walk(a, f, done)),
            Expr::Binary(op, a, b) => {
                let left = walk(a, f, done);
                let right = walk(b, f, done);
                Expr::binary(*op, left, right)
            }
        }
    }
    let mut done = false;
    walk(e, f, &mut done)
}

/// Simplicity score: MBA alternation dominates (it is the paper's
/// solving-difficulty driver), then AST size, then printed length.
fn score(e: &Expr) -> (usize, usize, usize) {
    (
        metrics::alternation(e),
        e.node_count(),
        e.to_string().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn simplify(src: &str) -> String {
        Simplifier::new().simplify(&src.parse().unwrap()).to_string()
    }

    #[track_caller]
    fn assert_equiv(src: &str, expected: &str) {
        let got = simplify(src);
        assert_eq!(got, expected, "simplifying `{src}`");
    }

    // ------------------------------------------------------------------
    // Linear MBA (§4.1–§4.3).
    // ------------------------------------------------------------------

    #[test]
    fn paper_running_example() {
        assert_equiv("2*(x|y) - (~x&y) - (x&~y)", "x+y");
    }

    #[test]
    fn example_1_identity() {
        // x − y == (x⊕y) + 2(x∨¬y) + 2 (derived in §2.1 Example 1).
        assert_equiv("(x^y) + 2*(x|~y) + 2", "x-y");
    }

    #[test]
    fn hackers_delight_addition_encodings() {
        for src in [
            "(x|y) + (~x|y) - ~x",
            "(x|y) + y - (~x&y)",
            "(x^y) + 2*y - 2*(~x&y)",
            "y + (x&~y) + (x&y)",
        ] {
            assert_equiv(src, "x+y");
        }
    }

    #[test]
    fn final_step_recovers_single_bitwise_ops() {
        assert_equiv("x + y - 2*(x&y)", "x^y");
        assert_equiv("x + y - (x&y)", "x|y");
        assert_equiv("(x|y) - (x&y)", "x^y");
        // ¬x = −x−1 folds back to the bitwise form.
        assert_equiv("-x - 1", "~x");
    }

    #[test]
    fn constants_fold() {
        assert_equiv("3 + 4", "7");
        assert_equiv("x + 2 - 2", "x");
        assert_equiv("(x&~x) + 5", "5");
        assert_equiv("x ^ x", "0");
        assert_equiv("x & x", "x");
    }

    // ------------------------------------------------------------------
    // Polynomial MBA (§4.4).
    // ------------------------------------------------------------------

    #[test]
    fn figure_1_poly_reduces_to_xy() {
        assert_equiv("(x&~y)*(~x&y) + (x&y)*(x|y)", "x*y");
    }

    #[test]
    fn squared_xor_identity_proved_by_polynomials() {
        // (x⊕y)² = (x∨y)² − 2(x∨y)(x∧y) + (x∧y)²: both sides expand to
        // the same canonical polynomial over {x, y, x∧y}.
        let s = Simplifier::new();
        let lhs: Expr = "(x^y)*(x^y)".parse().unwrap();
        let rhs: Expr = "(x|y)*(x|y) - 2*((x|y)*(x&y)) + (x&y)*(x&y)"
            .parse()
            .unwrap();
        assert_eq!(s.proves_equivalent(&lhs, &rhs), Some(true));
        // The polynomial certificate is one-sided: unequal polys do not
        // disprove equivalence.
        let unrelated: Expr = "x + 1".parse().unwrap();
        assert_eq!(s.proves_equivalent(&lhs, &unrelated), Some(false));
    }

    #[test]
    fn rejected_expansion_still_cleans_subterms() {
        // (x∧y)·(x∨y) = x·y is a *relation between atoms* the polynomial
        // view cannot witness, so the product is kept — but the
        // structural pass still folds the trailing `+ 0`.
        assert_equiv("(x&y)*(x|y) + 0", "(x&y)*(x|y)");
        // The relation is visible to the polynomial certificate when the
        // left side is written in basis form, though:
        let s = Simplifier::new();
        let a: Expr = "(x&y)*(x + y - (x&y))".parse().unwrap();
        let b: Expr = "x*y - (x - (x&y))*(y - (x&y))".parse().unwrap();
        assert_eq!(s.proves_equivalent(&a, &b), Some(true));
    }

    // ------------------------------------------------------------------
    // Non-polynomial MBA (§4.4–§4.5).
    // ------------------------------------------------------------------

    #[test]
    fn section_4_5_common_subexpression_example() {
        assert_equiv(
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
            "x-y+z",
        );
    }

    #[test]
    fn not_of_arithmetic_reduces() {
        // ¬(x−1) = −x: the case §6.1 reports MBA-Solver's prototype
        // missing; the opaque-abstraction pipeline handles it.
        assert_equiv("~(x - 1)", "-x");
        assert_equiv("~(x + y)", "-x-y-1");
    }

    #[test]
    fn nonpoly_with_shared_opaque_term() {
        // (t|z) + (t&z) = t + z with t = x*y (a genuinely opaque term).
        assert_equiv("(x*y | z) + (x*y & z)", "x*y+z");
    }

    #[test]
    fn xor_of_equal_arithmetic_is_zero() {
        assert_equiv("(x+y) ^ (x+y)", "0");
        assert_equiv("(x+y) & (x+y)", "x+y");
        assert_equiv("(x*y) | (x*y)", "x*y");
    }

    // ------------------------------------------------------------------
    // Robustness and semantics preservation.
    // ------------------------------------------------------------------

    #[test]
    fn never_worse_than_input() {
        let s = Simplifier::new();
        for src in [
            "x",
            "x*y*z",
            "(x-y)|((z*z)^~x)",
            "~(~(~x))",
            "x & 3",
        ] {
            let e: Expr = src.parse().unwrap();
            let out = s.simplify(&e);
            assert!(
                score(&out) <= score(&e),
                "simplify made `{src}` worse: `{out}`"
            );
        }
    }

    #[test]
    fn semantics_preserved_on_random_inputs() {
        let s = Simplifier::new();
        let cases = [
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x&~y)*(~x&y) + (x&y)*(x|y)",
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
            "~(x - 1)",
            "(x*y | z) + (x*y & z)",
            "x + y - 2*(x&y)",
            "x & 3",
            "~0",
            "(x ^ y ^ z) * (x & y & z) - 17",
        ];
        let inputs = [
            (0u64, 0u64, 0u64),
            (1, 2, 3),
            (u64::MAX, 1, 0x1234_5678),
            (0xdead_beef_dead_beef, 0xfeed_face_cafe_f00d, 42),
        ];
        for src in cases {
            let e: Expr = src.parse().unwrap();
            let out = s.simplify(&e);
            for &(x, y, z) in &inputs {
                let v = Valuation::new().with("x", x).with("y", y).with("z", z);
                for w in [8u32, 32, 64] {
                    assert_eq!(
                        e.eval(&v, w),
                        out.eval(&v, w),
                        "`{src}` -> `{out}` differs at ({x},{y},{z}) width {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn stage_spans_and_result_counters_populate() {
        let s = Simplifier::new();
        let d = s.simplify_detailed(&"2*(x|y) - (~x&y) - (x&~y)".parse().unwrap());
        assert_eq!(d.output.to_string(), "x+y");
        // A polynomial input still exercises the truth-table route (the
        // linear input above is claimed by the simba fast path).
        s.simplify(&"x*y + 2*(x&y)".parse().unwrap());
        let snap = s.metrics().snapshot();
        assert_eq!(snap.counter("core.result.exprs"), 2);
        assert_eq!(snap.counter("core.result.bailouts"), 0);
        assert!(snap.counter("core.result.rounds") >= d.rounds as u64);
        assert_eq!(snap.counter("core.result.class.linear"), 1);
        assert_eq!(snap.counter("core.result.class.poly"), 1);
        // Every pipeline stage ran at least once across the two inputs,
        // including the corner-recovery fast path.
        for stage in [
            "core.stage.signature.micros",
            "core.stage.basis.micros",
            "core.stage.simba.micros",
            "core.stage.poly_reduce.micros",
            "core.stage.rewrite.micros",
            "core.stage.final_fold.micros",
            "core.stage.synth.micros",
        ] {
            let h = snap.histogram(stage).unwrap_or_else(|| {
                panic!("{stage} never recorded")
            });
            assert!(h.count > 0, "{stage} never recorded");
        }
    }

    #[test]
    fn shared_registry_aggregates_across_simplifiers() {
        let obs = Arc::new(MetricsRegistry::new());
        let cache = Arc::new(mba_sig::SigCache::new());
        let a = Simplifier::with_metrics(
            SimplifyConfig::default(),
            Arc::clone(&cache),
            Arc::clone(&obs),
        );
        let b = Simplifier::with_metrics(
            SimplifyConfig::default(),
            Arc::clone(&cache),
            Arc::clone(&obs),
        );
        a.simplify(&"x + y - (x&y)".parse().unwrap());
        b.simplify(&"x + y - 2*(x&y)".parse().unwrap());
        assert_eq!(obs.snapshot().counter("core.result.exprs"), 2);
    }

    #[test]
    fn cache_hits_accumulate() {
        let s = Simplifier::new();
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        s.simplify(&e);
        let misses_first = s.cache_stats().misses;
        s.simplify(&e);
        let stats = s.cache_stats();
        assert!(stats.hits > 0, "second run must hit the lookup table");
        assert!(misses_first > 0);
        assert!(stats.hit_rate() > 0.0);
        assert_eq!(stats.lookups(), stats.hits + stats.misses);
        s.clear_cache();
        assert_eq!(s.cache_stats(), CacheStats::default());
    }

    #[test]
    fn cache_can_be_disabled() {
        let s = Simplifier::with_config(SimplifyConfig {
            use_cache: false,
            ..SimplifyConfig::default()
        });
        let e: Expr = "x + y - 2*(x&y)".parse().unwrap();
        assert_eq!(s.simplify(&e).to_string(), "x^y");
        assert_eq!(s.cache_stats(), CacheStats::default());
    }

    #[test]
    fn batch_jobs_zero_one_and_many_are_byte_identical() {
        // `jobs == 0` resolves to available parallelism; any worker
        // count must leave outputs unchanged (input order, byte-level).
        let exprs: Vec<Expr> = [
            "2*(x|y) - (~x&y) - (x&~y)",
            "x + y - 2*(x&y)",
            "(x&~y)*(~x&y) + (x&y)*(x|y)",
            "~(x - 1)",
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x*y | z) + (x*y & z)",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let reference: Vec<String> = {
            let s = Simplifier::new();
            exprs.iter().map(|e| s.simplify(e).to_string()).collect()
        };
        for jobs in [0usize, 1, 64] {
            let s = Simplifier::new();
            let got: Vec<String> = s
                .simplify_batch_with_jobs(&exprs, jobs)
                .iter()
                .map(|r| r.output.to_string())
                .collect();
            assert_eq!(got, reference, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn final_step_can_be_disabled() {
        let s = Simplifier::with_config(SimplifyConfig {
            final_step: false,
            ..SimplifyConfig::default()
        });
        let e: Expr = "x + y - 2*(x&y)".parse().unwrap();
        // Without the final step the ∧-basis form is already normal.
        assert_eq!(s.simplify(&e).to_string(), "x+y-2*(x&y)");
    }

    #[test]
    fn adaptive_basis_never_loses_to_and_basis() {
        let and_solver = Simplifier::new();
        let adaptive = Simplifier::with_config(SimplifyConfig {
            basis: Basis::Adaptive,
            ..SimplifyConfig::default()
        });
        for src in [
            "2*(x|y) - (~x&y) - (x&~y)",
            "x + y - (x&y)",
            "(x&~y)*(~x&y) + (x&y)*(x|y)",
            "~(x - 1)",
            "3*(x|~y) - 5*(~x&y) + 2*(x^y)",
        ] {
            let e: Expr = src.parse().unwrap();
            let a = and_solver.simplify(&e);
            let ad = adaptive.simplify(&e);
            let s = |e: &Expr| {
                (metrics::alternation(e), e.node_count(), e.to_string().len())
            };
            assert!(s(&ad) <= s(&a), "adaptive lost on {src}: {ad} vs {a}");
            // Still semantically equal.
            let v = Valuation::new().with("x", 1234).with("y", 77);
            assert_eq!(a.eval(&v, 64), ad.eval(&v, 64), "{src}");
        }
    }

    #[test]
    fn or_basis_produces_equivalent_results() {
        let s = Simplifier::with_config(SimplifyConfig {
            basis: Basis::Or,
            ..SimplifyConfig::default()
        });
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        let out = s.simplify(&e);
        let v = Valuation::new().with("x", 77).with("y", 13);
        assert_eq!(out.eval(&v, 64), 90);
    }

    #[test]
    fn detailed_reporting() {
        let s = Simplifier::new();
        let e: Expr = "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)"
            .parse()
            .unwrap();
        let d = s.simplify_detailed(&e);
        assert_eq!(d.output.to_string(), "x-y+z");
        assert!(d.rounds >= 1);
        assert!(!d.bailed);
        assert!(d.output_metrics.alternation < d.input_metrics.alternation);
    }

    #[test]
    fn injected_bugs_corrupt_deterministically() {
        // Fault injection is for the verify subsystem's self-tests: it
        // must actually break semantics, identically on repeat runs.
        for (bug, src) in [
            (InjectedBug::OrToXor, "x | y"),
            (InjectedBug::AddToOr, "x + y"),
            (InjectedBug::OffByOne, "x"),
            // SimbaCoeffFlip zeroes the first recovered coefficient
            // inside the linear fast path, so `x` collapses to `0`.
            (InjectedBug::SimbaCoeffFlip, "x"),
            // ArenaStaleId swaps the interned root for its first child
            // inside the arena-keyed fast path, so `x + y` collapses to
            // `x` (6 ≠ 3 at the probe valuation below).
            (InjectedBug::ArenaStaleId, "x + y"),
            // SynthUnsoundAccept skips the synthesis tier's probe
            // checks, so this parity-obfuscated addition comes back as
            // the width-1 collision `x^y` (0 ≠ 6 at x=y=3).
            (InjectedBug::SynthUnsoundAccept, "x + y + ((x*(x+1)) & 1)"),
            // BddComplementFlip complements the root edge of the BDD
            // tier's diagram, so this 13-variable negated disjunction
            // (too wide for any 2^t-row tier) comes back as the plain
            // disjunction — and the flipped render scores *better* than
            // the input, so the corruption survives the score guard
            // (252 ≠ 3 at the probe valuation, unbound vars reading 0).
            (
                InjectedBug::BddComplementFlip,
                "~(x | y | z | w | a | b | c | d | e | f | g | h | i)",
            ),
        ] {
            let broken = Simplifier::with_config(SimplifyConfig {
                injected_bug: Some(bug),
                ..SimplifyConfig::default()
            });
            let e: Expr = src.parse().unwrap();
            let a = broken.simplify(&e);
            let b = broken.simplify(&e);
            assert_eq!(a, b, "{bug:?} must be deterministic");
            let v = Valuation::new().with("x", 3).with("y", 3);
            assert_ne!(
                e.eval(&v, 8),
                a.eval(&v, 8),
                "{bug:?} failed to corrupt `{src}` -> `{a}`"
            );
        }
    }

    // ------------------------------------------------------------------
    // The SiMBA fast path and the semi-linear tier.
    // ------------------------------------------------------------------

    /// The linear fast path recovers coefficients from corner
    /// evaluations but expands them through the same ∧-basis renderer,
    /// so disabling it must not change a single output byte.
    #[test]
    fn fast_path_off_is_byte_identical() {
        let on = Simplifier::new();
        let off = Simplifier::with_config(SimplifyConfig {
            use_simba: false,
            ..SimplifyConfig::default()
        });
        for src in [
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x^y) + 2*(x|~y) + 2",
            "x + 2*y + (x&y) - 3*(x^y) + 4",
            "(x & 240) + (x & ~240)",
            "(x | 5) + (x & 5)",
            "x*y + 2*(x&y)",
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
            "-(3*(x&y)) + 200*x",
        ] {
            let e: Expr = src.parse().unwrap();
            assert_eq!(
                on.simplify(&e).to_string(),
                off.simplify(&e).to_string(),
                "fast path changed output bytes for `{src}`"
            );
        }
    }

    /// The arena routes classification, corner recovery, and signature
    /// extraction through interned node ids, but every id-level port is
    /// tape- and table-identical to its tree-walking twin — so turning
    /// the arena off must not change a single output byte.
    #[test]
    fn arena_off_is_byte_identical() {
        let on = Simplifier::new();
        let off = Simplifier::with_config(SimplifyConfig {
            use_arena: false,
            ..SimplifyConfig::default()
        });
        for src in [
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x^y) + 2*(x|~y) + 2",
            "x + 2*y + (x&y) - 3*(x^y) + 4",
            "(x & 240) + (x & ~240)",
            "(x | 5) + (x & 5)",
            "x*y + 2*(x&y)",
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
            "-(3*(x&y)) + 200*x",
            "~(x - 1)",
        ] {
            let e: Expr = src.parse().unwrap();
            assert_eq!(
                on.simplify(&e).to_string(),
                off.simplify(&e).to_string(),
                "arena changed output bytes for `{src}`"
            );
        }
        // The arena-on run actually interned something; the off run's
        // arena stayed empty.
        assert!(!on.arena().is_empty(), "arena-on run never interned");
        assert_eq!(off.arena().len(), 0, "arena-off run interned");
    }

    /// At or below the truth-table variable cap the BDD tier never
    /// fires, so turning it off must not change a single output byte —
    /// and the result reports neither a BDD firing nor a skip.
    #[test]
    fn bdd_off_is_byte_identical() {
        let on = Simplifier::new();
        let off = Simplifier::with_config(SimplifyConfig {
            use_bdd: false,
            ..SimplifyConfig::default()
        });
        for src in [
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x^y) + 2*(x|~y) + 2",
            "x + 2*y + (x&y) - 3*(x^y) + 4",
            "(x & 240) + (x & ~240)",
            "x*y + 2*(x&y)",
            "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
            "(a&b&c&d&e&f) + (a|b) - (a|b)",
        ] {
            let e: Expr = src.parse().unwrap();
            let d_on = on.simplify_detailed(&e);
            let d_off = off.simplify_detailed(&e);
            assert!(!d_on.used_bdd, "BDD fired below the cap for `{src}`");
            assert!(d_on.skipped.is_none(), "spurious skip for `{src}`");
            assert_eq!(
                d_on.output.to_string(),
                d_off.output.to_string(),
                "BDD toggle changed output bytes for `{src}`"
            );
        }
    }

    /// Semi-linear identities from the worked examples (arXiv
    /// 2406.10016 §3): constants inside the bitwise layer reduce via
    /// grouped corner recovery.
    #[test]
    fn semi_linear_identities_reduce() {
        for (src, want) in [
            ("(x & 240) + (x & ~240)", "x"),
            ("(x | 5) + (x & 5)", "x+5"),
            ("(x ^ 85) ^ 85", "x"),
            ("(x | 3) - 3", "x&-4"),
            ("(x & 12) + ~(x & 12)", "-1"),
            ("(x & 3) + (x & 12) + (x & ~15)", "x"),
        ] {
            let e: Expr = src.parse().unwrap();
            let out = Simplifier::new().simplify(&e);
            assert_eq!(out.to_string(), want, "simplifying `{src}`");
            // The reduction must be an identity at every width.
            for (x, y) in [(0u64, 0u64), (3, 5), (255, 1), (u64::MAX, 77), (0x1234_5678, 42)] {
                let v = Valuation::new().with("x", x).with("y", y);
                for w in [8u32, 16, 32, 64] {
                    assert_eq!(e.eval(&v, w), out.eval(&v, w), "`{src}` at width {w}");
                }
            }
        }
    }

    /// Shapes reclassified from non-poly to semi-linear must come out
    /// unchanged or strictly simpler — never worse.
    #[test]
    fn reclassified_shapes_never_get_worse() {
        for src in [
            "x & 3",
            "(x | 5) - y",
            "2*(x ^ 7) + (x & y)",
            "~(x & 12) + 4*y",
            "(x ^ 85) | (y & 10)",
        ] {
            let e: Expr = src.parse().unwrap();
            let d = Simplifier::new().simplify_detailed(&e);
            assert!(
                d.output.node_count() <= e.node_count(),
                "`{src}` got worse: `{}`",
                d.output
            );
            for (x, y) in [(0u64, 0u64), (3, 5), (255, 1), (u64::MAX, 77)] {
                let v = Valuation::new().with("x", x).with("y", y);
                for w in [8u32, 32, 64] {
                    assert_eq!(e.eval(&v, w), d.output.eval(&v, w), "`{src}` at width {w}");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The enumerative synthesis tier.
    // ------------------------------------------------------------------

    /// The flagship residual family: a parity opaque zero
    /// `(q*(q+1)) & 1 ≡ 0` needs mod-2 reasoning the algebraic tiers
    /// lack, so the pipeline leaves it standing — and the synthesis
    /// tier recovers the ground truth behind it.
    #[test]
    fn synthesis_recovers_parity_obfuscated_ground_truth() {
        let s = Simplifier::new();
        for (src, want) in [
            ("x + y + ((x*(x+1)) & 1)", "x+y"),
            ("(x & y) ^ (((x+y)*(x+y+1)) & 1)", "x&y"),
            ("x - y + ((y*(y+1)) & 1)", "x-y"),
        ] {
            let e: Expr = src.parse().unwrap();
            let d = s.simplify_detailed(&e);
            assert_eq!(d.output.to_string(), want, "simplifying `{src}`");
            assert_eq!(d.tier, SimplifyTier::Synthesis, "`{src}`");
            // The substitution is an identity at every width.
            for (x, y) in [(0u64, 0u64), (3, 5), (u64::MAX, 77), (0x1234, 42)] {
                let v = Valuation::new().with("x", x).with("y", y);
                for w in [1u32, 8, 32, 64] {
                    assert_eq!(e.eval(&v, w), d.output.eval(&v, w), "`{src}` width {w}");
                }
            }
        }
    }

    /// When the synthesis tier rejects (no strictly smaller verified
    /// equivalent), outputs with the tier off must be byte-identical —
    /// the tier is never result-changing on rejection.
    #[test]
    fn synthesis_off_is_byte_identical_when_rejecting() {
        let on = Simplifier::new();
        let off = Simplifier::with_config(SimplifyConfig {
            use_synthesis: false,
            ..SimplifyConfig::default()
        });
        for src in [
            "x*y + 2*(x&y)",
            "(x&y)*(x|y)",
            "x*y*z",
            "(x-y)|((z*z)^~x)",
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x | 5) + (x & 5)",
            "~(x - 1)",
        ] {
            let e: Expr = src.parse().unwrap();
            let a = on.simplify_detailed(&e);
            let b = off.simplify_detailed(&e);
            assert_ne!(a.tier, SimplifyTier::Synthesis, "`{src}` unexpectedly accepted");
            assert_eq!(
                a.output.to_string(),
                b.output.to_string(),
                "synthesis changed output bytes for `{src}` despite rejecting"
            );
        }
    }

    /// Tier tags are derived deterministically from who claimed the
    /// result.
    #[test]
    fn tier_tags_name_the_claiming_tier() {
        let s = Simplifier::new();
        for (src, want) in [
            ("2*(x|y) - (~x&y) - (x&~y)", SimplifyTier::Linear),
            ("(x | 5) + (x & 5)", SimplifyTier::SemiLinear),
            ("(x&~y)*(~x&y) + (x&y)*(x|y)", SimplifyTier::Poly),
            ("x + y + ((x*(x+1)) & 1)", SimplifyTier::Synthesis),
            ("x*y", SimplifyTier::Unchanged),
        ] {
            let e: Expr = src.parse().unwrap();
            let d = s.simplify_detailed(&e);
            assert_eq!(d.tier, want, "`{src}` -> `{}`", d.output);
        }
        assert_eq!(SimplifyTier::SemiLinear.to_string(), "semi-linear");
        assert_eq!(SimplifyTier::Synthesis.to_string(), "synthesis");
    }

    /// Batch workers share one synthesis engine; outputs (and tiers)
    /// stay byte-identical at any worker count even when the tier
    /// fires.
    #[test]
    fn synthesis_batch_jobs_are_byte_identical() {
        let exprs: Vec<Expr> = [
            "x + y + ((x*(x+1)) & 1)",
            "x*y + 2*(x&y)",
            "(x & y) ^ (((x+y)*(x+y+1)) & 1)",
            "x - y + ((y*(y+1)) & 1)",
            "(x&y)*(x|y)",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let reference: Vec<(String, SimplifyTier)> = {
            let s = Simplifier::new();
            exprs
                .iter()
                .map(|e| {
                    let d = s.simplify_detailed(e);
                    (d.output.to_string(), d.tier)
                })
                .collect()
        };
        for jobs in [0usize, 1, 64] {
            let s = Simplifier::new();
            let got: Vec<(String, SimplifyTier)> = s
                .simplify_batch_with_jobs(&exprs, jobs)
                .iter()
                .map(|r| (r.output.to_string(), r.tier))
                .collect();
            assert_eq!(got, reference, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn six_variable_linear_mba() {
        // Comfortably inside the truth-table tier's 12-variable cap.
        let e: Expr = "(a&b&c&d&e&f) + (a|b) - (a|b)".parse().unwrap();
        assert_eq!(Simplifier::new().simplify(&e).to_string(), "a&b&c&d&e&f");
    }

    #[test]
    fn seven_variable_bitwise_folds_additive_noise() {
        // Seven variables still fit the truth-table tier (cap 12): the
        // `+ 0` folds away and the conjunction itself survives exactly.
        let e: Expr = "(a&b&c&d&e&f&g) + 0".parse().unwrap();
        let out = Simplifier::new().simplify(&e);
        let v: Valuation = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|n| (mba_expr::Ident::new(*n), u64::MAX))
            .collect();
        assert_eq!(out.eval(&v, 64), u64::MAX);
    }
}
