//! Exact multivariate polynomial arithmetic over expression atoms —
//! the "ArithReduce" step of Algorithm 1.
//!
//! Atoms are opaque expressions (variables, normalized `∧`-terms, or
//! abstracted subtrees); a monomial is a multiset of atoms (multiplication
//! of bitwise expressions is *not* idempotent on words: `(x∧y)² ≠ x∧y`),
//! and coefficients live in the two's-complement ring `Z/2^w` with
//! symmetric representatives.

use std::collections::BTreeMap;
use std::fmt;

use mba_expr::{BinOp, Expr};
use mba_sig::linear_combination;

/// A monomial: atoms in sorted order, with multiplicity.
pub type Monomial = Vec<Expr>;

/// A polynomial with `i128` coefficients (reduced symmetrically modulo
/// `2^width`) over expression atoms.
///
/// ```
/// use mba_solver::Poly;
/// use mba_expr::Expr;
/// let x = Poly::atom(Expr::var("x"), 64);
/// let y = Poly::atom(Expr::var("y"), 64);
/// // (x + y)·(x − y) = x² − y²
/// let p = x.clone().add(&y).mul(&x.sub(&y)).unwrap();
/// assert_eq!(p.to_expr().to_string(), "x*x-y*y");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    width: u32,
    terms: BTreeMap<Monomial, i128>,
}

/// Default cap on distinct monomials during multiplication; prevents
/// exponential blow-up on adversarial inputs (the simplifier then bails
/// out and keeps the original expression).
pub const DEFAULT_MONOMIAL_CAP: usize = 4096;

/// Reduces `v` to the symmetric representative modulo `2^width`
/// (in `[-2^(width-1), 2^(width-1))`).
fn reduce(v: i128, width: u32) -> i128 {
    debug_assert!((1..=64).contains(&width));
    let modulus = 1i128 << width;
    let half = modulus >> 1;
    let mut r = v.rem_euclid(modulus);
    if r >= half {
        r -= modulus;
    }
    r
}

impl Poly {
    /// The zero polynomial.
    pub fn zero(width: u32) -> Poly {
        Poly {
            width,
            terms: BTreeMap::new(),
        }
    }

    /// A constant polynomial.
    pub fn constant(c: i128, width: u32) -> Poly {
        let mut p = Poly::zero(width);
        p.add_term(Vec::new(), c);
        p
    }

    /// The polynomial consisting of a single atom with coefficient 1.
    pub fn atom(e: Expr, width: u32) -> Poly {
        let mut p = Poly::zero(width);
        p.add_term(vec![e], 1);
        p
    }

    /// Bit width governing coefficient reduction.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether the polynomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of (non-zero) monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The total degree (0 for constants and the zero polynomial).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(Vec::len).max().unwrap_or(0)
    }

    /// The coefficient of a monomial (0 when absent). Atoms must be given
    /// in sorted order.
    pub fn coefficient(&self, monomial: &[Expr]) -> i128 {
        self.terms.get(monomial).copied().unwrap_or(0)
    }

    /// Iterates over `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, i128)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Adds `coef · monomial` in place; `monomial` is sorted internally
    /// and zero results are pruned.
    pub fn add_term(&mut self, mut monomial: Monomial, coef: i128) {
        use std::collections::btree_map::Entry;
        monomial.sort();
        let c = reduce(coef, self.width);
        match self.terms.entry(monomial) {
            Entry::Occupied(mut slot) => {
                let v = reduce(slot.get().wrapping_add(c), self.width);
                if v == 0 {
                    slot.remove();
                } else {
                    *slot.get_mut() = v;
                }
            }
            Entry::Vacant(slot) => {
                if c != 0 {
                    slot.insert(c);
                }
            }
        }
    }

    /// `self + other`.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = self.clone();
        for (m, c) in other.iter() {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    #[must_use]
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// `-self`.
    #[must_use]
    pub fn neg(&self) -> Poly {
        let mut out = Poly::zero(self.width);
        for (m, c) in self.iter() {
            out.add_term(m.clone(), c.wrapping_neg());
        }
        out
    }

    /// `self · other`, or `None` when the product would exceed
    /// [`DEFAULT_MONOMIAL_CAP`] distinct monomials.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn mul(&self, other: &Poly) -> Option<Poly> {
        self.mul_capped(other, DEFAULT_MONOMIAL_CAP)
    }

    /// `self · other` with an explicit monomial cap.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn mul_capped(&self, other: &Poly, cap: usize) -> Option<Poly> {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = Poly::zero(self.width);
        for (ma, ca) in self.iter() {
            for (mb, cb) in other.iter() {
                let mut m = ma.clone();
                m.extend(mb.iter().cloned());
                out.add_term(m, ca.wrapping_mul(cb));
                if out.terms.len() > cap {
                    return None;
                }
            }
        }
        Some(out)
    }

    /// Scales every coefficient.
    #[must_use]
    pub fn scale(&self, factor: i128) -> Poly {
        let mut out = Poly::zero(self.width);
        for (m, c) in self.iter() {
            out.add_term(m.clone(), c.wrapping_mul(factor));
        }
        out
    }

    /// Renders the polynomial back into an expression: monomials in
    /// descending degree, ties broken by atom order, constant last.
    ///
    /// The zero polynomial renders as `0`.
    pub fn to_expr(&self) -> Expr {
        let mut monomials: Vec<(&Monomial, i128)> = self.iter().collect();
        monomials.sort_by(|(ma, _), (mb, _)| {
            mb.len().cmp(&ma.len()).then_with(|| ma.cmp(mb))
        });
        let terms: Vec<(i128, Expr)> = monomials
            .into_iter()
            .map(|(m, c)| (c, product_of(m)))
            .collect();
        linear_combination(&terms)
    }
}

/// The product expression of a monomial; the empty monomial is `1`.
fn product_of(monomial: &[Expr]) -> Expr {
    let mut iter = monomial.iter();
    let Some(first) = iter.next() else {
        return Expr::one();
    };
    iter.fold(first.clone(), |acc, e| {
        Expr::binary(BinOp::Mul, acc, e.clone())
    })
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn atom(name: &str) -> Poly {
        Poly::atom(Expr::var(name), 64)
    }

    #[test]
    fn zero_and_constants() {
        assert!(Poly::zero(64).is_zero());
        assert_eq!(Poly::constant(0, 64), Poly::zero(64));
        assert_eq!(Poly::constant(7, 64).to_expr(), Expr::Const(7));
        assert_eq!(Poly::zero(64).to_expr(), Expr::Const(0));
    }

    #[test]
    fn addition_collects_like_terms() {
        let p = atom("x").add(&atom("x"));
        assert_eq!(p.to_expr().to_string(), "2*x");
        let q = p.sub(&atom("x").scale(2));
        assert!(q.is_zero());
    }

    #[test]
    fn multiplication_expands() {
        let x = atom("x");
        let y = atom("y");
        // (x + y)² = x² + 2xy + y²
        let p = x.add(&y);
        let sq = p.mul(&p).unwrap();
        assert_eq!(sq.num_terms(), 3);
        assert_eq!(sq.coefficient(&[Expr::var("x"), Expr::var("x")]), 1);
        assert_eq!(sq.coefficient(&[Expr::var("x"), Expr::var("y")]), 2);
        assert_eq!(sq.coefficient(&[Expr::var("y"), Expr::var("y")]), 1);
        assert_eq!(sq.degree(), 2);
    }

    #[test]
    fn figure_1_cancellation() {
        // (x − a)(y − a) + a(x + y − a) = xy where a stands for x∧y.
        let (x, y, a) = (atom("x"), atom("y"), atom("a"));
        let p = x
            .sub(&a)
            .mul(&y.sub(&a))
            .unwrap()
            .add(&a.mul(&x.add(&y).sub(&a)).unwrap());
        assert_eq!(p.to_expr().to_string(), "x*y");
    }

    #[test]
    fn monomials_are_multisets_not_sets() {
        let a = atom("a");
        let sq = a.mul(&a).unwrap();
        assert_eq!(sq.to_expr().to_string(), "a*a");
        assert_eq!(sq.degree(), 2);
        // a·a ≠ a: they are distinct monomials.
        assert!(!sq.sub(&a).is_zero());
    }

    #[test]
    fn coefficients_reduce_symmetrically() {
        // Width 8: 200 ≡ -56 (mod 256).
        let p = Poly::constant(200, 8);
        assert_eq!(p.coefficient(&[]), -56);
        // 128 maps to -128 (symmetric range is [-128, 128)).
        assert_eq!(Poly::constant(128, 8).coefficient(&[]), -128);
        // Width-8 multiplication wraps: 16 * 16 = 256 ≡ 0.
        let q = Poly::constant(16, 8).mul(&Poly::constant(16, 8)).unwrap();
        assert!(q.is_zero());
    }

    #[test]
    fn mul_cap_triggers_bailout() {
        // (a0 + ... + a9)² has 55 distinct monomials; a cap of 40 must
        // bail while a loose cap succeeds.
        let sum = (0..10).fold(Poly::zero(64), |acc, i| {
            acc.add(&atom(&format!("a{i}")))
        });
        assert!(sum.mul_capped(&sum, 40).is_none());
        assert_eq!(sum.mul_capped(&sum, 100).unwrap().num_terms(), 55);
    }

    #[test]
    fn rendering_order_is_degree_major() {
        let p = Poly::constant(3, 64)
            .add(&atom("x"))
            .add(&atom("x").mul(&atom("y")).unwrap());
        assert_eq!(p.to_expr().to_string(), "x*y+x+3");
    }

    #[test]
    fn rendered_expression_evaluates_like_the_polynomial() {
        let x = atom("x");
        let y = atom("y");
        let p = x.mul(&y).unwrap().sub(&y.scale(3)).add(&Poly::constant(9, 64));
        let e = p.to_expr();
        let v = Valuation::new().with("x", 11).with("y", 5);
        assert_eq!(e.eval(&v, 64), (11 * 5 - 3 * 5 + 9) as u64);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Poly::constant(1, 8).add(&Poly::constant(1, 16));
    }
}
