//! `mba-simplify`: command-line MBA simplification.
//!
//! Reads MBA expressions (arguments, or stdin one per line) and prints
//! the simplified form. With `--verbose`, also prints the category, the
//! alternation reduction, and the tier that produced the result
//! (`linear`, `semi-linear`, `poly`, `synthesis`, or `unchanged`).
//!
//! ```text
//! $ mba_simplify '2*(x|y) - (~x&y) - (x&~y)'
//! x+y
//! $ echo '(x&~y)*(~x&y) + (x&y)*(x|y)' | mba_simplify --verbose
//! x*y    [poly, alternation 2 -> 0, 1 rounds, tier poly]
//! ```

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use mba_expr::Expr;
use mba_solver::{Simplifier, SimplifyConfig};

fn main() -> ExitCode {
    let mut verbose = false;
    let mut jobs: Option<usize> = None;
    let mut use_cache = true;
    let mut use_synthesis = true;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--jobs" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n > 0 => jobs = Some(n),
                    _ => {
                        eprintln!("mba_simplify: --jobs requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--no-cache" => use_cache = false,
            "--no-synthesis" => use_synthesis = false,
            "--help" | "-h" => {
                eprintln!(
                    "usage: mba_simplify [--verbose] [--jobs N] [--no-cache] [--no-synthesis] [EXPR ...]"
                );
                eprintln!("reads expressions from stdin when no EXPR is given");
                eprintln!("  --jobs N         simplify inputs on N parallel workers");
                eprintln!("  --no-cache       disable the lookup table and signature cache");
                eprintln!("  --no-synthesis   disable the enumerative synthesis tier");
                return ExitCode::SUCCESS;
            }
            other => inputs.push(other.to_string()),
        }
    }
    if inputs.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if !l.trim().is_empty() => inputs.push(l),
                Ok(_) => {}
                Err(e) => {
                    eprintln!("mba_simplify: read error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let simplifier = Simplifier::with_config(SimplifyConfig {
        use_cache,
        use_synthesis,
        ..SimplifyConfig::default()
    });
    // Parse everything first (reporting failures as they appear), then
    // simplify the parseable inputs as one batch so `--jobs` can fan
    // out; stdout order still follows input order.
    let mut failed = false;
    let mut exprs: Vec<Expr> = Vec::new();
    for input in &inputs {
        match input.parse::<Expr>() {
            Ok(e) => exprs.push(e),
            Err(err) => {
                eprintln!("mba_simplify: cannot parse `{input}`: {err}");
                failed = true;
            }
        }
    }
    let results = match jobs {
        Some(n) => simplifier.simplify_batch_with_jobs(&exprs, n),
        None => simplifier.simplify_batch(&exprs),
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for d in &results {
        if verbose {
            let _ = writeln!(
                out,
                "{}    [{}, alternation {} -> {}, {} rounds, tier {}]",
                d.output,
                d.input_metrics.class,
                d.input_metrics.alternation,
                d.output_metrics.alternation,
                d.rounds,
                d.tier
            );
        } else {
            let _ = writeln!(out, "{}", d.output);
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
