//! `mba-simplify`: command-line MBA simplification.
//!
//! Reads MBA expressions (arguments, or stdin one per line) and prints
//! the simplified form. With `--verbose`, also prints the category and
//! the alternation reduction.
//!
//! ```text
//! $ mba_simplify '2*(x|y) - (~x&y) - (x&~y)'
//! x+y
//! $ echo '(x&~y)*(~x&y) + (x&y)*(x|y)' | mba_simplify --verbose
//! x*y    [poly, alternation 2 -> 0, 1 rounds]
//! ```

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use mba_expr::Expr;
use mba_solver::Simplifier;

fn main() -> ExitCode {
    let mut verbose = false;
    let mut inputs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                eprintln!("usage: mba_simplify [--verbose] [EXPR ...]");
                eprintln!("reads expressions from stdin when no EXPR is given");
                return ExitCode::SUCCESS;
            }
            other => inputs.push(other.to_string()),
        }
    }
    if inputs.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if !l.trim().is_empty() => inputs.push(l),
                Ok(_) => {}
                Err(e) => {
                    eprintln!("mba_simplify: read error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let simplifier = Simplifier::new();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failed = false;
    for input in &inputs {
        match input.parse::<Expr>() {
            Ok(e) => {
                let d = simplifier.simplify_detailed(&e);
                if verbose {
                    let _ = writeln!(
                        out,
                        "{}    [{}, alternation {} -> {}, {} rounds]",
                        d.output,
                        d.input_metrics.class,
                        d.input_metrics.alternation,
                        d.output_metrics.alternation,
                        d.rounds
                    );
                } else {
                    let _ = writeln!(out, "{}", d.output);
                }
            }
            Err(err) => {
                eprintln!("mba_simplify: cannot parse `{input}`: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
