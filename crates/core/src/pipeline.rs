//! Lowering expressions to polynomials: signature extraction for bitwise
//! subtrees, opaque abstraction for arithmetic-under-bitwise, and the
//! arithmetic-reduction glue (the body of Algorithm 1).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use mba_expr::arena::Node;
use mba_expr::classify::{decompose_term, flatten_sum};
use mba_expr::{BinOp, EvalProgram, Expr, ExprArena, Ident, MbaClass, NodeId, UnOp};
use mba_sig::{cache, simba, SignatureVector, TruthTable};

use crate::poly::Poly;
use crate::simplifier::{Basis, InjectedBug, RoundFlags, Simplifier};

/// Work cap for the semi-linear tier: one corner sweep of `2^t` lanes
/// per constant-pattern group, at most this many lanes total before
/// falling back to the opaque-abstraction slow path.
const SEMI_WORK_CAP: usize = 1 << 16;

/// Variable cap for the BDD canonicalization tier. Beyond the truth
/// table's 12 but bounded: diagram size is what actually gates the tier
/// (the node budget), this only keeps the sorted-variable order and the
/// worst-case build cost predictable.
const BDD_TIER_MAX_VARS: usize = 24;

/// One lowering pass over a single expression. Collects the temporaries
/// it abstracts so the driver can substitute them back.
pub(crate) struct Pipeline<'a> {
    simplifier: &'a Simplifier,
    depth: usize,
    /// Names that must not be used for temporaries (the input's own
    /// variables).
    forbidden: BTreeSet<Ident>,
    /// Temporaries in creation order: `(name, simplified replacement)`.
    temps: Vec<(Ident, Expr)>,
    /// Dedup map from the abstracted subtree's *simplified canonical
    /// form* to its temporary — sharing here is the paper's
    /// common-subexpression optimization, robust to the two sites having
    /// been obfuscated differently.
    temp_map: HashMap<Expr, Ident>,
    /// Set when a polynomial blow-up forced a bail-out.
    pub(crate) bailed: bool,
    /// Set when the BDD tier canonicalized some subterm (directly or in
    /// a nested canonical/round probe).
    pub(crate) used_bdd: bool,
    /// Set when a pure-bitwise subterm was too wide for every
    /// canonicalization tier and was kept opaque.
    pub(crate) skipped_too_many_vars: bool,
}

impl<'a> Pipeline<'a> {
    pub(crate) fn new(simplifier: &'a Simplifier, root: &Expr, depth: usize) -> Self {
        Pipeline {
            simplifier,
            depth,
            forbidden: root.vars(),
            temps: Vec::new(),
            temp_map: HashMap::new(),
            bailed: false,
            used_bdd: false,
            skipped_too_many_vars: false,
        }
    }

    /// Runs the pass: lower to a polynomial, render, and substitute the
    /// temporaries back. `None` means the pass bailed out (monomial cap)
    /// and the caller should keep the input.
    pub(crate) fn run(&mut self, e: &Expr) -> Option<Expr> {
        // Constant fast fold: a variable-free input needs no tiering at
        // all — evaluate and render the symmetric residue directly,
        // byte-identical to what the full lowering produces for it.
        // Sits ahead of the fast path's attempt counter, so constants
        // no longer count as (guaranteed-futile) SiMBA attempts.
        if self.forbidden.is_empty() {
            let value = e.eval(&mba_expr::Valuation::new(), self.width());
            return Some(
                Poly::constant(self.signed_residue(value), self.width()).to_expr(),
            );
        }
        // Tiered lowering: the SiMBA-style corner fast path for linear
        // inputs, then the grouped-corner semi-linear tier, then the
        // general recursive lowering. The fast paths feed the same
        // `Poly` type (and, for linear inputs, the same ∧-basis
        // expansion) as the slow path, so the rendered output is
        // byte-identical whichever route ran.
        let mut poly = self.linear_fast_path(e);
        if poly.is_none() {
            poly = self.semi_linear_path(e);
        }
        let poly = match poly {
            Some(p) => p,
            None => self.to_poly(e)?,
        };
        let mut rendered = poly.to_expr();
        // Substitute in reverse creation order; replacements contain only
        // original variables, so one pass per temp suffices.
        for (name, replacement) in self.temps.iter().rev() {
            rendered = rendered.substitute(name, replacement);
        }
        Some(rendered)
    }

    fn width(&self) -> u32 {
        self.simplifier.config().width
    }

    /// Reinterprets a masked `width`-bit evaluation result as the
    /// symmetric residue ([`Poly`]'s coefficient domain), so e.g. the
    /// all-ones value renders as `-1`, not `2^width - 1`.
    fn signed_residue(&self, value: u64) -> i128 {
        if self.width() == 64 {
            value as i64 as i128
        } else if value >= 1u64 << (self.width() - 1) {
            value as i128 - (1i128 << self.width())
        } else {
            value as i128
        }
    }

    /// Folds a nested probe's tier flags into this pipeline's (see
    /// `RoundFlags::absorb_nested` — `bailed` stays separate).
    fn absorb(&mut self, flags: RoundFlags) {
        self.used_bdd |= flags.used_bdd;
        self.skipped_too_many_vars |= flags.skipped_too_many_vars;
    }

    /// The SiMBA-style fast path (Xu et al.; arXiv 2209.06335): for a
    /// linear input, recover the normalized ∧-basis coefficients
    /// directly from the `2^t` {0, −1} corner evaluations — one
    /// bit-parallel batch sweep plus a Möbius transform — instead of
    /// walking the tree and extracting per-subtree truth tables.
    ///
    /// The recovered coefficients feed the *same* [`expand_and_basis`]
    /// the truth-table route uses, so the resulting polynomial is
    /// byte-identical to the slow path's; any recovery failure (probe
    /// mismatch, too many variables) falls back to it.
    fn linear_fast_path(&mut self, e: &Expr) -> Option<Poly> {
        let config = self.simplifier.config();
        if !config.use_simba {
            return None;
        }
        // The ∨ basis renders different atoms; leave its pipeline alone.
        if !matches!(config.basis, Basis::And | Basis::Adaptive) {
            return None;
        }
        simba::record_attempt();
        if config.use_arena {
            return self.linear_fast_path_arena(e);
        }
        if e.mba_class() != MbaClass::Linear {
            return None;
        }
        let vars: Vec<Ident> = e.vars().into_iter().collect();
        if vars.is_empty() || vars.len() > TruthTable::MAX_VARS {
            return None;
        }
        let _t = self.simplifier.stages().simba.time();
        let Some(mut coeffs) = simba::recover_coefficients(e, &vars, self.width()) else {
            simba::record_fallback();
            return None;
        };
        if config.injected_bug == Some(InjectedBug::SimbaCoeffFlip) {
            // Zero the first nonzero recovered coefficient, *after* the
            // recovery-time probe verification — the kind of silent
            // post-check corruption the differential fuzzer must catch.
            if let Some(c) = coeffs.iter_mut().find(|c| **c != 0) {
                *c = 0;
            }
        }
        simba::record_hit();
        Some(self.expand_and_basis(&coeffs, &vars))
    }

    /// The arena-keyed twin of the linear fast path: the input is
    /// interned once, classification and variable collection read the
    /// precomputed per-node metadata, and the corner sweep runs over an
    /// [`EvalProgram`] compiled straight from node ids.
    /// [`EvalProgram::compile_arena`] emits the *same tape* as compiling
    /// the extracted tree, so the recovered coefficients — and therefore
    /// the rendered polynomial — are byte-identical to the tree route's.
    fn linear_fast_path_arena(&mut self, e: &Expr) -> Option<Poly> {
        let simplifier = self.simplifier;
        let arena = simplifier.arena();
        let root = self.stale_id(arena, arena.intern(e));
        if arena.classify(root) != MbaClass::Linear {
            return None;
        }
        let vars = arena.vars(root);
        if vars.is_empty() || vars.len() > TruthTable::MAX_VARS {
            return None;
        }
        let _t = simplifier.stages().simba.time();
        let program = EvalProgram::compile_arena(arena, root);
        let Some(mut coeffs) =
            simba::recover_coefficients_program(&program, &vars, self.width())
        else {
            simba::record_fallback();
            return None;
        };
        if simplifier.config().injected_bug == Some(InjectedBug::SimbaCoeffFlip) {
            // Same post-verification corruption as the tree route, so
            // the fuzzer's SimbaCoeffFlip self-test is arena-agnostic.
            if let Some(c) = coeffs.iter_mut().find(|c| **c != 0) {
                *c = 0;
            }
        }
        simba::record_hit();
        Some(self.expand_and_basis(&coeffs, &vars))
    }

    /// The semi-linear tier: lowers `C + Σ aᵢ·fᵢ` where each `fᵢ` is
    /// bitwise-with-constants. Bit positions are grouped by the pattern
    /// of the embedded constants' bits; within a group every constant is
    /// uniform (all-zeros or all-ones), so grounding the constants turns
    /// the sum into a plain linear MBA whose corner signature is
    /// recovered per group and re-masked. Groups with identical subset
    /// coefficients merge (`(B∧m₁)+(B∧m₂) = B∧(m₁|m₂)` for disjoint
    /// masks), which is what lets `(x&240)+(x&~240)` re-fuse to `x`.
    ///
    /// This tier is always on (not gated by `use_simba`) so toggling the
    /// linear fast path never changes output bytes.
    fn semi_linear_path(&mut self, e: &Expr) -> Option<Poly> {
        if !matches!(
            self.simplifier.config().basis,
            Basis::And | Basis::Adaptive
        ) {
            return None;
        }
        // Classification and variable collection go through the arena's
        // precomputed metadata when it is on; the id-level classifier is
        // pinned equal to `Expr::mba_class`, and `ExprArena::vars`
        // returns name order, matching the `BTreeSet` walk. The
        // expansion itself stays tree-driven either way (its work is
        // constant-grounding, not traversal).
        let (class, vars) = if self.simplifier.config().use_arena {
            let arena = self.simplifier.arena();
            let root = arena.intern(e);
            (arena.classify(root), arena.vars(root))
        } else {
            (e.mba_class(), e.vars().into_iter().collect())
        };
        if class != MbaClass::SemiLinear {
            return None;
        }
        if vars.is_empty() || vars.len() > TruthTable::MAX_VARS {
            return None;
        }
        simba::record_semi_attempt();
        let _t = self.simplifier.stages().simba.time();
        match self.expand_semi_linear(e, &vars) {
            Some(p) => {
                simba::record_semi_hit();
                Some(p)
            }
            None => {
                simba::record_semi_fallback();
                None
            }
        }
    }

    fn expand_semi_linear(&self, e: &Expr, vars: &[Ident]) -> Option<Poly> {
        let width = self.width();
        let full_mask = mba_expr::mask(u64::MAX, width);
        // Split the sum into the additive constant and the
        // (coefficient, bitwise factor) terms.
        let mut constant: i128 = 0;
        let mut terms: Vec<(i128, &Expr)> = Vec::new();
        for term in flatten_sum(e) {
            let parts = decompose_term(term.expr, term.sign);
            match parts.factors.as_slice() {
                [] => constant = constant.wrapping_add(parts.coefficient),
                [f] => terms.push((simba::reduce(parts.coefficient, width), f)),
                // classify() precludes degree ≥ 2 here; stay defensive.
                _ => return None,
            }
        }
        // Group bit positions 0..width by the bit pattern of every
        // constant occurring inside the bitwise layer. Within a group
        // each constant is uniform, so the restriction is linear.
        let mut consts: BTreeSet<i128> = BTreeSet::new();
        for (_, f) in &terms {
            collect_bitwise_consts(f, width, &mut consts)?;
        }
        let consts: Vec<i128> = consts.into_iter().collect();
        let mut groups: BTreeMap<Vec<bool>, u64> = BTreeMap::new();
        for j in 0..width {
            let key: Vec<bool> = consts.iter().map(|c| (c >> j) & 1 != 0).collect();
            *groups.entry(key).or_insert(0) |= 1u64 << j;
        }
        // One 2^t corner sweep per group; cap the total lane count.
        if (1usize << vars.len()).saturating_mul(groups.len()) > SEMI_WORK_CAP {
            return None;
        }
        let mut poly = Poly::zero(width);
        poly.add_term(Vec::new(), constant);
        // Recovered subset coefficients, keyed by (subset, coefficient)
        // so identical contributions from different groups merge their
        // (disjoint) masks: c·(B∧m₁) + c·(B∧m₂) = c·(B∧(m₁|m₂)). A mask
        // that grows to full width drops entirely, which is what re-fuses
        // `(x&240)+(x&~240)` to `x`.
        let mut merged: BTreeMap<(usize, i128), u64> = BTreeMap::new();
        for mask_bits in groups.values() {
            let j = mask_bits.trailing_zeros();
            let grounded: Vec<(i128, Expr)> = terms
                .iter()
                .map(|(a, f)| ground_constants(f, j).map(|g| (*a, g)))
                .collect::<Option<Vec<_>>>()?;
            let grounded_expr = mba_sig::linear_combination(&grounded);
            let mut coeffs = simba::corner_signature(&grounded_expr, vars, width)?;
            simba::moebius(&mut coeffs);
            // The all-ones column restricted to the mask is the plain
            // integer `m`: c₀·((−1) ∧ m) = c₀·m.
            let c0 = simba::reduce(coeffs[0], width);
            if c0 != 0 {
                poly.add_term(
                    Vec::new(),
                    c0.wrapping_mul(simba::reduce(*mask_bits as i128, width)),
                );
            }
            for (s, &c) in coeffs.iter().enumerate().skip(1) {
                let c = simba::reduce(c, width);
                if c != 0 {
                    *merged.entry((s, c)).or_insert(0) |= mask_bits;
                }
            }
        }
        for ((s, c), mask_bits) in merged {
            let atom = if mask_bits == full_mask {
                and_of_subset(s, vars)
            } else {
                Expr::binary(
                    BinOp::And,
                    and_of_subset(s, vars),
                    Expr::constant(simba::reduce(mask_bits as i128, width)),
                )
            };
            poly.add_term(vec![atom], c);
        }
        Some(poly)
    }

    /// Lowers an arbitrary MBA expression to a polynomial over atoms.
    #[allow(clippy::wrong_self_convention)]
    fn to_poly(&mut self, e: &Expr) -> Option<Poly> {
        match e {
            Expr::Const(c) => Some(Poly::constant(*c, self.width())),
            Expr::Var(v) => Some(Poly::atom(Expr::Var(v.clone()), self.width())),
            Expr::Unary(UnOp::Neg, a) => Some(self.to_poly(a)?.neg()),
            Expr::Unary(UnOp::Not, _) => self.bitwise_to_poly(e),
            Expr::Binary(op, a, b) => match op {
                BinOp::Add => Some(self.to_poly(a)?.add(&self.to_poly(b)?)),
                BinOp::Sub => Some(self.to_poly(a)?.sub(&self.to_poly(b)?)),
                BinOp::Mul => {
                    let pa = self.to_poly(a)?;
                    let pb = self.to_poly(b)?;
                    match pa.mul_capped(&pb, self.simplifier.config().max_monomials) {
                        Some(p) => Some(p),
                        None => {
                            self.bailed = true;
                            None
                        }
                    }
                }
                BinOp::And | BinOp::Or | BinOp::Xor => self.bitwise_to_poly(e),
            },
        }
    }

    /// Lowers a bitwise-rooted subtree: abstract arithmetic children,
    /// take the signature of the remaining pure-bitwise skeleton, and
    /// expand it in the configured normalized basis.
    fn bitwise_to_poly(&mut self, e: &Expr) -> Option<Poly> {
        if self.simplifier.config().use_arena {
            return self.bitwise_to_poly_arena(e);
        }
        let skeleton = self.skeleton(e);
        let vars: Vec<Ident> = skeleton.vars().into_iter().collect();
        if vars.is_empty() {
            // Constant-only bitwise tree, e.g. ~0: evaluate directly.
            let value = skeleton.eval(&mba_expr::Valuation::new(), self.width());
            return Some(Poly::constant(self.signed_residue(value), self.width()));
        }
        if vars.len() > TruthTable::MAX_VARS {
            // Too wide for a truth table: the BDD tier, then opaque.
            return Some(self.wide_bitwise(skeleton));
        }
        // Truth-table extraction (the 2^t evaluation sweep) and the
        // basis re-expression below both memoize through the shared
        // `SigCache` when caching is enabled; the uncached paths compute
        // the same pure functions directly, so outputs never differ.
        // The signature span times the lookup-or-compute as one unit, so
        // its histogram shows the cache collapsing the sweep's cost.
        let table: Arc<TruthTable> = {
            let _t = self.simplifier.stages().signature.time();
            if self.use_sig_cache() {
                self.simplifier
                    .sig_cache()
                    .table_of(&skeleton, &vars)
                    .expect("skeleton is pure bitwise by construction")
            } else {
                Arc::new(
                    TruthTable::of(&skeleton, &vars)
                        .expect("skeleton is pure bitwise by construction"),
                )
            }
        };
        Some(self.table_to_poly(&table, &vars))
    }

    /// The arena-keyed twin of [`Pipeline::bitwise_to_poly`]: the
    /// skeleton is built as interned node ids (sharing every subtree the
    /// arena has seen before, across expressions), and the truth table
    /// is keyed by `(arena uid, generation, id)` in the signature cache
    /// — no re-hash of the subtree per lookup.
    /// [`TruthTable::of_arena`] compiles the identical tape the tree
    /// route compiles, so tables — and output bytes — never differ.
    fn bitwise_to_poly_arena(&mut self, e: &Expr) -> Option<Poly> {
        let simplifier = self.simplifier;
        let arena = simplifier.arena();
        let skel = self.skeleton_id(arena, arena.intern(e));
        let skel = self.stale_id(arena, skel);
        let vars = arena.vars(skel);
        if vars.is_empty() {
            // Constant-only bitwise tree, e.g. ~0: evaluate directly.
            let skeleton = arena.extract(skel);
            let value = skeleton.eval(&mba_expr::Valuation::new(), self.width());
            return Some(Poly::constant(self.signed_residue(value), self.width()));
        }
        if vars.len() > TruthTable::MAX_VARS {
            // Too wide for a truth table: the BDD tier, then opaque.
            // Extraction is the same expression the tree route's
            // skeleton builds, so both routes feed the tier — and key
            // its diagram — identically.
            return Some(self.wide_bitwise(arena.extract(skel)));
        }
        let table: Arc<TruthTable> = {
            let _t = simplifier.stages().signature.time();
            if self.use_sig_cache() {
                simplifier
                    .sig_cache()
                    .table_of_id(arena, skel, &vars)
                    .expect("skeleton is pure bitwise by construction")
            } else {
                Arc::new(
                    TruthTable::of_arena(arena, skel, &vars)
                        .expect("skeleton is pure bitwise by construction"),
                )
            }
        };
        Some(self.table_to_poly(&table, &vars))
    }

    /// A pure-bitwise skeleton with more variables than any `2^t`-row
    /// tier can sweep: canonicalize through the ROBDD engine when the
    /// tier is enabled and the diagram fits its budgets; otherwise
    /// record the (previously silent) skip and keep the subtree opaque.
    fn wide_bitwise(&mut self, skeleton: Expr) -> Poly {
        if self.simplifier.config().use_bdd {
            if let Some(rendered) = self.bdd_canonicalize(&skeleton) {
                self.used_bdd = true;
                // A semantically constant skeleton renders as 0 / -1.
                if let Some(c) = rendered.as_literal() {
                    return Poly::constant(c, self.width());
                }
                return Poly::atom(rendered, self.width());
            }
        }
        self.skipped_too_many_vars = true;
        Poly::atom(skeleton, self.width())
    }

    /// One BDD canonicalization: build the diagram over the skeleton's
    /// sorted variables, extract the canonical render. `None` when the
    /// tier declines (too many variables, node budget exceeded, or the
    /// canonical render would blow past the size budget — diagram
    /// sharing can unfold into a large tree).
    fn bdd_canonicalize(&self, skeleton: &Expr) -> Option<Expr> {
        let vars: Vec<Ident> = skeleton.vars().into_iter().collect();
        if vars.len() > BDD_TIER_MAX_VARS {
            return None;
        }
        let mut mgr = mba_bdd::BddManager::with_node_limit(mba_bdd::DEFAULT_NODE_LIMIT);
        let mut root = mgr.build(skeleton, &vars)?;
        if self.simplifier.config().injected_bug == Some(InjectedBug::BddComplementFlip) {
            // The complement-flag fault site: flip the root edge between
            // build and extraction, the observable effect of a lost
            // complement bit during node normalization.
            root = root.complement();
        }
        let rendered = mgr.extract(root, &vars, mba_bdd::DEFAULT_RENDER_LIMIT)?;
        mba_bdd::record_canonicalization();
        Some(rendered)
    }

    fn use_sig_cache(&self) -> bool {
        self.simplifier.config().use_cache
    }

    /// The ∧-basis (Möbius) coefficients of a truth table, via the
    /// shared cache when enabled.
    fn and_coefficients(&self, tt: &TruthTable) -> Vec<i128> {
        let _t = self.simplifier.stages().basis.time();
        if self.use_sig_cache() {
            (*self.simplifier.sig_cache().and_coefficients(tt)).clone()
        } else {
            SignatureVector::from_truth_table(tt).normalized_coefficients()
        }
    }

    /// Expands a 0/1 truth-table signature in the configured basis.
    /// `Adaptive` is resolved to concrete bases by the driver before
    /// pipelines run, so it falls back to ∧ here.
    fn table_to_poly(&self, tt: &TruthTable, vars: &[Ident]) -> Poly {
        match self.simplifier.config().basis {
            Basis::And | Basis::Adaptive => {
                self.expand_and_basis(&self.and_coefficients(tt), vars)
            }
            Basis::Or => {
                let solved = {
                    let _t = self.simplifier.stages().basis.time();
                    if self.use_sig_cache() {
                        self.simplifier
                            .sig_cache()
                            .or_coefficients(tt)
                            .map(|c| (*c).clone())
                    } else {
                        cache::or_basis_coefficients(tt)
                    }
                };
                match solved {
                    Some(coeffs) => {
                        let mut p = Poly::zero(self.width());
                        for (s, &c) in coeffs.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            if s == 0 {
                                p.add_term(Vec::new(), -c);
                            } else {
                                p.add_term(vec![or_of_subset(s, vars)], c);
                            }
                        }
                        p
                    }
                    // The ∨-basis can lack integer solutions for some
                    // signatures; fall back to the ∧-basis, which is
                    // unimodular and never fails.
                    None => self.expand_and_basis(&self.and_coefficients(tt), vars),
                }
            }
        }
    }

    fn expand_and_basis(&self, coeffs: &[i128], vars: &[Ident]) -> Poly {
        let mut p = Poly::zero(self.width());
        for (s, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if s == 0 {
                // Coefficient of the all-ones column (−1): constant −c.
                p.add_term(Vec::new(), -c);
            } else {
                p.add_term(vec![and_of_subset(s, vars)], c);
            }
        }
        p
    }

    /// Rebuilds a bitwise-rooted subtree with every non-bitwise child
    /// abstracted into a temporary variable.
    fn skeleton(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Var(_) => e.clone(),
            Expr::Const(0) | Expr::Const(-1) => e.clone(),
            Expr::Unary(UnOp::Not, a) => Expr::unary(UnOp::Not, self.skeleton(a)),
            // Arithmetic negation is opaque — except over a literal
            // chain folding to a bit-uniform constant (`-0`, `- -1`),
            // which `is_pure_bitwise` admits. The skeleton must admit
            // exactly the same constants: otherwise the truth-table
            // route sees an opaque temporary where the corner route
            // sees a constant, and the two routes' outputs diverge.
            Expr::Unary(UnOp::Neg, _) => match e.as_literal() {
                Some(0) => Expr::Const(0),
                Some(-1) => Expr::Const(-1),
                _ => self.temp_for(e),
            },
            Expr::Binary(op @ (BinOp::And | BinOp::Or | BinOp::Xor), a, b) => {
                Expr::binary(*op, self.skeleton(a), self.skeleton(b))
            }
            // Anything else — arithmetic subtree or a non-uniform
            // constant — becomes an opaque temporary.
            other => self.temp_for(other),
        }
    }

    /// [`Pipeline::skeleton`] over interned node ids. The case split —
    /// and in particular the `-0` / `- -1` literal-chain folding the
    /// negated-literal regression pinned — mirrors the tree walker
    /// exactly, with `as_literal` answered by the arena's precomputed
    /// per-node metadata instead of a chain walk. Opaque children are
    /// extracted once to run through the same [`Pipeline::temp_for`]
    /// (its dedup key is the *canonical form*, which is structural, so
    /// the extracted copy keys identically), keeping temporary names and
    /// order byte-identical to the tree route.
    fn skeleton_id(&mut self, arena: &ExprArena, id: NodeId) -> NodeId {
        match arena.node(id) {
            Node::Var(_) | Node::Const(0) | Node::Const(-1) => id,
            Node::Unary(UnOp::Not, a) => {
                let sa = self.skeleton_id(arena, a);
                arena.mk_unary(UnOp::Not, sa)
            }
            Node::Unary(UnOp::Neg, _) => match arena.as_literal(id) {
                Some(0) => arena.mk_const(0),
                Some(-1) => arena.mk_const(-1),
                _ => {
                    let t = self.temp_for(&arena.extract(id));
                    arena.intern(&t)
                }
            },
            Node::Binary(op @ (BinOp::And | BinOp::Or | BinOp::Xor), a, b) => {
                let sa = self.skeleton_id(arena, a);
                let sb = self.skeleton_id(arena, b);
                arena.mk_binary(op, sa, sb)
            }
            _ => {
                let t = self.temp_for(&arena.extract(id));
                arena.intern(&t)
            }
        }
    }

    /// The [`InjectedBug::ArenaStaleId`] fault site: when armed, a
    /// freshly interned id is swapped for its first child's id — the
    /// observable effect of an intern table that handed back an entry a
    /// rewrite had invalidated. Leaves (no child to be stale against)
    /// pass through, so shrinking bottoms out at the smallest composite
    /// node. A no-op unless the bug is armed.
    fn stale_id(&self, arena: &ExprArena, id: NodeId) -> NodeId {
        if self.simplifier.config().injected_bug != Some(InjectedBug::ArenaStaleId) {
            return id;
        }
        match arena.node(id) {
            Node::Unary(_, a) => a,
            Node::Binary(_, a, _) => a,
            Node::Const(_) | Node::Var(_) => id,
        }
    }

    /// Returns the (possibly negated) temporary standing for `child`,
    /// creating one on first sight.
    ///
    /// Deduplication works on the child's *simplified* form, so two
    /// sites that were obfuscated differently still share a temporary —
    /// the paper's common-subexpression optimization, made robust. A
    /// child whose simplified form is the bitwise complement of an
    /// existing temporary (`E = ¬E' = −E'−1`) reuses it as `¬t'`, which
    /// lets e.g. `(A ⊕ B) − 2(¬A ∧ B)` collapse even when the two `A`
    /// copies diverged syntactically.
    fn temp_for(&mut self, child: &Expr) -> Expr {
        // Deduplication key: the *canonical* polynomial render of the
        // child, computed without the output-size heuristic. Two sites
        // that were obfuscated differently but denote the same
        // polynomial share one key — and therefore one temporary.
        let (key, key_flags) = self.simplifier.canonical_form(child, self.depth + 1);
        self.absorb(key_flags);
        if let Some(name) = self.temp_map.get(&key) {
            return Expr::Var(name.clone());
        }
        // Complement probe: a child whose canonical form matches an
        // existing temporary's complement (¬E = −E − 1) reuses it as
        // `¬t`, so e.g. `(A ⊕ B) − 2(¬A ∧ B)` collapses even when the
        // two `A` copies diverged syntactically.
        let complement_input = Expr::binary(
            BinOp::Sub,
            Expr::unary(UnOp::Neg, child.clone()),
            Expr::one(),
        );
        let (complement_key, complement_flags) = self
            .simplifier
            .canonical_form(&complement_input, self.depth + 1);
        self.absorb(complement_flags);
        if let Some(name) = self.temp_map.get(&complement_key) {
            return Expr::unary(UnOp::Not, Expr::Var(name.clone()));
        }
        // The *replacement* substituted back into the output is the
        // best-scored simplification (plus the per-level FinalOptimize
        // of Algorithm 1), not the canonical render, which may be
        // larger.
        let (mut simplified, child_flags) =
            self.simplifier.simplify_round(child, self.depth + 1);
        self.absorb(child_flags);
        if self.simplifier.config().final_step {
            simplified = self.simplifier.final_step(&simplified);
        }
        let name = self.fresh_name();
        self.forbidden.insert(name.clone());
        self.temps.push((name.clone(), simplified));
        self.temp_map.insert(key, name.clone());
        Expr::Var(name)
    }

    fn fresh_name(&self) -> Ident {
        let mut n = self.temps.len();
        loop {
            let candidate = Ident::new(format!("_t{n}"));
            if !self.forbidden.contains(&candidate) {
                return candidate;
            }
            n += 1;
        }
    }
}

/// Collects every constant occurring inside a bitwise-with-constants
/// factor, reduced to its symmetric residue mod `2^width` (bits above
/// the width cannot influence any grouped position). `None` on a shape
/// outside the semi-linear factor grammar.
fn collect_bitwise_consts(e: &Expr, width: u32, out: &mut BTreeSet<i128>) -> Option<()> {
    match e {
        Expr::Var(_) => Some(()),
        Expr::Unary(UnOp::Not, a) => collect_bitwise_consts(a, width, out),
        Expr::Binary(BinOp::And | BinOp::Or | BinOp::Xor, a, b) => {
            collect_bitwise_consts(a, width, out)?;
            collect_bitwise_consts(b, width, out)
        }
        other => {
            out.insert(simba::reduce(other.as_literal()?, width));
            Some(())
        }
    }
}

/// Replaces every constant in a bitwise-with-constants factor by the
/// uniform constant matching its bit at position `j` (0 or −1), turning
/// the factor into a pure bitwise expression valid on that bit group.
fn ground_constants(e: &Expr, j: u32) -> Option<Expr> {
    match e {
        Expr::Var(_) => Some(e.clone()),
        Expr::Unary(UnOp::Not, a) => Some(Expr::unary(UnOp::Not, ground_constants(a, j)?)),
        Expr::Binary(op @ (BinOp::And | BinOp::Or | BinOp::Xor), a, b) => Some(Expr::binary(
            *op,
            ground_constants(a, j)?,
            ground_constants(b, j)?,
        )),
        other => {
            let c = other.as_literal()?;
            Some(if (c >> j) & 1 != 0 {
                Expr::minus_one()
            } else {
                Expr::zero()
            })
        }
    }
}

/// The conjunction of the variables selected by row-index bit mask `s`
/// (bit `p` ↔ `vars[t-1-p]`, matching the signature row convention).
pub(crate) fn and_of_subset(s: usize, vars: &[Ident]) -> Expr {
    subset_chain(s, vars, BinOp::And)
}

/// The disjunction of the variables selected by mask `s`.
pub(crate) fn or_of_subset(s: usize, vars: &[Ident]) -> Expr {
    subset_chain(s, vars, BinOp::Or)
}

fn subset_chain(s: usize, vars: &[Ident], op: BinOp) -> Expr {
    let t = vars.len();
    let mut selected = (0..t).filter(|j| s & (1 << (t - 1 - j)) != 0);
    let first = selected
        .next()
        .expect("subset_chain requires a non-empty subset");
    selected.fold(Expr::var(vars[first].clone()), |acc, j| {
        Expr::binary(op, acc, Expr::var(vars[j].clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_builders() {
        let vars = [Ident::new("x"), Ident::new("y"), Ident::new("z")];
        // Mask bits: bit 2 = x, bit 1 = y, bit 0 = z.
        assert_eq!(and_of_subset(0b100, &vars).to_string(), "x");
        assert_eq!(and_of_subset(0b011, &vars).to_string(), "y&z");
        assert_eq!(and_of_subset(0b111, &vars).to_string(), "x&y&z");
        assert_eq!(or_of_subset(0b101, &vars).to_string(), "x|z");
    }

    #[test]
    #[should_panic(expected = "non-empty subset")]
    fn empty_subset_panics() {
        let vars = [Ident::new("x")];
        and_of_subset(0, &vars);
    }
}
