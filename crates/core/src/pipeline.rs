//! Lowering expressions to polynomials: signature extraction for bitwise
//! subtrees, opaque abstraction for arithmetic-under-bitwise, and the
//! arithmetic-reduction glue (the body of Algorithm 1).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use mba_expr::{BinOp, Expr, Ident, UnOp};
use mba_sig::{cache, SignatureVector, TruthTable};

use crate::poly::Poly;
use crate::simplifier::{Basis, Simplifier};

/// One lowering pass over a single expression. Collects the temporaries
/// it abstracts so the driver can substitute them back.
pub(crate) struct Pipeline<'a> {
    simplifier: &'a Simplifier,
    depth: usize,
    /// Names that must not be used for temporaries (the input's own
    /// variables).
    forbidden: BTreeSet<Ident>,
    /// Temporaries in creation order: `(name, simplified replacement)`.
    temps: Vec<(Ident, Expr)>,
    /// Dedup map from the abstracted subtree's *simplified canonical
    /// form* to its temporary — sharing here is the paper's
    /// common-subexpression optimization, robust to the two sites having
    /// been obfuscated differently.
    temp_map: HashMap<Expr, Ident>,
    /// Set when a polynomial blow-up forced a bail-out.
    pub(crate) bailed: bool,
}

impl<'a> Pipeline<'a> {
    pub(crate) fn new(simplifier: &'a Simplifier, root: &Expr, depth: usize) -> Self {
        Pipeline {
            simplifier,
            depth,
            forbidden: root.vars(),
            temps: Vec::new(),
            temp_map: HashMap::new(),
            bailed: false,
        }
    }

    /// Runs the pass: lower to a polynomial, render, and substitute the
    /// temporaries back. `None` means the pass bailed out (monomial cap)
    /// and the caller should keep the input.
    pub(crate) fn run(&mut self, e: &Expr) -> Option<Expr> {
        let poly = self.to_poly(e)?;
        let mut rendered = poly.to_expr();
        // Substitute in reverse creation order; replacements contain only
        // original variables, so one pass per temp suffices.
        for (name, replacement) in self.temps.iter().rev() {
            rendered = rendered.substitute(name, replacement);
        }
        Some(rendered)
    }

    fn width(&self) -> u32 {
        self.simplifier.config().width
    }

    /// Lowers an arbitrary MBA expression to a polynomial over atoms.
    #[allow(clippy::wrong_self_convention)]
    fn to_poly(&mut self, e: &Expr) -> Option<Poly> {
        match e {
            Expr::Const(c) => Some(Poly::constant(*c, self.width())),
            Expr::Var(v) => Some(Poly::atom(Expr::Var(v.clone()), self.width())),
            Expr::Unary(UnOp::Neg, a) => Some(self.to_poly(a)?.neg()),
            Expr::Unary(UnOp::Not, _) => self.bitwise_to_poly(e),
            Expr::Binary(op, a, b) => match op {
                BinOp::Add => Some(self.to_poly(a)?.add(&self.to_poly(b)?)),
                BinOp::Sub => Some(self.to_poly(a)?.sub(&self.to_poly(b)?)),
                BinOp::Mul => {
                    let pa = self.to_poly(a)?;
                    let pb = self.to_poly(b)?;
                    match pa.mul_capped(&pb, self.simplifier.config().max_monomials) {
                        Some(p) => Some(p),
                        None => {
                            self.bailed = true;
                            None
                        }
                    }
                }
                BinOp::And | BinOp::Or | BinOp::Xor => self.bitwise_to_poly(e),
            },
        }
    }

    /// Lowers a bitwise-rooted subtree: abstract arithmetic children,
    /// take the signature of the remaining pure-bitwise skeleton, and
    /// expand it in the configured normalized basis.
    fn bitwise_to_poly(&mut self, e: &Expr) -> Option<Poly> {
        let skeleton = self.skeleton(e);
        let vars: Vec<Ident> = skeleton.vars().into_iter().collect();
        if vars.is_empty() {
            // Constant-only bitwise tree, e.g. ~0: evaluate directly.
            let value = skeleton.eval(&mba_expr::Valuation::new(), self.width());
            // Interpret as the symmetric residue so -1 stays -1.
            let signed = if self.width() == 64 {
                value as i64 as i128
            } else if value >= 1u64 << (self.width() - 1) {
                value as i128 - (1i128 << self.width())
            } else {
                value as i128
            };
            return Some(Poly::constant(signed, self.width()));
        }
        if vars.len() > TruthTable::MAX_VARS {
            // Too wide for a truth table: keep the subtree opaque.
            return Some(Poly::atom(skeleton, self.width()));
        }
        // Truth-table extraction (the 2^t evaluation sweep) and the
        // basis re-expression below both memoize through the shared
        // `SigCache` when caching is enabled; the uncached paths compute
        // the same pure functions directly, so outputs never differ.
        // The signature span times the lookup-or-compute as one unit, so
        // its histogram shows the cache collapsing the sweep's cost.
        let table: Arc<TruthTable> = {
            let _t = self.simplifier.stages().signature.time();
            if self.use_sig_cache() {
                self.simplifier
                    .sig_cache()
                    .table_of(&skeleton, &vars)
                    .expect("skeleton is pure bitwise by construction")
            } else {
                Arc::new(
                    TruthTable::of(&skeleton, &vars)
                        .expect("skeleton is pure bitwise by construction"),
                )
            }
        };
        Some(self.table_to_poly(&table, &vars))
    }

    fn use_sig_cache(&self) -> bool {
        self.simplifier.config().use_cache
    }

    /// The ∧-basis (Möbius) coefficients of a truth table, via the
    /// shared cache when enabled.
    fn and_coefficients(&self, tt: &TruthTable) -> Vec<i128> {
        let _t = self.simplifier.stages().basis.time();
        if self.use_sig_cache() {
            (*self.simplifier.sig_cache().and_coefficients(tt)).clone()
        } else {
            SignatureVector::from_truth_table(tt).normalized_coefficients()
        }
    }

    /// Expands a 0/1 truth-table signature in the configured basis.
    /// `Adaptive` is resolved to concrete bases by the driver before
    /// pipelines run, so it falls back to ∧ here.
    fn table_to_poly(&self, tt: &TruthTable, vars: &[Ident]) -> Poly {
        match self.simplifier.config().basis {
            Basis::And | Basis::Adaptive => {
                self.expand_and_basis(&self.and_coefficients(tt), vars)
            }
            Basis::Or => {
                let solved = {
                    let _t = self.simplifier.stages().basis.time();
                    if self.use_sig_cache() {
                        self.simplifier
                            .sig_cache()
                            .or_coefficients(tt)
                            .map(|c| (*c).clone())
                    } else {
                        cache::or_basis_coefficients(tt)
                    }
                };
                match solved {
                    Some(coeffs) => {
                        let mut p = Poly::zero(self.width());
                        for (s, &c) in coeffs.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            if s == 0 {
                                p.add_term(Vec::new(), -c);
                            } else {
                                p.add_term(vec![or_of_subset(s, vars)], c);
                            }
                        }
                        p
                    }
                    // The ∨-basis can lack integer solutions for some
                    // signatures; fall back to the ∧-basis, which is
                    // unimodular and never fails.
                    None => self.expand_and_basis(&self.and_coefficients(tt), vars),
                }
            }
        }
    }

    fn expand_and_basis(&self, coeffs: &[i128], vars: &[Ident]) -> Poly {
        let mut p = Poly::zero(self.width());
        for (s, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if s == 0 {
                // Coefficient of the all-ones column (−1): constant −c.
                p.add_term(Vec::new(), -c);
            } else {
                p.add_term(vec![and_of_subset(s, vars)], c);
            }
        }
        p
    }

    /// Rebuilds a bitwise-rooted subtree with every non-bitwise child
    /// abstracted into a temporary variable.
    fn skeleton(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Var(_) => e.clone(),
            Expr::Const(0) | Expr::Const(-1) => e.clone(),
            Expr::Unary(UnOp::Not, a) => Expr::unary(UnOp::Not, self.skeleton(a)),
            Expr::Binary(op @ (BinOp::And | BinOp::Or | BinOp::Xor), a, b) => {
                Expr::binary(*op, self.skeleton(a), self.skeleton(b))
            }
            // Anything else — arithmetic subtree or a non-uniform
            // constant — becomes an opaque temporary.
            other => self.temp_for(other),
        }
    }

    /// Returns the (possibly negated) temporary standing for `child`,
    /// creating one on first sight.
    ///
    /// Deduplication works on the child's *simplified* form, so two
    /// sites that were obfuscated differently still share a temporary —
    /// the paper's common-subexpression optimization, made robust. A
    /// child whose simplified form is the bitwise complement of an
    /// existing temporary (`E = ¬E' = −E'−1`) reuses it as `¬t'`, which
    /// lets e.g. `(A ⊕ B) − 2(¬A ∧ B)` collapse even when the two `A`
    /// copies diverged syntactically.
    fn temp_for(&mut self, child: &Expr) -> Expr {
        // Deduplication key: the *canonical* polynomial render of the
        // child, computed without the output-size heuristic. Two sites
        // that were obfuscated differently but denote the same
        // polynomial share one key — and therefore one temporary.
        let key = self.simplifier.canonical_form(child, self.depth + 1);
        if let Some(name) = self.temp_map.get(&key) {
            return Expr::Var(name.clone());
        }
        // Complement probe: a child whose canonical form matches an
        // existing temporary's complement (¬E = −E − 1) reuses it as
        // `¬t`, so e.g. `(A ⊕ B) − 2(¬A ∧ B)` collapses even when the
        // two `A` copies diverged syntactically.
        let complement_input = Expr::binary(
            BinOp::Sub,
            Expr::unary(UnOp::Neg, child.clone()),
            Expr::one(),
        );
        let complement_key = self
            .simplifier
            .canonical_form(&complement_input, self.depth + 1);
        if let Some(name) = self.temp_map.get(&complement_key) {
            return Expr::unary(UnOp::Not, Expr::Var(name.clone()));
        }
        // The *replacement* substituted back into the output is the
        // best-scored simplification (plus the per-level FinalOptimize
        // of Algorithm 1), not the canonical render, which may be
        // larger.
        let mut simplified = self.simplifier.simplify_round(child, self.depth + 1).0;
        if self.simplifier.config().final_step {
            simplified = self.simplifier.final_step(&simplified);
        }
        let name = self.fresh_name();
        self.forbidden.insert(name.clone());
        self.temps.push((name.clone(), simplified));
        self.temp_map.insert(key, name.clone());
        Expr::Var(name)
    }

    fn fresh_name(&self) -> Ident {
        let mut n = self.temps.len();
        loop {
            let candidate = Ident::new(format!("_t{n}"));
            if !self.forbidden.contains(&candidate) {
                return candidate;
            }
            n += 1;
        }
    }
}

/// The conjunction of the variables selected by row-index bit mask `s`
/// (bit `p` ↔ `vars[t-1-p]`, matching the signature row convention).
pub(crate) fn and_of_subset(s: usize, vars: &[Ident]) -> Expr {
    subset_chain(s, vars, BinOp::And)
}

/// The disjunction of the variables selected by mask `s`.
pub(crate) fn or_of_subset(s: usize, vars: &[Ident]) -> Expr {
    subset_chain(s, vars, BinOp::Or)
}

fn subset_chain(s: usize, vars: &[Ident], op: BinOp) -> Expr {
    let t = vars.len();
    let mut selected = (0..t).filter(|j| s & (1 << (t - 1 - j)) != 0);
    let first = selected
        .next()
        .expect("subset_chain requires a non-empty subset");
    selected.fold(Expr::var(vars[first].clone()), |acc, j| {
        Expr::binary(op, acc, Expr::var(vars[j].clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_builders() {
        let vars = [Ident::new("x"), Ident::new("y"), Ident::new("z")];
        // Mask bits: bit 2 = x, bit 1 = y, bit 0 = z.
        assert_eq!(and_of_subset(0b100, &vars).to_string(), "x");
        assert_eq!(and_of_subset(0b011, &vars).to_string(), "y&z");
        assert_eq!(and_of_subset(0b111, &vars).to_string(), "x&y&z");
        assert_eq!(or_of_subset(0b101, &vars).to_string(), "x|z");
    }

    #[test]
    #[should_panic(expected = "non-empty subset")]
    fn empty_subset_panics() {
        let vars = [Ident::new("x")];
        and_of_subset(0, &vars);
    }
}
