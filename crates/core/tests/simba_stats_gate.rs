//! Guards the differential matrix against vacuity: the fast path must
//! actually *fire* when `use_simba` is on, and must not even be
//! *attempted* when it is off. Lives in its own test binary because the
//! counters are process-global and any concurrently running simplify
//! would race the zero-attempts assertion.

use mba_sig::simba;
use mba_solver::{Simplifier, SimplifyConfig};

const LINEAR_CORPUS: [&str; 3] = [
    "x + y - 2*(x&y)",
    "2*(x|y) - (x^y)",
    "(x|y) + (x&y)",
];

#[test]
fn fast_path_fires_when_on_and_is_silent_when_off() {
    let before = simba::simba_stats();
    let on = Simplifier::new();
    for src in LINEAR_CORPUS {
        on.simplify(&src.parse().unwrap());
    }
    let mid = simba::simba_stats();
    let on_delta = mid.since(&before);
    assert!(
        on_delta.hits > 0,
        "fast path never fired on linear corpus: {on_delta:?}"
    );
    assert_eq!(
        on_delta.fallbacks, 0,
        "true linear input must not fall back: {on_delta:?}"
    );

    let off = Simplifier::with_config(SimplifyConfig {
        use_simba: false,
        ..SimplifyConfig::default()
    });
    for src in LINEAR_CORPUS {
        off.simplify(&src.parse().unwrap());
    }
    let off_delta = simba::simba_stats().since(&mid);
    assert_eq!(
        off_delta.attempts, 0,
        "fast path attempted despite use_simba = false: {off_delta:?}"
    );
}
