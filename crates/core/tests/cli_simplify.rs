//! Integration tests for the `mba_simplify` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mba_simplify"))
}

#[test]
fn simplifies_arguments() {
    let out = bin()
        .arg("2*(x|y) - (~x&y) - (x&~y)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "x+y");
}

#[test]
fn verbose_reports_category_and_alternation() {
    let out = bin()
        .arg("--verbose")
        .arg("(x&~y)*(~x&y) + (x&y)*(x|y)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("x*y"), "got: {text}");
    assert!(text.contains("[poly, alternation 2 -> 0"), "got: {text}");
}

#[test]
fn reads_stdin_line_per_expression() {
    let mut child = bin()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"x + y - 2*(x&y)\n~(x - 1)\n")
        .expect("write");
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout)
        .expect("utf8")
        .lines()
        .collect();
    assert_eq!(lines, ["x^y", "-x"]);
}

#[test]
fn parse_errors_exit_nonzero_but_process_the_rest() {
    let out = bin()
        .arg("((broken")
        .arg("x + 0")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "x");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}

#[test]
fn help_flag_succeeds() {
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
