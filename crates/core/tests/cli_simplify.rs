//! Integration tests for the `mba_simplify` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mba_simplify"))
}

#[test]
fn simplifies_arguments() {
    let out = bin()
        .arg("2*(x|y) - (~x&y) - (x&~y)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "x+y");
}

#[test]
fn verbose_reports_category_and_alternation() {
    let out = bin()
        .arg("--verbose")
        .arg("(x&~y)*(~x&y) + (x&y)*(x|y)")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("x*y"), "got: {text}");
    assert!(text.contains("[poly, alternation 2 -> 0"), "got: {text}");
    assert!(text.contains("tier poly]"), "got: {text}");
}

#[test]
fn synthesis_tier_is_tagged_and_gated_by_flag() {
    // A parity opaque zero the algebraic pipeline cannot cancel: the
    // synthesis tier recovers `x+y` and tags the result.
    let residual = "x + y + ((x*(x+1)) & 1)";
    let out = bin()
        .arg("--verbose")
        .arg(residual)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("x+y"), "got: {text}");
    assert!(text.contains("tier synthesis]"), "got: {text}");

    // With the tier disabled the wrapper survives and the tag says so.
    let out = bin()
        .arg("--verbose")
        .arg("--no-synthesis")
        .arg(residual)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.starts_with("x+y "), "got: {text}");
    assert!(!text.contains("tier synthesis]"), "got: {text}");
}

#[test]
fn reads_stdin_line_per_expression() {
    let mut child = bin()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"x + y - 2*(x&y)\n~(x - 1)\n")
        .expect("write");
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout)
        .expect("utf8")
        .lines()
        .collect();
    assert_eq!(lines, ["x^y", "-x"]);
}

#[test]
fn parse_errors_exit_nonzero_but_process_the_rest() {
    let out = bin()
        .arg("((broken")
        .arg("x + 0")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "x");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}

#[test]
fn help_flag_succeeds() {
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stderr);
    assert!(help.contains("usage"));
    assert!(help.contains("--jobs"), "help must document --jobs: {help}");
    assert!(
        help.contains("--no-cache"),
        "help must document --no-cache: {help}"
    );
    assert!(
        help.contains("--no-synthesis"),
        "help must document --no-synthesis: {help}"
    );
}

#[test]
fn jobs_and_no_cache_flags_do_not_change_output() {
    let exprs = [
        "2*(x|y) - (~x&y) - (x&~y)",
        "x + y - 2*(x&y)",
        "~(x - 1)",
        "(x*y | z) + (x*y & z)",
    ];
    let baseline = bin().args(exprs).output().expect("binary runs");
    assert!(baseline.status.success());
    for extra in [&["--jobs", "3"][..], &["--no-cache"][..]] {
        let out = bin().args(extra).args(exprs).output().expect("binary runs");
        assert!(out.status.success(), "{extra:?} failed");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&baseline.stdout),
            "output drifted under {extra:?}"
        );
    }
}

#[test]
fn jobs_rejects_non_positive_values() {
    for bad in [&["--jobs", "0"][..], &["--jobs", "abc"][..], &["--jobs"][..]] {
        let out = bin().args(bad).arg("x").output().expect("binary runs");
        assert!(!out.status.success(), "{bad:?} must be rejected");
        assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
    }
}
