//! The BDD canonicalization tier and the explicit too-many-vars skip.
//!
//! Below `TruthTable::MAX_VARS` the tier must be invisible (same bytes
//! with it on or off, no flags, no counters). Above the cap it must
//! either canonicalize through the ROBDD engine (`use_bdd: true`) or
//! record an explicit [`TierSkipped::TooManyVars`] instead of the old
//! silent fall-through (`use_bdd: false`).

use std::sync::Arc;

use mba_expr::{Expr, Ident, Valuation};
use mba_obs::MetricsRegistry;
use mba_sig::SigCache;
use mba_solver::{Simplifier, SimplifyConfig, TierSkipped};

fn with_registry(config: SimplifyConfig) -> (Simplifier, Arc<MetricsRegistry>) {
    let obs = Arc::new(MetricsRegistry::new());
    let s = Simplifier::with_metrics(config, Arc::new(SigCache::new()), Arc::clone(&obs));
    (s, obs)
}

/// Nine variables sit inside the truth-table tier: the output is pinned
/// byte-identically with the BDD tier on and off, no flag fires, and
/// neither tier-event counter moves.
#[test]
fn nine_variable_output_is_pinned_and_bdd_free() {
    let src = "(a&b&c&d&e&f&g&h&i) + (a|b) - (a|b)";
    let e: Expr = src.parse().unwrap();
    let (on, obs_on) = with_registry(SimplifyConfig::default());
    let (off, obs_off) = with_registry(SimplifyConfig {
        use_bdd: false,
        ..SimplifyConfig::default()
    });
    let d_on = on.simplify_detailed(&e);
    let d_off = off.simplify_detailed(&e);
    assert_eq!(d_on.output.to_string(), "a&b&c&d&e&f&g&h&i");
    assert_eq!(
        d_on.output.to_string(),
        d_off.output.to_string(),
        "BDD toggle changed bytes at t=9"
    );
    assert!(!d_on.used_bdd);
    assert!(d_on.skipped.is_none());
    assert!(d_off.skipped.is_none());
    for obs in [&obs_on, &obs_off] {
        let snap = obs.snapshot();
        assert_eq!(snap.counter("core.result.bdd_canonicalized"), 0);
        assert_eq!(snap.counter("core.result.skipped.too_many_vars"), 0);
    }
}

/// Thirteen variables exceed every `2^t`-row tier. With the BDD tier on
/// the redundant conjunction collapses to its canonical disjunction;
/// with it off the input survives untouched and the skip is explicit.
#[test]
fn thirteen_variable_bitwise_canonicalizes_through_bdd() {
    let chain = "(a|b|c|d|e|f|g|h|i|j|k|l|m)";
    let e: Expr = format!("{chain} & {chain}").parse().unwrap();
    let vars: Vec<Ident> = e.vars().into_iter().collect();
    assert_eq!(vars.len(), 13);

    let (on, obs) = with_registry(SimplifyConfig::default());
    let d = on.simplify_detailed(&e);
    assert!(d.used_bdd, "BDD tier never fired at t=13");
    // The diagram dedups the two identical disjuncts: 13 vars, 12 ors.
    assert_eq!(d.output.node_count(), 25, "got `{}`", d.output);
    assert_eq!(d.output.vars(), e.vars());
    // Semantics preserved: all-zeros, all-ones, and a single-bit probe.
    for (bits, want) in [(0u64, 0u64), (u64::MAX, u64::MAX)] {
        let v: Valuation = vars.iter().map(|n| (n.clone(), bits)).collect();
        assert_eq!(d.output.eval(&v, 64), want);
    }
    let one_hot: Valuation = vars
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), u64::from(i == 7)))
        .collect();
    assert_eq!(d.output.eval(&one_hot, 64), 1);
    let snap = obs.snapshot();
    assert!(snap.counter("core.result.bdd_canonicalized") >= 1);
    assert_eq!(snap.counter("core.result.skipped.too_many_vars"), 0);

    let (off, obs_off) = with_registry(SimplifyConfig {
        use_bdd: false,
        ..SimplifyConfig::default()
    });
    let d_off = off.simplify_detailed(&e);
    // The pre-BDD behaviour, now observable: the structural peephole
    // still folds the idempotent `X & X`, but the wide chain itself
    // passes through opaque — with an explicit skip record.
    assert_eq!(d_off.output.to_string(), "a|b|c|d|e|f|g|h|i|j|k|l|m");
    assert_eq!(d_off.skipped, Some(TierSkipped::TooManyVars));
    assert!(!d_off.used_bdd);
    let snap_off = obs_off.snapshot();
    assert_eq!(snap_off.counter("core.result.bdd_canonicalized"), 0);
    assert!(snap_off.counter("core.result.skipped.too_many_vars") >= 1);
}

/// The skip is also recorded when the tier is *on* but declines — here
/// because the skeleton has more variables than the tier's own cap.
#[test]
fn beyond_bdd_cap_records_skip_with_tier_on() {
    let names: Vec<String> = (0..25).map(|i| format!("v{i:02}")).collect();
    let chain = names.join(" | ");
    let e: Expr = format!("({chain}) & ({chain})").parse().unwrap();
    assert_eq!(e.vars().len(), 25);
    let (s, obs) = with_registry(SimplifyConfig::default());
    let d = s.simplify_detailed(&e);
    // The 25-variable skeleton itself is declined and recorded as a
    // skip; sub-chains at ≤ 24 variables are still in range, so the
    // result legitimately reports both a skip *and* a BDD firing.
    assert_eq!(d.skipped, Some(TierSkipped::TooManyVars));
    assert!(d.used_bdd, "sub-cap subterms should still canonicalize");
    // Peephole-folded to one chain, the chain itself opaque.
    assert_eq!(d.output.to_string(), names.join("|"));
    assert!(obs.snapshot().counter("core.result.skipped.too_many_vars") >= 1);
}
