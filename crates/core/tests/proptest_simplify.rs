//! The simplifier's one non-negotiable contract, checked under fire:
//! whatever it outputs is semantically identical to the input, at every
//! width, on arbitrary expressions — including ill-behaved non-poly
//! shapes it cannot actually simplify.

use std::sync::Arc;

use mba_expr::{Expr, Valuation};
use mba_sig::SigCache;
use mba_solver::{Basis, Simplifier, SimplifyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arbitrary MBA expressions over {x, y, z}, biased toward the mixed
/// shapes the corpus contains.
fn arb_mba() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        3 => prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
        1 => (-16i128..=16).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.clone().prop_map(|e| !e),
            inner.prop_map(|e| -e),
        ]
    })
}

/// Random-valuation equivalence at the widths the corpus tests exercise
/// (the same sampling check as `corpus_simplification.rs`).
fn equivalent_by_sampling(a: &Expr, b: &Expr, rng: &mut StdRng) -> bool {
    let vars: Vec<_> = a.vars().union(&b.vars()).cloned().collect();
    for _ in 0..16 {
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        for w in [8u32, 16, 32, 64] {
            if a.eval(&v, w) != b.eval(&v, w) {
                return false;
            }
        }
    }
    true
}

/// One simplifier per basis, shared across all proptest cases so the
/// signature cache keeps warming up as cases accumulate — later cases
/// exercise the *cached* re-expression paths, not just cold computes.
fn shared_simplifier(basis: Basis) -> &'static Simplifier {
    use std::sync::OnceLock;
    static AND: OnceLock<Simplifier> = OnceLock::new();
    static OR: OnceLock<Simplifier> = OnceLock::new();
    let build = move || {
        Simplifier::with_cache(
            SimplifyConfig {
                basis,
                ..SimplifyConfig::default()
            },
            Arc::new(SigCache::new()),
        )
    };
    match basis {
        Basis::Or => OR.get_or_init(build),
        _ => AND.get_or_init(build),
    }
}

fn assert_same_semantics(a: &Expr, b: &Expr, x: u64, y: u64, z: u64) -> Result<(), TestCaseError> {
    let v = Valuation::new().with("x", x).with("y", y).with("z", z);
    for w in [1u32, 8, 17, 32, 64] {
        prop_assert_eq!(
            a.eval(&v, w),
            b.eval(&v, w),
            "`{}` vs `{}` at ({},{},{}) width {}",
            a,
            b,
            x,
            y,
            z,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Soundness: output ≡ input for the default configuration.
    #[test]
    fn simplify_preserves_semantics(
        e in arb_mba(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let s = Simplifier::new();
        let out = s.simplify(&e);
        assert_same_semantics(&e, &out, x, y, z)?;
    }

    /// Soundness holds with every optimization disabled or varied.
    #[test]
    fn simplify_preserves_semantics_all_configs(
        e in arb_mba(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        for config in [
            SimplifyConfig { final_step: false, ..SimplifyConfig::default() },
            SimplifyConfig { use_cache: false, ..SimplifyConfig::default() },
            SimplifyConfig { basis: Basis::Or, ..SimplifyConfig::default() },
            SimplifyConfig { max_rounds: 1, ..SimplifyConfig::default() },
            SimplifyConfig { max_monomials: 8, ..SimplifyConfig::default() },
        ] {
            let s = Simplifier::with_config(config);
            let out = s.simplify(&e);
            assert_same_semantics(&e, &out, x, y, 0)?;
        }
    }

    /// Idempotence: simplifying a simplified expression changes nothing
    /// (the fixpoint is real).
    #[test]
    fn simplify_is_idempotent(e in arb_mba()) {
        let s = Simplifier::new();
        let once = s.simplify(&e);
        let twice = s.simplify(&once);
        prop_assert_eq!(&once, &twice, "not a fixpoint: `{}` -> `{}`", once, twice);
    }

    /// The output never scores worse than the input.
    #[test]
    fn simplify_never_regresses(e in arb_mba()) {
        let s = Simplifier::new();
        let d = s.simplify_detailed(&e);
        prop_assert!(
            d.output_metrics.alternation <= d.input_metrics.alternation,
            "alternation grew on `{}`", e
        );
    }

    /// Cached basis re-expressions stay semantically equivalent: a
    /// simplifier whose signature cache warms up across cases must
    /// produce outputs that (a) survive random valuations at widths
    /// {8,16,32,64} and (b) match a cold cache-off simplifier
    /// byte-for-byte — in both the ∧ and ∨ bases.
    #[test]
    fn cached_basis_reexpressions_stay_equivalent(
        e in arb_mba(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for basis in [Basis::And, Basis::Or] {
            let warm = shared_simplifier(basis);
            let out = warm.simplify(&e);
            prop_assert!(
                equivalent_by_sampling(&e, &out, &mut rng),
                "cached {:?}-basis output `{}` diverged from `{}`",
                basis,
                out,
                e
            );
            let cold = Simplifier::with_config(SimplifyConfig {
                use_cache: false,
                basis,
                ..SimplifyConfig::default()
            });
            prop_assert_eq!(
                out.to_string(),
                cold.simplify(&e).to_string(),
                "warm cache changed the {:?}-basis output of `{}`",
                basis,
                e
            );
        }
    }

    /// proves_equivalent is sound: a `true` verdict survives random
    /// evaluation.
    #[test]
    fn poly_equivalence_proofs_are_sound(
        a in arb_mba(),
        b in arb_mba(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let s = Simplifier::new();
        if s.proves_equivalent(&a, &b) == Some(true) {
            assert_same_semantics(&a, &b, x, y, z)?;
        }
        // Reflexivity must always be provable (unless it bails).
        if let Some(verdict) = s.proves_equivalent(&a, &a) {
            prop_assert!(verdict, "reflexivity failed on `{}`", a);
        }
    }
}
