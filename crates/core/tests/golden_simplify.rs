//! Golden-file snapshot tests for the `mba_simplify` CLI.
//!
//! `tests/golden/inputs.txt` holds ten fixed expressions spanning the
//! linear / polynomial / non-polynomial categories;
//! `expected.txt` and `expected_verbose.txt` pin the exact bytes the
//! CLI must print for them. Any intentional output change should
//! regenerate the snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mba-solver --test golden_simplify
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_cli(args: &[&str], stdin: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mba_simplify"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success(), "mba_simplify {args:?} failed");
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn check_snapshot(args: &[&str], snapshot: &str) {
    let dir = golden_dir();
    let inputs = std::fs::read_to_string(dir.join("inputs.txt")).expect("inputs.txt");
    assert_eq!(
        inputs.lines().filter(|l| !l.trim().is_empty()).count(),
        10,
        "the golden corpus is pinned at ten expressions"
    );
    let got = run_cli(args, &inputs);
    let path = dir.join(snapshot);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("update snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        got,
        want,
        "`mba_simplify {}` drifted from {} — if intentional, \
         regenerate with UPDATE_GOLDEN=1",
        args.join(" "),
        path.display()
    );
}

#[test]
fn golden_plain_output() {
    check_snapshot(&[], "expected.txt");
}

#[test]
fn golden_verbose_output() {
    check_snapshot(&["--verbose"], "expected_verbose.txt");
}

#[test]
fn golden_output_is_stable_under_jobs_and_no_cache() {
    // The snapshots also pin the batch and cache-off paths: every flag
    // combination must reproduce the same bytes as the plain run.
    check_snapshot(&["--jobs", "4"], "expected.txt");
    check_snapshot(&["--no-cache"], "expected.txt");
    check_snapshot(&["--jobs", "2", "--no-cache"], "expected.txt");
    check_snapshot(&["--verbose", "--jobs", "4"], "expected_verbose.txt");
}

#[test]
fn golden_plain_output_is_stable_without_synthesis() {
    // None of the ten golden inputs is a synthesis residual, so
    // disabling the tier must be byte-invisible here (the snapshot
    // pins the on/off agreement the synth-differential CI job checks
    // property-style).
    check_snapshot(&["--no-synthesis"], "expected.txt");
}
