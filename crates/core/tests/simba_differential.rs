//! Pipeline-level differential: the `use_simba` flag selects a *route*,
//! never a *result*. Over seeded corpora from every `mba-gen` source —
//! obfuscated linear/semi-linear/poly targets and free-form random ASTs
//! (including the mask-steered semi-linear distribution) — simplifying
//! with the fast path on and off must produce byte-identical output at
//! every supported width. This is the executable form of the fast-path
//! contract in DESIGN.md: the corner route feeds the *same* coefficient
//! expansion as the truth-table route, so disagreement anywhere is a
//! recovery bug, not a style difference.

use mba_gen::random::{random_expr, RandomExprConfig};
use mba_gen::{ObfuscationKind, Obfuscator};
use mba_solver::{Simplifier, SimplifyConfig};
use mba_expr::{BinOp, Expr, UnOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTHS: [u32; 4] = [8, 16, 32, 64];

fn pair(width: u32) -> (Simplifier, Simplifier) {
    let on = Simplifier::with_config(SimplifyConfig {
        width,
        ..SimplifyConfig::default()
    });
    let off = Simplifier::with_config(SimplifyConfig {
        width,
        use_simba: false,
        ..SimplifyConfig::default()
    });
    (on, off)
}

fn assert_identical(cases: &[Expr], label: &str) {
    for width in WIDTHS {
        let (on, off) = pair(width);
        for e in cases {
            let a = on.simplify_detailed(e).output;
            let b = off.simplify_detailed(e).output;
            assert_eq!(
                a, b,
                "{label}: width {width}: fast path on/off diverge on `{e}`"
            );
        }
    }
}

#[test]
fn obfuscated_corpora_are_route_independent() {
    let mut rng = StdRng::seed_from_u64(42);
    let ob = Obfuscator::new();
    let targets: Vec<Expr> = ["x", "x + y", "x & y", "x ^ y", "2*x - y", "x + y + z"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut cases = Vec::new();
    for kind in [
        ObfuscationKind::Linear,
        ObfuscationKind::SemiLinear,
        ObfuscationKind::Polynomial,
        ObfuscationKind::NonPolynomial,
    ] {
        for t in &targets {
            for _ in 0..4 {
                cases.push(ob.obfuscate(t, kind, &mut rng));
            }
        }
    }
    assert_identical(&cases, "obfuscated");
}

#[test]
fn random_ast_corpus_is_route_independent() {
    let config = RandomExprConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    let cases: Vec<Expr> = (0..150).map(|_| random_expr(&mut rng, &config)).collect();
    assert_identical(&cases, "random-ast");
}

#[test]
fn negated_literal_constants_are_route_independent() {
    // Regression: fuzz seed 42, iteration 4609. The generated AST holds
    // `-0` — arithmetic negation of a literal — which `is_pure_bitwise`
    // folds to a bit-uniform constant but the truth-table route's
    // skeleton used to abstract into an opaque temporary, blinding it
    // to the absorption `(-1^x|0)&(~x|…) ≡ ~x` the corner route sees.
    // The printed form can't pin this (the parser folds `-CONST`), so
    // build the offending AST directly.
    let x = || Expr::Var("x".into());
    let factor = Expr::binary(
        BinOp::And,
        Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Xor, Expr::Const(-1), x()),
            Expr::unary(UnOp::Neg, Expr::Const(0)),
        ),
        Expr::binary(
            BinOp::Or,
            Expr::unary(UnOp::Not, x()),
            Expr::binary(BinOp::And, Expr::Var("z".into()), Expr::Var("y".into())),
        ),
    );
    let cases = [
        Expr::binary(BinOp::Or, factor.clone(), Expr::Const(-4)),
        factor,
        // The double-negation spelling of −1 must fold the same way.
        Expr::binary(
            BinOp::Xor,
            Expr::unary(UnOp::Neg, Expr::unary(UnOp::Neg, Expr::Const(-1))),
            x(),
        ),
    ];
    assert_identical(&cases, "negated-literal");
}

#[test]
fn mask_steered_corpus_is_route_independent() {
    // The mask-steered stream concentrates on bitwise-with-constant
    // shapes — exactly the semi-linear tier's jurisdiction, where a
    // route-dependent bug would most plausibly hide.
    let config = RandomExprConfig {
        mask_const_prob: 0.5,
        ..RandomExprConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let cases: Vec<Expr> = (0..150).map(|_| random_expr(&mut rng, &config)).collect();
    assert_identical(&cases, "mask-steered");
}
