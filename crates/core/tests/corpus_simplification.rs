//! End-to-end: MBA-Solver vs a generated corpus (a small-scale preview
//! of the paper's Table 6 experiment).

use mba_expr::{Expr, Valuation};
use mba_gen::{Corpus, CorpusConfig, ObfuscationKind};
use mba_solver::Simplifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn equivalent_by_sampling(a: &Expr, b: &Expr, rng: &mut StdRng) -> bool {
    let vars: Vec<_> = a.vars().union(&b.vars()).cloned().collect();
    for _ in 0..16 {
        let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
        for w in [8u32, 64] {
            if a.eval(&v, w) != b.eval(&v, w) {
                return false;
            }
        }
    }
    true
}

#[test]
fn simplifier_handles_a_generated_corpus() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 2024,
        per_category: 25,
    });
    let simplifier = Simplifier::new();
    let mut rng = StdRng::seed_from_u64(7);

    let mut reduced = 0usize;
    for sample in corpus.samples() {
        let detail = simplifier.simplify_detailed(&sample.obfuscated);
        // Soundness: the output is always equivalent to the input.
        assert!(
            equivalent_by_sampling(&detail.output, &sample.ground_truth, &mut rng),
            "unsound simplification of {sample}: got {}",
            detail.output
        );
        if detail.output_metrics.alternation <= 2 {
            reduced += 1;
        }
    }
    // The paper reports 96.5% of samples becoming solver-friendly; at
    // this scale we demand at least 90% landing at alternation ≤ 2.
    let ratio = reduced as f64 / corpus.len() as f64;
    assert!(
        ratio >= 0.9,
        "only {reduced}/{} samples reduced to low alternation",
        corpus.len()
    );
}

#[test]
fn linear_samples_simplify_to_their_ground_truth_signature() {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 31337,
        per_category: 20,
    });
    let simplifier = Simplifier::new();
    for sample in corpus.by_kind(ObfuscationKind::Linear) {
        let out = simplifier.simplify(&sample.obfuscated);
        // For linear MBA, simplification must be *complete*: the result
        // is provably equal to the ground truth via the polynomial
        // certificate.
        assert_eq!(
            simplifier.proves_equivalent(&out, &sample.ground_truth),
            Some(true),
            "linear sample not fully reduced: {sample} -> {out}"
        );
    }
}
