//! Satellite: metrics snapshots must be *byte-identical* across worker
//! counts for the scheduling-independent slice of the registry.
//!
//! The batch API promises results byte-identical across `--jobs`
//! values; the `core.result.*` counters are pure functions of those
//! results, so their rendered snapshot must be byte-identical too.
//! Stage-span counts and cache hit/miss tallies legitimately vary with
//! scheduling (whichever worker reaches a subtree first pays the miss),
//! which is exactly why the telemetry contract scopes determinism to
//! the `core.result` prefix — this test pins both the promise and its
//! boundary.

use std::sync::Arc;

use mba_gen::{Corpus, CorpusConfig};
use mba_obs::MetricsRegistry;
use mba_sig::SigCache;
use mba_solver::{Simplifier, SimplifyConfig};

fn seeded_corpus() -> Vec<mba_expr::Expr> {
    let mut corpus = Vec::new();
    // Fixed hand-picked inputs exercising every stage…
    for src in [
        "2*(x|y) - (~x&y) - (x&~y)",
        "x + y - 2*(x&y)",
        "(x&~y)*(~x&y) + (x&y)*(x|y)",
        "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
        "~(x - 1)",
        "(x*y | z) + (x*y & z)",
        "x ^ x",
        "(x ^ y ^ z) * (x & y & z) - 17",
    ] {
        corpus.push(src.parse().unwrap());
    }
    // …plus a seeded generated batch (8 per category, all three
    // categories) so the corpus is not toy-sized.
    let generated = Corpus::generate(&CorpusConfig {
        seed: 0xB1A5_ED5E,
        per_category: 8,
    });
    corpus.extend(generated.samples().iter().map(|s| s.obfuscated.clone()));
    corpus
}

fn result_snapshot_json(corpus: &[mba_expr::Expr], jobs: usize) -> String {
    let obs = Arc::new(MetricsRegistry::new());
    let simplifier = Simplifier::with_metrics(
        SimplifyConfig::default(),
        Arc::new(SigCache::new()),
        Arc::clone(&obs),
    );
    simplifier.simplify_batch_with_jobs(corpus, jobs);
    obs.snapshot().filter_prefix("core.result").render_json()
}

#[test]
fn result_counters_byte_identical_across_jobs_1_0_64() {
    let corpus = seeded_corpus();
    let reference = result_snapshot_json(&corpus, 1);
    assert!(
        reference.contains("core.result.exprs"),
        "corpus produced no result counters: {reference}"
    );
    for jobs in [0usize, 64] {
        let got = result_snapshot_json(&corpus, jobs);
        assert_eq!(
            got, reference,
            "core.result.* snapshot diverged at jobs={jobs}"
        );
    }
}

#[test]
fn result_counters_stable_across_repeat_runs() {
    // Same corpus, same jobs, fresh registries: still byte-identical —
    // nothing time- or address-dependent leaks into the counters.
    let corpus = seeded_corpus();
    let a = result_snapshot_json(&corpus, 0);
    let b = result_snapshot_json(&corpus, 0);
    assert_eq!(a, b);
}
