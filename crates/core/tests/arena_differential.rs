//! Pipeline-level differential: the `use_arena` flag selects a *data
//! representation*, never a *result*. Over seeded corpora from every
//! `mba-gen` source — obfuscated linear/semi-linear/poly targets,
//! free-form random ASTs, the mask-steered semi-linear distribution,
//! and the negated-literal regression shapes — simplifying with the
//! hash-consed arena on and off must produce byte-identical output at
//! every supported width and worker count. This is the executable form
//! of the arena contract in DESIGN.md §14: the id-compiled tape and the
//! id-keyed truth tables are byte-identical to their tree-walking
//! twins, so disagreement anywhere is an interning bug, not a style
//! difference.

use mba_expr::{BinOp, Expr, UnOp};
use mba_gen::random::{random_expr, RandomExprConfig};
use mba_gen::{ObfuscationKind, Obfuscator};
use mba_solver::{Simplifier, SimplifyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTHS: [u32; 4] = [8, 16, 32, 64];

fn pair(width: u32) -> (Simplifier, Simplifier) {
    let on = Simplifier::with_config(SimplifyConfig {
        width,
        ..SimplifyConfig::default()
    });
    let off = Simplifier::with_config(SimplifyConfig {
        width,
        use_arena: false,
        ..SimplifyConfig::default()
    });
    (on, off)
}

fn assert_identical(cases: &[Expr], label: &str) {
    for width in WIDTHS {
        let (on, off) = pair(width);
        for e in cases {
            let a = on.simplify_detailed(e).output;
            let b = off.simplify_detailed(e).output;
            assert_eq!(
                a, b,
                "{label}: width {width}: arena on/off diverge on `{e}`"
            );
        }
        // The arena-on side actually used the arena for this corpus.
        assert!(
            !on.arena().is_empty(),
            "{label}: width {width}: arena-on run never interned"
        );
        assert_eq!(off.arena().len(), 0, "{label}: arena-off run interned");
    }
}

fn obfuscated_corpus() -> Vec<Expr> {
    let mut rng = StdRng::seed_from_u64(42);
    let ob = Obfuscator::new();
    let targets: Vec<Expr> = ["x", "x + y", "x & y", "x ^ y", "2*x - y", "x + y + z"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut cases = Vec::new();
    for kind in [
        ObfuscationKind::Linear,
        ObfuscationKind::SemiLinear,
        ObfuscationKind::Polynomial,
        ObfuscationKind::NonPolynomial,
    ] {
        for t in &targets {
            for _ in 0..4 {
                cases.push(ob.obfuscate(t, kind, &mut rng));
            }
        }
    }
    cases
}

#[test]
fn obfuscated_corpora_are_representation_independent() {
    assert_identical(&obfuscated_corpus(), "obfuscated");
}

#[test]
fn random_ast_corpus_is_representation_independent() {
    let config = RandomExprConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    let cases: Vec<Expr> = (0..150).map(|_| random_expr(&mut rng, &config)).collect();
    assert_identical(&cases, "random-ast");
}

#[test]
fn negated_literal_constants_are_representation_independent() {
    // The PR 6 negated-literal regression shapes: `-0` and `- -1`
    // chains that `is_pure_bitwise` folds to bit-uniform constants. The
    // arena's `skeleton_id` must admit exactly the same constants the
    // tree skeleton admits — its `literal` metadata is the incremental
    // form of the same fold — or the two routes see different atoms.
    let x = || Expr::Var("x".into());
    let factor = Expr::binary(
        BinOp::And,
        Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Xor, Expr::Const(-1), x()),
            Expr::unary(UnOp::Neg, Expr::Const(0)),
        ),
        Expr::binary(
            BinOp::Or,
            Expr::unary(UnOp::Not, x()),
            Expr::binary(BinOp::And, Expr::Var("z".into()), Expr::Var("y".into())),
        ),
    );
    let cases = [
        Expr::binary(BinOp::Or, factor.clone(), Expr::Const(-4)),
        factor,
        Expr::binary(
            BinOp::Xor,
            Expr::unary(UnOp::Neg, Expr::unary(UnOp::Neg, Expr::Const(-1))),
            x(),
        ),
    ];
    assert_identical(&cases, "negated-literal");
}

#[test]
fn mask_steered_corpus_is_representation_independent() {
    let config = RandomExprConfig {
        mask_const_prob: 0.5,
        ..RandomExprConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let cases: Vec<Expr> = (0..150).map(|_| random_expr(&mut rng, &config)).collect();
    assert_identical(&cases, "mask-steered");
}

#[test]
fn batch_jobs_and_ref_entry_points_are_byte_identical() {
    // The shared arena across batch workers must not leak scheduling
    // into outputs, at either batch entry point. `simplify_batch_refs`
    // shares interned ids across workers with no per-job deep clone;
    // results must match the owned entry point and the sequential
    // reference at every worker count.
    let cases = obfuscated_corpus();
    let reference: Vec<String> = {
        let s = Simplifier::new();
        cases.iter().map(|e| s.simplify(e).to_string()).collect()
    };
    for jobs in [0usize, 1, 64] {
        let owned = Simplifier::new();
        let got: Vec<String> = owned
            .simplify_batch_with_jobs(&cases, jobs)
            .iter()
            .map(|r| r.output.to_string())
            .collect();
        assert_eq!(got, reference, "owned batch diverged at jobs={jobs}");

        let by_ref = Simplifier::new();
        let refs: Vec<&Expr> = cases.iter().collect();
        let got: Vec<String> = by_ref
            .simplify_batch_refs(&refs, jobs)
            .iter()
            .map(|r| r.output.to_string())
            .collect();
        assert_eq!(got, reference, "ref batch diverged at jobs={jobs}");
    }
}

#[test]
fn arena_interning_pays_off_across_a_corpus() {
    // Stats gate: one shared simplifier over an obfuscated corpus must
    // actually exercise the hash-consing — repeated subtrees across
    // cases intern to existing ids (hits), and the store stays far
    // smaller than the corpus' total node count.
    let s = Simplifier::new();
    let cases = obfuscated_corpus();
    let total_nodes: usize = cases.iter().map(Expr::node_count).sum();
    for e in &cases {
        s.simplify(e);
    }
    let stats = s.arena().stats();
    assert!(stats.nodes > 0, "nothing interned");
    assert!(stats.interned_hits > 0, "no structure sharing observed");
    assert!(
        stats.nodes < total_nodes as u64,
        "arena stored {} nodes for a {}-node corpus — no sharing at all",
        stats.nodes,
        total_nodes
    );
    assert!(stats.bytes > 0);
}
