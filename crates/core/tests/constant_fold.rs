//! The constant fast fold: variable-free inputs evaluate directly,
//! ahead of the SiMBA fast path's attempt counter — a constant is not a
//! (guaranteed-futile) corner-recovery attempt. Lives in its own test
//! binary because the simba counters are process-global and any
//! concurrently running simplify would race the zero-delta assertion.

use mba_sig::simba;
use mba_solver::Simplifier;

#[test]
fn constants_fold_without_a_simba_attempt() {
    let before = simba::simba_stats();
    let s = Simplifier::new();
    for (src, want) in [
        ("5", "5"),
        ("2 + 3", "5"),
        ("~0", "-1"),
        ("0 - 9", "-9"),
        ("2*3 + 1", "7"),
        ("~0 & ~0", "-1"),
        ("(1 | 2) + (4 ^ 1)", "8"),
    ] {
        let out = s.simplify(&src.parse().unwrap());
        assert_eq!(out.to_string(), want, "`{src}`");
    }
    let delta = simba::simba_stats().since(&before);
    assert_eq!(
        delta.attempts, 0,
        "constant inputs must not count as fast-path attempts: {delta:?}"
    );
}
