//! Signature vectors (paper §4.1, Definition 3) and their normalized
//! reconstruction (§4.2–§4.3).

use std::fmt;

use mba_expr::classify::{decompose_term, flatten_sum};
use mba_expr::{Expr, Ident};
use mba_linalg::{Matrix, Rational};
use serde::{Deserialize, Serialize};

use crate::basis::{self, linear_combination};
use crate::truth::{NotBitwiseError, TruthTable};

/// Error returned when a signature vector is requested for an expression
/// that is not a linear MBA over the given variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotLinearError {
    detail: String,
}

impl NotLinearError {
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        NotLinearError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for NotLinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a linear MBA expression: {}", self.detail)
    }
}

impl std::error::Error for NotLinearError {}

impl From<NotBitwiseError> for NotLinearError {
    fn from(e: NotBitwiseError) -> Self {
        NotLinearError::new(e.to_string())
    }
}

/// The signature vector of a linear MBA expression: `s = M·v` where `M`
/// is the truth-table matrix of its bitwise terms and `v` the coefficient
/// vector (Definition 3).
///
/// By Theorem 1 the signature characterizes the expression's semantics:
/// two linear MBA expressions over the same variables are equivalent iff
/// their signatures are equal — which also makes the signature the cache
/// key for the §4.5 lookup table.
///
/// Components are indexed by variable assignment with the *first*
/// variable as the most significant bit, matching the row order of the
/// paper's tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignatureVector {
    num_vars: usize,
    components: Vec<i128>,
}

impl SignatureVector {
    /// Computes the signature of a linear MBA expression over the ordered
    /// variables `vars`.
    ///
    /// Constant terms `c` are folded through the all-ones column as
    /// `(−c)·(−1)`, the encoding that makes identities hold on the
    /// two's-complement ring (§2.1).
    ///
    /// # Errors
    ///
    /// Fails if any term has more than one non-constant factor or a
    /// factor that is not pure bitwise (i.e. the expression is not linear
    /// per Definition 1), or if a variable falls outside `vars`.
    ///
    /// ```
    /// use mba_expr::{Expr, Ident};
    /// use mba_sig::SignatureVector;
    /// let e: Expr = "x - y".parse().unwrap();
    /// let vars = [Ident::new("x"), Ident::new("y")];
    /// let s = SignatureVector::of_linear(&e, &vars).unwrap();
    /// assert_eq!(s.components(), [0, -1, 1, 0]);
    /// ```
    pub fn of_linear(e: &Expr, vars: &[Ident]) -> Result<SignatureVector, NotLinearError> {
        let rows = 1usize << vars.len();
        let mut components = vec![0i128; rows];
        for term in flatten_sum(e) {
            let parts = decompose_term(term.expr, term.sign);
            match parts.factors.as_slice() {
                [] => {
                    // Constant c == (-c) * (-1): add -c on the all-ones
                    // column. Subtract rather than negate-then-add:
                    // `-c` itself overflows for `c == i128::MIN`, while
                    // `checked_sub` folds that case into the same
                    // overflow error as any other out-of-range sum.
                    for s in &mut components {
                        *s = s
                            .checked_sub(parts.coefficient)
                            .ok_or_else(|| NotLinearError::new("signature overflow"))?;
                    }
                }
                [factor] => {
                    let tt = TruthTable::of(factor, vars)?;
                    for (r, s) in components.iter_mut().enumerate() {
                        if tt.row(r) {
                            *s = s
                                .checked_add(parts.coefficient)
                                .ok_or_else(|| NotLinearError::new("signature overflow"))?;
                        }
                    }
                }
                _ => {
                    return Err(NotLinearError::new(format!(
                        "term `{}` has degree {}",
                        term.expr,
                        parts.factors.len()
                    )));
                }
            }
        }
        Ok(SignatureVector {
            num_vars: vars.len(),
            components,
        })
    }

    /// The signature of a single pure bitwise expression (coefficient 1):
    /// its truth-table column.
    ///
    /// # Errors
    ///
    /// Fails when `e` has no truth table over `vars`.
    pub fn of_bitwise(e: &Expr, vars: &[Ident]) -> Result<SignatureVector, NotLinearError> {
        let tt = TruthTable::of(e, vars)?;
        Ok(SignatureVector::from_truth_table(&tt))
    }

    /// The 0/1 signature of a truth-table column.
    pub fn from_truth_table(tt: &TruthTable) -> SignatureVector {
        SignatureVector {
            num_vars: tt.num_vars(),
            components: tt.column(),
        }
    }

    /// Builds a signature from raw components.
    ///
    /// # Panics
    ///
    /// Panics if `components.len()` is not `2^num_vars`.
    pub fn from_components(num_vars: usize, components: Vec<i128>) -> SignatureVector {
        assert_eq!(
            components.len(),
            1usize << num_vars,
            "signature must have 2^t components"
        );
        SignatureVector {
            num_vars,
            components,
        }
    }

    /// Number of variables `t`.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The components, row 0 (all variables false) first.
    pub fn components(&self) -> &[i128] {
        &self.components
    }

    /// Coefficients in the normalized basis
    /// `{−1} ∪ {∧S : ∅ ≠ S ⊆ vars}` (the generalization of Table 4),
    /// obtained by exact Möbius inversion over the subset lattice.
    ///
    /// The result is indexed by subset mask `S` over *row-index bit
    /// positions* (bit `p` of `S` ↔ the variable occupying bit `p` of the
    /// row index); index 0 is the coefficient of the all-ones column,
    /// i.e. of the constant `−1`.
    ///
    /// The normalized basis matrix is the subset zeta matrix, which is
    /// unimodular — so the coefficients are always integers and the
    /// inversion never fails, unlike a general linear solve.
    pub fn normalized_coefficients(&self) -> Vec<i128> {
        let mut c = self.components.clone();
        for p in 0..self.num_vars {
            let bit = 1usize << p;
            for s in 0..c.len() {
                if s & bit != 0 {
                    c[s] -= c[s ^ bit];
                }
            }
        }
        c
    }

    /// Renders the signature as a normalized MBA expression over `vars`:
    /// a linear combination of `x_i`, `∧`-terms, and a constant — the
    /// §4.3 reduction that leaves at most one bitwise operator kind and
    /// therefore minimal MBA alternation.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != self.num_vars()`.
    ///
    /// ```
    /// use mba_expr::Ident;
    /// use mba_sig::SignatureVector;
    /// let vars = [Ident::new("x"), Ident::new("y")];
    /// let s = SignatureVector::from_components(2, vec![0, 1, 1, 2]);
    /// assert_eq!(s.to_normalized_expr(&vars).to_string(), "x+y");
    /// ```
    pub fn to_normalized_expr(&self, vars: &[Ident]) -> Expr {
        assert_eq!(vars.len(), self.num_vars, "variable count mismatch");
        let coeffs = self.normalized_coefficients();
        let t = self.num_vars;
        // Order: singleton subsets in variable order, then larger subsets
        // (by size, then variable order), then the constant term.
        let mut subsets: Vec<usize> = (1..coeffs.len()).collect();
        subsets.sort_by_key(|&s| (s.count_ones(), subset_sort_key(s, t)));
        let mut terms: Vec<(i128, Expr)> = Vec::new();
        for s in subsets {
            terms.push((coeffs[s], and_of_subset(s, vars)));
        }
        terms.push((coeffs[0], Expr::minus_one()));
        linear_combination(&terms)
    }

    /// If the signature is a scalar multiple `c · column(f)` of a single
    /// boolean function's truth column, returns `(c, f)`. This is the
    /// entry point of the final-step optimization (§4.5): such a
    /// signature folds back to `c · <bitwise expression for f>`.
    ///
    /// A zero signature returns `(0, the constant-false table)`.
    pub fn as_scaled_truth_table(&self) -> Option<(i128, TruthTable)> {
        if self.num_vars > TruthTable::PACKED_MAX_VARS {
            return None;
        }
        let c = self.components.iter().copied().find(|&v| v != 0).unwrap_or(0);
        let mut bits = 0u64;
        for (r, &v) in self.components.iter().enumerate() {
            if v == c && c != 0 {
                bits |= 1 << r;
            } else if v != 0 {
                return None;
            }
        }
        Some((c, TruthTable::from_bits(self.num_vars, bits)))
    }

    /// Expresses the signature in an arbitrary basis of bitwise
    /// expressions, returning integer coefficients if an integer solution
    /// exists. Used for alternative normalized bases such as the paper's
    /// Table 9 `{x, y, x∨y, −1}` (§7).
    ///
    /// # Errors
    ///
    /// Fails when some basis element has no truth table over `vars`.
    pub fn solve_in_basis(
        &self,
        basis: &[Expr],
        vars: &[Ident],
    ) -> Result<Option<Vec<i128>>, NotLinearError> {
        let mut columns = Vec::with_capacity(basis.len());
        for b in basis {
            if *b == Expr::Const(-1) {
                columns.push(vec![1i128; 1 << vars.len()]);
            } else {
                columns.push(TruthTable::of(b, vars)?.column());
            }
        }
        let m = Matrix::from_i128_columns(&columns);
        let rationals: Vec<Rational> = self.components.iter().map(|&v| Rational::from(v)).collect();
        let Some(solution) = m.solve(&rationals) else {
            return Ok(None);
        };
        Ok(solution.iter().map(Rational::to_integer).collect())
    }
}

impl fmt::Display for SignatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.components.iter().map(i128::to_string).collect();
        write!(f, "({})", parts.join(","))
    }
}

/// Sort key ordering subsets by the positions of their variables in
/// declaration order (row-index bit `t-1` is the first variable).
pub(crate) fn subset_sort_key(s: usize, t: usize) -> Vec<usize> {
    (0..t).filter(|j| s & (1 << (t - 1 - j)) != 0).collect()
}

/// The conjunction of the variables selected by row-index bit mask `s`.
pub(crate) fn and_of_subset(s: usize, vars: &[Ident]) -> Expr {
    let t = vars.len();
    let selected: Vec<&Ident> = (0..t)
        .filter(|j| s & (1 << (t - 1 - j)) != 0)
        .map(|j| &vars[j])
        .collect();
    basis::and_chain(&selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars2() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y")]
    }

    fn sig(src: &str) -> SignatureVector {
        SignatureVector::of_linear(&src.parse().unwrap(), &vars2()).unwrap()
    }

    #[test]
    fn example_2_signature() {
        // §4.1 Example 2: E = 2(x∨y) − (¬x∧y) − (x∧¬y), s = (0,1,1,2).
        assert_eq!(sig("2*(x|y) - (~x&y) - (x&~y)").components(), [0, 1, 1, 2]);
    }

    #[test]
    fn example_2_normalization_gives_x_plus_y() {
        let e = sig("2*(x|y) - (~x&y) - (x&~y)").to_normalized_expr(&vars2());
        assert_eq!(e.to_string(), "x+y");
    }

    #[test]
    fn equivalent_forms_share_signatures() {
        // §4.2: E' = (¬x∧y) + (x∧¬y) + 2(x∧y) has the same signature.
        assert_eq!(
            sig("2*(x|y) - (~x&y) - (x&~y)"),
            sig("(~x&y) + (x&~y) + 2*(x&y)")
        );
        assert_eq!(sig("x + y"), sig("2*(x|y) - (x^y)"));
    }

    #[test]
    fn constant_terms_use_minus_one_encoding() {
        // 4 == -4 * (-1): every component shifts by -4.
        assert_eq!(sig("4").components(), [-4, -4, -4, -4]);
        assert_eq!(sig("x + 4").components(), [-4, -4, -3, -3]);
    }

    #[test]
    fn section_4_4_sub_expressions() {
        // §4.4: x∧¬y → x − (x∧y), ¬x∧y → y − (x∧y), x∨y → x + y − (x∧y).
        let v = vars2();
        let cases = [
            ("x & ~y", "x-(x&y)"),
            ("~x & y", "y-(x&y)"),
            ("x | y", "x+y-(x&y)"),
        ];
        for (input, expected) in cases {
            let s = SignatureVector::of_bitwise(&input.parse().unwrap(), &v).unwrap();
            assert_eq!(s.to_normalized_expr(&v).to_string(), expected, "{input}");
        }
    }

    #[test]
    fn moebius_coefficients_match_paper_solution() {
        // §4.3 solves (0,1,1,2) = C1(0,0,1,1)+C2(0,1,0,1)+C3(0,0,0,1)+C4(1,1,1,1)
        // with C = (1, 1, 0, 0).
        let s = SignatureVector::from_components(2, vec![0, 1, 1, 2]);
        let c = s.normalized_coefficients();
        // Index: 0 = constant, 0b10 = x (high bit), 0b01 = y, 0b11 = x∧y.
        assert_eq!(c[0], 0);
        assert_eq!(c[0b10], 1);
        assert_eq!(c[0b01], 1);
        assert_eq!(c[0b11], 0);
    }

    #[test]
    fn three_variable_normalization() {
        let vars = vec![Ident::new("x"), Ident::new("y"), Ident::new("z")];
        let e: Expr = "(x&y&z) + (x|y) - (x|y) + z".parse().unwrap();
        let s = SignatureVector::of_linear(&e, &vars).unwrap();
        assert_eq!(s.to_normalized_expr(&vars).to_string(), "z+(x&y&z)");
    }

    #[test]
    fn i128_min_constant_is_an_overflow_error_not_a_panic() {
        // Regression: the constant-term case computed `-coefficient`,
        // which panics in debug (wraps in release) for `i128::MIN`
        // before the checked add could catch it.
        let err = SignatureVector::of_linear(&Expr::constant(i128::MIN), &vars2()).unwrap_err();
        assert!(err.to_string().contains("signature overflow"), "{err}");
        // Same coefficient reached through a product.
        let e = Expr::binary(
            mba_expr::BinOp::Mul,
            Expr::constant(i128::MIN),
            "x & y".parse().unwrap(),
        );
        // A bitwise factor with an i128::MIN coefficient overflows the
        // signature on the rows where the factor is 1... adding
        // i128::MIN to 0 is in range, so this one must *succeed*.
        let s = SignatureVector::of_linear(&e, &vars2()).unwrap();
        assert_eq!(s.components(), [0, 0, 0, i128::MIN]);
        // But the sum `i128::MIN + i128::MIN` must overflow cleanly.
        let double = Expr::binary(mba_expr::BinOp::Add, e.clone(), e);
        let err = SignatureVector::of_linear(&double, &vars2()).unwrap_err();
        assert!(err.to_string().contains("signature overflow"), "{err}");
    }

    #[test]
    fn rejects_nonlinear() {
        let e: Expr = "(x&y)*(x|y)".parse().unwrap();
        let err = SignatureVector::of_linear(&e, &vars2()).unwrap_err();
        assert!(err.to_string().contains("degree"));
    }

    #[test]
    fn rejects_non_bitwise_factor() {
        let e: Expr = "2*(x+y)".parse().unwrap();
        assert!(SignatureVector::of_linear(&e, &vars2()).is_err());
    }

    #[test]
    fn scaled_truth_table_detection() {
        // x + y − 2(x∧y) has signature (0,1,1,0) = 1 · column(x⊕y).
        let s = sig("x + y - 2*(x&y)");
        let (c, tt) = s.as_scaled_truth_table().unwrap();
        assert_eq!(c, 1);
        assert_eq!(tt.column(), [0, 1, 1, 0]);

        // 3·(x∧y) scales by 3.
        let s = sig("3*(x&y)");
        let (c, tt) = s.as_scaled_truth_table().unwrap();
        assert_eq!(c, 3);
        assert_eq!(tt.column(), [0, 0, 0, 1]);

        // x + y is not a scaled column (component 2 breaks it).
        assert!(sig("x + y").as_scaled_truth_table().is_none());

        // Zero signature.
        let (c, tt) = sig("x - x").as_scaled_truth_table().unwrap();
        assert_eq!(c, 0);
        assert_eq!(tt.column(), [0, 0, 0, 0]);
    }

    #[test]
    fn solve_in_or_basis() {
        // §7 Table 9 basis {x, y, x∨y, −1}: x∧y = x + y − (x∨y).
        let v = vars2();
        let basis: Vec<Expr> = ["x", "y", "x|y", "-1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let s = SignatureVector::of_bitwise(&"x&y".parse().unwrap(), &v).unwrap();
        let coeffs = s.solve_in_basis(&basis, &v).unwrap().unwrap();
        assert_eq!(coeffs, vec![1, 1, -1, 0]);
    }

    #[test]
    fn roundtrip_signature_of_normalized_expr() {
        // Normalizing then re-taking the signature is the identity.
        let v = vars2();
        for src in ["x + y", "3*(x|y) - (x^y)", "x - y - 1", "~x & ~y"] {
            let s = SignatureVector::of_linear(&src.parse().unwrap(), &v).unwrap();
            let normalized = s.to_normalized_expr(&v);
            let s2 = SignatureVector::of_linear(&normalized, &v).unwrap();
            assert_eq!(s, s2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(sig("x+y").to_string(), "(0,1,1,2)");
    }
}
