//! Minimal bitwise expressions for every boolean function of up to three
//! variables.
//!
//! The final-step optimization (§4.5) replaces a signature that equals a
//! scaled truth-table column with a *single* bitwise expression — e.g.
//! `x + y − 2(x∧y)` folds to `x ⊕ y`. That requires mapping an arbitrary
//! truth table to its smallest `{∧, ∨, ⊕, ¬}` expression. This module
//! enumerates all `2^(2^t)` boolean functions (for `t ≤ 3`) breadth-first
//! by expression size and memoizes the results process-wide.

use std::collections::HashMap;
use std::sync::Arc;

use mba_expr::{BinOp, Expr, Ident, UnOp};
use parking_lot::Mutex;

use crate::truth::TruthTable;

/// Maximum variable count the catalog enumerates. `2^(2^3) = 256`
/// functions is instant; four variables (65 536 functions) would still be
/// feasible but is beyond what the final-step optimization needs in
/// practice, matching the paper's prototype.
pub const MAX_CATALOG_VARS: usize = 3;

/// A table of minimal bitwise expressions, one per boolean function of
/// `num_vars` variables.
///
/// ```
/// use mba_expr::Ident;
/// use mba_sig::{catalog::Catalog, TruthTable};
/// let vars = [Ident::new("x"), Ident::new("y")];
/// let catalog = Catalog::build(&vars);
/// let xor = TruthTable::from_bits(2, 0b0110);
/// assert_eq!(catalog.minimal_expr(&xor).unwrap().to_string(), "x^y");
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    num_vars: usize,
    /// Indexed by truth-table bitmask; `num_vars ≤ 3` keeps this ≤ 256.
    exprs: Vec<Option<Expr>>,
    costs: Vec<usize>,
}

impl Catalog {
    /// Enumerates minimal expressions for all boolean functions over
    /// `vars`.
    ///
    /// Cost is measured in AST nodes; ties resolve to whichever
    /// expression the search reaches first, which prefers `∧ ∨ ⊕` over
    /// nested negations.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or has more than
    /// [`MAX_CATALOG_VARS`] entries.
    pub fn build(vars: &[Ident]) -> Catalog {
        assert!(
            (1..=MAX_CATALOG_VARS).contains(&vars.len()),
            "catalog supports 1..={MAX_CATALOG_VARS} variables"
        );
        let t = vars.len();
        let num_rows = 1usize << t;
        let num_funcs = 1usize << num_rows;
        let full_mask = if num_rows == 64 {
            u64::MAX
        } else {
            (1u64 << num_rows) - 1
        };

        let mut exprs: Vec<Option<Expr>> = vec![None; num_funcs];
        let mut costs: Vec<usize> = vec![usize::MAX; num_funcs];
        // by_cost[c] lists the function masks first reached at cost c.
        let mut by_cost: Vec<Vec<u64>> = vec![Vec::new(); 2];

        let insert = |mask: u64,
                          cost: usize,
                          expr: Expr,
                          exprs: &mut Vec<Option<Expr>>,
                          costs: &mut Vec<usize>,
                          by_cost: &mut Vec<Vec<u64>>|
         -> bool {
            let idx = mask as usize;
            if costs[idx] <= cost {
                return false;
            }
            costs[idx] = cost;
            exprs[idx] = Some(expr);
            if by_cost.len() <= cost {
                by_cost.resize(cost + 1, Vec::new());
            }
            by_cost[cost].push(mask);
            true
        };

        // Seeds: variables, and the bit-uniform constants 0 and -1.
        for (j, v) in vars.iter().enumerate() {
            let mut mask = 0u64;
            for r in 0..num_rows {
                if r & (1 << (t - 1 - j)) != 0 {
                    mask |= 1 << r;
                }
            }
            insert(mask, 1, Expr::var(v.clone()), &mut exprs, &mut costs, &mut by_cost);
        }
        insert(0, 1, Expr::zero(), &mut exprs, &mut costs, &mut by_cost);
        insert(
            full_mask,
            1,
            Expr::minus_one(),
            &mut exprs,
            &mut costs,
            &mut by_cost,
        );

        let mut found = by_cost.iter().map(Vec::len).sum::<usize>();
        let mut cost = 2;
        // Node-count cap: every 3-variable function is reachable well
        // under 20 nodes; the cap guards against an infinite loop if the
        // grammar were ever restricted.
        while found < num_funcs && cost <= 24 {
            if by_cost.len() <= cost {
                by_cost.resize(cost + 1, Vec::new());
            }
            // Unary: ¬e with e of cost-1.
            let from: Vec<u64> = by_cost[cost - 1].clone();
            for mask in from {
                let inner = exprs[mask as usize].clone().expect("present");
                if insert(
                    !mask & full_mask,
                    cost,
                    Expr::unary(UnOp::Not, inner),
                    &mut exprs,
                    &mut costs,
                    &mut by_cost,
                ) {
                    found += 1;
                }
            }
            // Binary: cost = a + b + 1.
            for ca in 1..cost - 1 {
                let cb = cost - 1 - ca;
                if cb < ca {
                    break;
                }
                let left: Vec<u64> = by_cost[ca].clone();
                let right: Vec<u64> = by_cost[cb].clone();
                for &ma in &left {
                    for &mb in &right {
                        let ea = exprs[ma as usize].clone().expect("present");
                        let eb = exprs[mb as usize].clone().expect("present");
                        for (op, mask) in [
                            (BinOp::And, ma & mb),
                            (BinOp::Or, ma | mb),
                            (BinOp::Xor, ma ^ mb),
                        ] {
                            if costs[mask as usize] > cost
                                && insert(
                                    mask,
                                    cost,
                                    Expr::binary(op, ea.clone(), eb.clone()),
                                    &mut exprs,
                                    &mut costs,
                                    &mut by_cost,
                                )
                            {
                                found += 1;
                            }
                        }
                    }
                }
            }
            cost += 1;
        }

        Catalog {
            num_vars: t,
            exprs,
            costs,
        }
    }

    /// Number of variables this catalog covers.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The minimal expression realizing the boolean function of `tt`, or
    /// `None` when `tt` is over a different variable count.
    pub fn minimal_expr(&self, tt: &TruthTable) -> Option<&Expr> {
        if tt.num_vars() != self.num_vars {
            return None;
        }
        self.exprs[tt.bits() as usize].as_ref()
    }

    /// The node count of the minimal expression for `tt`.
    pub fn cost(&self, tt: &TruthTable) -> Option<usize> {
        if tt.num_vars() != self.num_vars {
            return None;
        }
        let c = self.costs[tt.bits() as usize];
        (c != usize::MAX).then_some(c)
    }
}

/// Returns the process-wide shared catalog for the given variable order,
/// building it on first use. Returns `None` when the variable count is
/// outside `1..=MAX_CATALOG_VARS`.
pub fn shared(vars: &[Ident]) -> Option<Arc<Catalog>> {
    if !(1..=MAX_CATALOG_VARS).contains(&vars.len()) {
        return None;
    }
    static CACHE: Mutex<Option<HashMap<Vec<String>, Arc<Catalog>>>> = Mutex::new(None);
    let key: Vec<String> = vars.iter().map(|v| v.as_str().to_owned()).collect();
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    Some(Arc::clone(
        map.entry(key)
            .or_insert_with(|| Arc::new(Catalog::build(vars))),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn vars2() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y")]
    }

    fn vars3() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y"), Ident::new("z")]
    }

    #[test]
    fn covers_all_two_variable_functions() {
        let c = Catalog::build(&vars2());
        for mask in 0u64..16 {
            let tt = TruthTable::from_bits(2, mask);
            assert!(c.minimal_expr(&tt).is_some(), "missing function {mask:#06b}");
        }
    }

    #[test]
    fn covers_all_three_variable_functions() {
        let c = Catalog::build(&vars3());
        for mask in 0u64..256 {
            let tt = TruthTable::from_bits(3, mask);
            assert!(c.minimal_expr(&tt).is_some(), "missing function {mask:#010b}");
        }
    }

    #[test]
    fn catalog_entries_have_the_right_truth_table() {
        let vars = vars3();
        let c = Catalog::build(&vars);
        for mask in 0u64..256 {
            let tt = TruthTable::from_bits(3, mask);
            let e = c.minimal_expr(&tt).unwrap();
            assert_eq!(
                TruthTable::of(e, &vars).unwrap(),
                tt,
                "wrong table for {}",
                e
            );
        }
    }

    #[test]
    fn common_functions_get_their_canonical_forms() {
        let c = Catalog::build(&vars2());
        let cases: &[(u64, usize)] = &[
            (0b0110, 3), // x^y: one binary op
            (0b1000, 3), // x&y
            (0b1110, 3), // x|y
            (0b0011, 2), // ~y? rows 00,01 true => x=0 => ~x
            (0b1001, 4), // xnor: ~(x^y) or x^~y
        ];
        for &(mask, max_cost) in cases {
            let tt = TruthTable::from_bits(2, mask);
            let cost = c.cost(&tt).unwrap();
            assert!(
                cost <= max_cost,
                "function {mask:#06b} got cost {cost}, expected <= {max_cost} ({})",
                c.minimal_expr(&tt).unwrap()
            );
        }
    }

    #[test]
    fn costs_are_consistent_with_node_count() {
        let c = Catalog::build(&vars2());
        for mask in 0u64..16 {
            let tt = TruthTable::from_bits(2, mask);
            assert_eq!(
                c.cost(&tt).unwrap(),
                c.minimal_expr(&tt).unwrap().node_count()
            );
        }
    }

    #[test]
    fn entries_are_minimal_among_random_equivalents() {
        // The BFS guarantees minimality by construction; sanity-check a
        // couple of hand cases: nothing of 2 nodes computes xor.
        let c = Catalog::build(&vars2());
        let xor = TruthTable::from_bits(2, 0b0110);
        assert_eq!(c.cost(&xor).unwrap(), 3);
    }

    #[test]
    fn shared_caches_by_variable_names() {
        let a = shared(&vars2()).unwrap();
        let b = shared(&vars2()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let other = shared(&[Ident::new("p"), Ident::new("q")]).unwrap();
        assert!(!Arc::ptr_eq(&a, &other));
        assert!(shared(&[]).is_none());
    }

    #[test]
    fn minimal_exprs_evaluate_like_their_function() {
        let vars = vars2();
        let c = Catalog::build(&vars);
        for mask in 0u64..16 {
            let tt = TruthTable::from_bits(2, mask);
            let e = c.minimal_expr(&tt).unwrap();
            for (x, y) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                let v = Valuation::new().with("x", x).with("y", y);
                let row = (x << 1 | y) as usize;
                assert_eq!(e.eval(&v, 1) == 1, tt.row(row), "{e} row {row}");
            }
        }
    }
}
