//! Truth tables, signature vectors, and normalized bases — the
//! mathematical core behind MBA-Solver (paper §4.1–§4.3).
//!
//! A *signature vector* (Definition 3) is `s = M·v` where `M` is the
//! truth-table matrix of a linear MBA expression's bitwise terms and `v`
//! its coefficient vector. Theorem 1 shows two linear MBA expressions are
//! equivalent iff their signature vectors are equal, so the signature is a
//! canonical semantic key.
//!
//! This crate computes signatures ([`SignatureVector`]), re-expresses them
//! in the *normalized basis* `{−1} ∪ {∧S : ∅ ≠ S ⊆ vars}` via exact
//! Möbius inversion ([`SignatureVector::normalized_coefficients`],
//! generalizing the paper's Table 4 beyond two variables), renders the
//! result as a low-alternation expression
//! ([`SignatureVector::to_normalized_expr`]), and hosts the pre-computed
//! two-variable simplification table (Table 5) plus the minimal boolean
//! expression catalog used by the final-step optimization (§4.5).
//!
//! # Example: the paper's running example (§4.1–§4.3)
//!
//! ```
//! use mba_expr::Expr;
//! use mba_sig::SignatureVector;
//!
//! let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
//! let vars: Vec<_> = e.vars().into_iter().collect();
//! let sig = SignatureVector::of_linear(&e, &vars).expect("linear MBA");
//! assert_eq!(sig.components(), [0, 1, 1, 2]);
//! assert_eq!(sig.to_normalized_expr(&vars).to_string(), "x+y");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
pub mod cache;
pub mod catalog;
mod signature;
pub mod simba;
pub mod table;
mod truth;

pub use basis::linear_combination;
pub use cache::{publish_arena_metrics, publish_eval_engine_metrics, CacheStats, SigCache};
pub use signature::{NotLinearError, SignatureVector};
pub use simba::{publish_simba_metrics, simba_stats, SimbaStats};
pub use truth::{NotBitwiseError, TruthTable};
