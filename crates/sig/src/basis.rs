//! Assembling linear combinations of bitwise expressions into tidy MBA
//! expression trees.

use mba_expr::{BinOp, Expr, Ident, UnOp};

/// Builds the left-leaning conjunction of `vars`; the empty chain is the
/// all-ones constant `-1` (the bitwise tautology).
pub(crate) fn and_chain(vars: &[&Ident]) -> Expr {
    let mut iter = vars.iter();
    let Some(first) = iter.next() else {
        return Expr::minus_one();
    };
    iter.fold(Expr::var((*first).clone()), |acc, v| {
        Expr::binary(BinOp::And, acc, Expr::var((*v).clone()))
    })
}

/// Builds `Σ cᵢ·eᵢ` as a readable expression: zero terms are dropped,
/// unit coefficients print bare, negative coefficients become
/// subtractions, constant factors fold, and an empty (or all-zero) sum is
/// the constant 0.
///
/// ```
/// use mba_expr::Expr;
/// use mba_sig::linear_combination;
/// let x: Expr = "x".parse().unwrap();
/// let xy: Expr = "x&y".parse().unwrap();
/// let e = linear_combination(&[(1, x), (-2, xy), (3, Expr::minus_one())]);
/// assert_eq!(e.to_string(), "x-2*(x&y)-3");
/// ```
pub fn linear_combination(terms: &[(i128, Expr)]) -> Expr {
    let mut acc: Option<Expr> = None;
    for (coef, factor) in terms {
        // Fold constant factors into the coefficient.
        let (coef, factor) = match factor {
            Expr::Const(k) => (coef.wrapping_mul(*k), None),
            other => (*coef, Some(other)),
        };
        if coef == 0 {
            continue;
        }
        acc = Some(match acc {
            None => head_term(coef, factor),
            Some(prev) => {
                if coef > 0 {
                    Expr::binary(BinOp::Add, prev, tail_term(coef, factor))
                } else {
                    Expr::binary(BinOp::Sub, prev, tail_term(-coef, factor))
                }
            }
        });
    }
    acc.unwrap_or_else(Expr::zero)
}

/// First term of the sum; carries its own sign.
fn head_term(coef: i128, factor: Option<&Expr>) -> Expr {
    match factor {
        None => Expr::Const(coef),
        Some(e) => match coef {
            1 => e.clone(),
            -1 => Expr::unary(UnOp::Neg, e.clone()),
            c => Expr::binary(BinOp::Mul, Expr::Const(c), e.clone()),
        },
    }
}

/// Subsequent term; the sign is carried by the surrounding `+`/`-`, so
/// `coef` is positive here.
fn tail_term(coef: i128, factor: Option<&Expr>) -> Expr {
    debug_assert!(coef > 0);
    match factor {
        None => Expr::Const(coef),
        Some(e) => match coef {
            1 => e.clone(),
            c => Expr::binary(BinOp::Mul, Expr::Const(c), e.clone()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn x() -> Expr {
        Expr::var("x")
    }

    fn xy() -> Expr {
        "x&y".parse().unwrap()
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(linear_combination(&[]), Expr::zero());
        assert_eq!(linear_combination(&[(0, x())]), Expr::zero());
    }

    #[test]
    fn unit_coefficients_print_bare() {
        assert_eq!(linear_combination(&[(1, x())]).to_string(), "x");
        assert_eq!(linear_combination(&[(-1, x())]).to_string(), "-x");
    }

    #[test]
    fn signs_become_subtractions() {
        let e = linear_combination(&[(2, x()), (-1, xy())]);
        assert_eq!(e.to_string(), "2*x-(x&y)");
    }

    #[test]
    fn constant_factors_fold() {
        // 3·(−1) = −3, and it must render as a subtraction.
        let e = linear_combination(&[(1, x()), (3, Expr::minus_one())]);
        assert_eq!(e.to_string(), "x-3");
        // A leading constant keeps its sign inline.
        let e = linear_combination(&[(2, Expr::minus_one()), (1, x())]);
        assert_eq!(e.to_string(), "-2+x");
    }

    #[test]
    fn result_evaluates_correctly() {
        let e = linear_combination(&[(3, x()), (-2, xy()), (5, Expr::minus_one())]);
        let v = Valuation::new().with("x", 7).with("y", 3);
        // 3*7 - 2*(7&3) - 5 = 21 - 6 - 5 = 10.
        assert_eq!(e.eval(&v, 64), 10);
    }

    #[test]
    fn and_chain_shapes() {
        let x = Ident::new("x");
        let y = Ident::new("y");
        let z = Ident::new("z");
        assert_eq!(and_chain(&[]), Expr::minus_one());
        assert_eq!(and_chain(&[&x]).to_string(), "x");
        assert_eq!(and_chain(&[&x, &y, &z]).to_string(), "x&y&z");
    }
}
