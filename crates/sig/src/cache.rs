//! A shared, concurrency-safe memoization layer for the signature
//! pipeline.
//!
//! Profiling the corpus runs shows the simplifier's hot loop is exactly
//! the paper's §4.1–§4.3 sequence, repeated for every maximal bitwise
//! subtree: evaluate the subtree on all `2^t` boolean rows (the truth
//! table), read off the signature vector, and re-express it in a
//! normalized basis. Obfuscated corpora are massively redundant at this
//! layer — the same rewrite rules stamp out the same subtrees, and
//! syntactically different subtrees collapse to the same truth table —
//! so memoizing each stage removes most of the work.
//!
//! [`SigCache`] memoizes three pure functions behind sharded
//! reader-writer locks (16 shards, keyed by hash, so parallel batch
//! simplification does not serialize on one lock):
//!
//! 1. `(expression, variable order) → TruthTable` — the `2^t`
//!    evaluation sweep ([`SigCache::table_of`]);
//! 2. `TruthTable → ∧-basis coefficients` — the Möbius inversion of
//!    §4.3 ([`SigCache::and_coefficients`]);
//! 3. `TruthTable → ∨-basis coefficients` — the Table 9 linear solve,
//!    including negative results ([`SigCache::or_coefficients`]).
//!
//! Every cached value is a pure function of its key, so cache hits can
//! never change simplification output — `tests/differential_cache.rs`
//! locks that property down. Hit/miss counters aggregate into
//! [`CacheStats`] for the bench harness.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mba_expr::{Expr, ExprArena, Ident, NodeId};
use mba_linalg::{Matrix, Rational};
use parking_lot::RwLock;

use crate::signature::SignatureVector;
use crate::truth::{NotBitwiseError, TruthTable};

/// Shard count; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// Hit/miss counters of one [`SigCache`], captured at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) their value.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, `0.0` when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// The activity between an `earlier` snapshot and `self` — the
    /// standard way to report per-batch or per-request cache telemetry
    /// against a long-lived shared cache (the bench runner and the
    /// serving layer both use it). Saturates rather than underflows if
    /// the cache was cleared between the snapshots.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}%)",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate()
        )
    }
}

/// One entry in a shard's clock ring. The `referenced` bit is an
/// atomic so the read path can mark recency under the shard's *read*
/// lock — hits never take the write lock.
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: AtomicBool,
}

/// One shard: the key index plus the clock ring it points into.
/// Invariant: `map.len() == slots.len()`, and `map[slots[i].key] == i`.
struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Clock hand — the next eviction candidate.
    hand: usize,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
        }
    }
}

/// A sharded `key → value` map with optional clock (second-chance)
/// eviction.
///
/// Unbounded maps grow forever — the pre-eviction behaviour, kept for
/// library use where byte-identity across a whole corpus matters more
/// than memory. Bounded maps hold at most `per_shard_cap` entries per
/// shard: an insert into a full shard sweeps the clock hand, clearing
/// `referenced` bits as it passes, and replaces the first slot found
/// unreferenced since the last sweep. The sweep is bounded (two laps,
/// then the slot under the hand is taken regardless), so inserts are
/// O(cap) worst case and O(1) amortized.
struct ShardedMap<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    /// Per-shard entry cap; `None` means unbounded.
    per_shard_cap: Option<usize>,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    fn new() -> Self {
        Self::with_cap(None)
    }

    fn with_cap(per_shard_cap: Option<usize>) -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            per_shard_cap,
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key).read();
        let &idx = shard.map.get(key)?;
        let slot = &shard.slots[idx];
        slot.referenced.store(true, Ordering::Relaxed);
        Some(slot.value.clone())
    }

    fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).write();
        if let Some(&idx) = shard.map.get(&key) {
            // Racing computations of the same key: last write wins,
            // which is harmless — every cached value is a pure function
            // of its key.
            let slot = &mut shard.slots[idx];
            slot.value = value;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if self.per_shard_cap.is_none_or(|cap| shard.slots.len() < cap) {
            let idx = shard.slots.len();
            shard.slots.push(Slot {
                key: key.clone(),
                value,
                referenced: AtomicBool::new(true),
            });
            shard.map.insert(key, idx);
            return;
        }
        // Full shard: advance the clock hand past recently-referenced
        // slots (clearing their bit — the "second chance"), bounded to
        // two laps so a pathological all-referenced ring still makes
        // progress.
        let len = shard.slots.len();
        for _ in 0..2 * len {
            let hand = shard.hand;
            if shard.slots[hand].referenced.swap(false, Ordering::Relaxed) {
                shard.hand = (hand + 1) % len;
            } else {
                break;
            }
        }
        let victim = shard.hand;
        let old_key = shard.slots[victim].key.clone();
        shard.map.remove(&old_key);
        shard.slots[victim] = Slot {
            key: key.clone(),
            value,
            referenced: AtomicBool::new(true),
        };
        shard.map.insert(key, victim);
        shard.hand = (victim + 1) % len;
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().map.len()).collect()
    }

    fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Visits every entry, shard by shard, under read locks. Order is
    /// unspecified; snapshot writers sort afterwards.
    fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in &self.shards {
            let shard = s.read();
            for slot in &shard.slots {
                f(&slot.key, &slot.value);
            }
        }
    }

    fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.write();
            shard.map.clear();
            shard.slots.clear();
            shard.hand = 0;
        }
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Cache key for truth tables: the expression plus its variable order
/// (the same expression has different tables under different orders).
#[derive(Hash, PartialEq, Eq, Clone)]
struct TableKey {
    expr: Expr,
    vars: Vec<Ident>,
}

/// Cache key for arena-interned truth tables: the node id plus the
/// arena's identity and generation ([`ExprArena::uid`] /
/// [`ExprArena::generation`]), so an id from a cleared-and-refilled or
/// different arena can never satisfy a stale probe. Hashing is O(1) —
/// four integers plus the variable order — instead of re-hashing a
/// whole subtree, and hash-consing makes the id hit across
/// *expressions*: every occurrence of `x & y` in the workload maps to
/// one key.
#[derive(Hash, PartialEq, Eq, Clone)]
struct IdTableKey {
    arena_uid: u64,
    generation: u64,
    id: NodeId,
    vars: Vec<Ident>,
}

/// The shared signature-pipeline memoization layer.
///
/// A `SigCache` is `Send + Sync`; wrap it in an [`Arc`] and hand clones
/// to every simplifier that should share it:
///
/// ```
/// use std::sync::Arc;
/// use mba_expr::Ident;
/// use mba_sig::{SigCache, TruthTable};
///
/// let cache = Arc::new(SigCache::new());
/// let vars = [Ident::new("x"), Ident::new("y")];
/// let e = "x | ~y".parse().unwrap();
/// let t1 = cache.table_of(&e, &vars).unwrap();
/// let t2 = cache.table_of(&e, &vars).unwrap();
/// assert_eq!(t1, t2);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct SigCache {
    tables: ShardedMap<TableKey, Arc<TruthTable>>,
    /// Truth tables keyed by arena node id ([`SigCache::table_of_id`]);
    /// disjoint from `tables` so the two keyings can be compared.
    id_tables: ShardedMap<IdTableKey, Arc<TruthTable>>,
    and_coeffs: ShardedMap<TruthTable, Arc<Vec<i128>>>,
    /// `None` records that no integer ∨-basis solution exists, so the
    /// failing solve is not repeated either.
    or_coeffs: ShardedMap<TruthTable, Option<Arc<Vec<i128>>>>,
    /// The total entry budget across all maps; `None` = unbounded.
    budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SigCache {
    fn default() -> Self {
        SigCache::new()
    }
}

impl std::fmt::Debug for SigCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SigCache {
    /// Creates an empty, **unbounded** cache — the library default,
    /// where byte-identity across a whole corpus matters more than
    /// memory.
    pub fn new() -> SigCache {
        SigCache {
            tables: ShardedMap::new(),
            id_tables: ShardedMap::new(),
            and_coeffs: ShardedMap::new(),
            or_coeffs: ShardedMap::new(),
            budget: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Creates an empty cache holding at most `budget` entries across
    /// all four internal maps, evicting clock-wise (second chance)
    /// per shard once a shard fills. `budget` is clamped to at least
    /// `64` (4 maps × 16 shards × 1 slot); [`SigCache::len`] never
    /// exceeds the clamped budget. Eviction can only cost recompute
    /// time, never correctness — every cached value is a pure function
    /// of its key, which the differential cache tests pin down.
    pub fn with_budget(budget: usize) -> SigCache {
        let budget = budget.max(4 * SHARDS);
        let per_map = budget / 4;
        let per_shard = (per_map / SHARDS).max(1);
        let cap = Some(per_shard);
        SigCache {
            tables: ShardedMap::with_cap(cap),
            id_tables: ShardedMap::with_cap(cap),
            and_coeffs: ShardedMap::with_cap(cap),
            or_coeffs: ShardedMap::with_cap(cap),
            budget: Some(budget),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured entry budget (after clamping), or `None` for an
    /// unbounded cache.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Entries evicted so far across all maps (always 0 when
    /// unbounded).
    pub fn evictions(&self) -> u64 {
        self.tables.evictions()
            + self.id_tables.evictions()
            + self.and_coeffs.evictions()
            + self.or_coeffs.evictions()
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// The truth table of pure-bitwise `e` over `vars`, memoized.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`TruthTable::of`] fails; errors are not
    /// cached (they are cheap to rediscover and rare on the hot path).
    pub fn table_of(&self, e: &Expr, vars: &[Ident]) -> Result<Arc<TruthTable>, NotBitwiseError> {
        let key = TableKey {
            expr: e.clone(),
            vars: vars.to_vec(),
        };
        if let Some(hit) = self.tables.get(&key) {
            self.hit();
            return Ok(hit);
        }
        self.miss();
        let table = Arc::new(TruthTable::of(e, vars)?);
        self.tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// The truth table of an arena-interned pure-bitwise subtree over
    /// `vars`, memoized by `(arena uid, generation, id, vars)` —
    /// [`SigCache::table_of`]'s id-keyed twin. The key never re-hashes
    /// the subtree, and hash-consing gives cross-expression CSE: after
    /// any expression computes the table for a shared subtree, every
    /// later expression containing that subtree hits.
    ///
    /// The hit/miss accounting is identical to the expression keying —
    /// one hit or one miss per lookup — so replaying a corpus through
    /// either keying yields the same [`CacheStats`].
    ///
    /// # Errors
    ///
    /// Fails exactly when [`TruthTable::of_arena`] fails; errors are
    /// not cached.
    pub fn table_of_id(
        &self,
        arena: &ExprArena,
        id: NodeId,
        vars: &[Ident],
    ) -> Result<Arc<TruthTable>, NotBitwiseError> {
        let key = IdTableKey {
            arena_uid: arena.uid(),
            generation: arena.generation(),
            id,
            vars: vars.to_vec(),
        };
        if let Some(hit) = self.id_tables.get(&key) {
            self.hit();
            return Ok(hit);
        }
        self.miss();
        let table = Arc::new(TruthTable::of_arena(arena, id, vars)?);
        self.id_tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// The normalized ∧-basis coefficients of a 0/1 truth-table
    /// signature (§4.3's Möbius inversion), memoized.
    pub fn and_coefficients(&self, tt: &TruthTable) -> Arc<Vec<i128>> {
        if let Some(hit) = self.and_coeffs.get(tt) {
            self.hit();
            return hit;
        }
        self.miss();
        let sig = SignatureVector::from_truth_table(tt);
        let coeffs = Arc::new(sig.normalized_coefficients());
        self.and_coeffs.insert(tt.clone(), Arc::clone(&coeffs));
        coeffs
    }

    /// The ∨-basis (`{−1} ∪ {∨S}`, Table 9) coefficients of a 0/1
    /// truth-table signature, memoized — including the *absence* of an
    /// integer solution, so callers fall back to the ∧ basis without
    /// re-solving.
    ///
    /// Coefficients are indexed like
    /// [`SignatureVector::normalized_coefficients`]: by subset mask over
    /// row-index bit positions, index 0 being the constant `−1` column.
    pub fn or_coefficients(&self, tt: &TruthTable) -> Option<Arc<Vec<i128>>> {
        if let Some(hit) = self.or_coeffs.get(tt) {
            self.hit();
            return hit;
        }
        self.miss();
        let solved = or_basis_coefficients(tt).map(Arc::new);
        self.or_coeffs.insert(tt.clone(), solved.clone());
        solved
    }

    /// Counters since construction (or the last [`SigCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized entries across all three maps.
    pub fn len(&self) -> usize {
        self.tables.len() + self.id_tables.len() + self.and_coeffs.len() + self.or_coeffs.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts (summed across the three maps), index
    /// `0..SHARDS`. The spread shows whether the key hash is balancing
    /// load across shard locks.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        let mut totals = vec![0usize; SHARDS];
        for map_lens in [
            self.tables.shard_lens(),
            self.id_tables.shard_lens(),
            self.and_coeffs.shard_lens(),
            self.or_coeffs.shard_lens(),
        ] {
            for (total, n) in totals.iter_mut().zip(map_lens) {
                *total += n;
            }
        }
        totals
    }

    /// Copies the cache's current state into `registry` as gauges:
    /// `sig.cache.hits` / `sig.cache.misses` / `sig.cache.entries`,
    /// `sig.evictions` / `sig.cache.budget` (0 when unbounded), plus
    /// per-shard occupancy under `sig.shard.NN.entries`. Called at
    /// snapshot points (stats requests, end of bench runs) rather than
    /// on the lookup hot path — the cache keeps its own atomics and
    /// this just mirrors them.
    pub fn publish_metrics(&self, registry: &mba_obs::MetricsRegistry) {
        let stats = self.stats();
        registry.gauge("sig.cache.hits").set(stats.hits as i64);
        registry.gauge("sig.cache.misses").set(stats.misses as i64);
        registry.gauge("sig.cache.entries").set(self.len() as i64);
        registry.gauge("sig.evictions").set(self.evictions() as i64);
        registry
            .gauge("sig.cache.budget")
            .set(self.budget.unwrap_or(0) as i64);
        for (i, n) in self.shard_occupancy().into_iter().enumerate() {
            registry
                .gauge(&format!("sig.shard.{i:02}.entries"))
                .set(n as i64);
        }
        publish_eval_engine_metrics(registry);
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        self.tables.clear();
        self.id_tables.clear();
        self.and_coeffs.clear();
        self.or_coeffs.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Serializes the cache's durable contents as one canonical JSON
    /// line, for snapshot-to-disk and warm-start across restarts
    /// ([`SigCache::load_snapshot`]). Canonical means byte-identical
    /// for equal cache contents: entries are sorted, `u64` truth-table
    /// blocks render as hex strings and `i128` coefficients as decimal
    /// strings (the workspace JSON parser carries numbers as `f64`,
    /// lossy above 2⁵³, so integers ride in strings).
    ///
    /// Only the restart-durable maps are included: expression-keyed
    /// truth tables and both coefficient maps. Id-keyed tables are
    /// scoped to one arena generation inside one process and can never
    /// be valid in the next one.
    pub fn snapshot_json(&self) -> String {
        use mba_obs::json::json_escape;
        fn table_fields(tt: &TruthTable) -> String {
            let blocks: Vec<String> = tt
                .blocks()
                .iter()
                .map(|b| format!("\"0x{b:x}\""))
                .collect();
            format!(
                "\"num_vars\":{},\"blocks\":[{}]",
                tt.num_vars(),
                blocks.join(",")
            )
        }
        fn coeff_list(coeffs: &[i128]) -> String {
            let parts: Vec<String> = coeffs.iter().map(|c| format!("\"{c}\"")).collect();
            format!("[{}]", parts.join(","))
        }
        let mut tables = Vec::new();
        self.tables.for_each(|key, table| {
            let vars: Vec<String> = key
                .vars
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v.as_ref())))
                .collect();
            tables.push(format!(
                "{{\"expr\":\"{}\",\"vars\":[{}],{}}}",
                json_escape(&key.expr.to_string()),
                vars.join(","),
                table_fields(table)
            ));
        });
        let mut and_entries = Vec::new();
        self.and_coeffs.for_each(|tt, coeffs| {
            and_entries.push(format!(
                "{{{},\"coeffs\":{}}}",
                table_fields(tt),
                coeff_list(coeffs)
            ));
        });
        let mut or_entries = Vec::new();
        self.or_coeffs.for_each(|tt, coeffs| {
            let rendered = coeffs
                .as_ref()
                .map_or_else(|| "null".to_string(), |c| coeff_list(c));
            or_entries.push(format!(
                "{{{},\"coeffs\":{}}}",
                table_fields(tt),
                rendered
            ));
        });
        // Rendering is injective on entries, so sorting the rendered
        // strings sorts the entries — determinism without a custom key.
        tables.sort();
        and_entries.sort();
        or_entries.sort();
        format!(
            "{{\"version\":1,\"tables\":[{}],\"and_coeffs\":[{}],\"or_coeffs\":[{}]}}",
            tables.join(","),
            and_entries.join(","),
            or_entries.join(",")
        )
    }

    /// Loads a [`SigCache::snapshot_json`] document, inserting every
    /// entry it carries (idempotent; hit/miss counters are untouched).
    /// Loading into a bounded cache goes through the normal eviction
    /// path, so occupancy stays within budget even when the snapshot
    /// came from a bigger cache. Returns the number of entries read.
    ///
    /// Snapshots are trusted local state — validation is structural
    /// (shape, parseability, block widths), not semantic; a hand-edited
    /// snapshot that pairs an expression with the wrong table is the
    /// operator's own foot-gun, exactly like editing any other cache
    /// file on disk.
    ///
    /// # Errors
    ///
    /// Rejects documents that fail to parse, carry an unknown version,
    /// or contain structurally invalid entries.
    pub fn load_snapshot(&self, doc: &str) -> Result<usize, String> {
        use mba_obs::json::{parse_json, Json};
        fn entries<'j>(
            obj: &'j std::collections::BTreeMap<String, Json>,
            key: &str,
        ) -> Result<&'j [Json], String> {
            match obj.get(key) {
                None => Ok(&[]),
                Some(Json::Arr(items)) => Ok(items),
                Some(_) => Err(format!("`{key}` is not an array")),
            }
        }
        fn table_of_entry(
            obj: &std::collections::BTreeMap<String, Json>,
        ) -> Result<TruthTable, String> {
            let num_vars = obj
                .get("num_vars")
                .and_then(Json::as_u64)
                .ok_or("entry missing `num_vars`")? as usize;
            let blocks: Vec<u64> = match obj.get("blocks") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|b| {
                        let s = b.as_str().ok_or("block is not a string")?;
                        let hex = s
                            .strip_prefix("0x")
                            .ok_or_else(|| format!("block `{s}` missing 0x prefix"))?;
                        u64::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad block `{s}`: {e}"))
                    })
                    .collect::<Result<_, String>>()?,
                _ => return Err("entry missing `blocks`".into()),
            };
            TruthTable::from_blocks(num_vars, blocks)
        }
        fn coeffs_of_entry(
            obj: &std::collections::BTreeMap<String, Json>,
        ) -> Result<Option<Vec<i128>>, String> {
            match obj.get("coeffs") {
                Some(Json::Null) => Ok(None),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|c| {
                        let s = c.as_str().ok_or("coefficient is not a string")?;
                        s.parse::<i128>()
                            .map_err(|e| format!("bad coefficient `{s}`: {e}"))
                    })
                    .collect::<Result<Vec<_>, String>>()
                    .map(Some),
                _ => Err("entry missing `coeffs`".into()),
            }
        }
        let parsed = parse_json(doc)?;
        let obj = parsed.as_obj().ok_or("snapshot is not an object")?;
        if obj.get("version").and_then(Json::as_u64) != Some(1) {
            return Err("unsupported snapshot version".into());
        }
        let mut loaded = 0usize;
        for entry in entries(obj, "tables")? {
            let e = entry.as_obj().ok_or("table entry is not an object")?;
            let expr: Expr = e
                .get("expr")
                .and_then(Json::as_str)
                .ok_or("table entry missing `expr`")?
                .parse()
                .map_err(|err| format!("snapshot expr does not parse: {err}"))?;
            let vars: Vec<Ident> = match e.get("vars") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(Ident::new)
                            .ok_or_else(|| "var is not a string".to_string())
                    })
                    .collect::<Result<_, String>>()?,
                _ => return Err("table entry missing `vars`".into()),
            };
            let table = table_of_entry(e)?;
            self.tables
                .insert(TableKey { expr, vars }, Arc::new(table));
            loaded += 1;
        }
        for entry in entries(obj, "and_coeffs")? {
            let e = entry.as_obj().ok_or("coeff entry is not an object")?;
            let table = table_of_entry(e)?;
            let coeffs = coeffs_of_entry(e)?.ok_or("and_coeffs cannot be null")?;
            self.and_coeffs.insert(table, Arc::new(coeffs));
            loaded += 1;
        }
        for entry in entries(obj, "or_coeffs")? {
            let e = entry.as_obj().ok_or("coeff entry is not an object")?;
            let table = table_of_entry(e)?;
            let coeffs = coeffs_of_entry(e)?.map(Arc::new);
            self.or_coeffs.insert(table, coeffs);
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// Mirrors an arena's [`mba_expr::ArenaStats`] into `registry` as
/// gauges: `arena.nodes`, `arena.idents`, `arena.interned_hits`,
/// `arena.bytes`, `arena.generation`. Same snapshot-point bridge
/// pattern as [`publish_eval_engine_metrics`] — `mba-expr` has no
/// `mba-obs` dependency, so the mirror lives at the signature layer.
pub fn publish_arena_metrics(arena: &ExprArena, registry: &mba_obs::MetricsRegistry) {
    let s = arena.stats();
    registry.gauge("arena.nodes").set(s.nodes as i64);
    registry.gauge("arena.idents").set(s.idents as i64);
    registry
        .gauge("arena.interned_hits")
        .set(s.interned_hits as i64);
    registry.gauge("arena.bytes").set(s.bytes as i64);
    registry.gauge("arena.generation").set(s.generation as i64);
}

/// Mirrors the batch evaluation engine's process-global counters
/// ([`mba_expr::engine_stats`]) into `registry` as gauges:
/// `eval.tape_compiles`, `eval.bitparallel.passes`,
/// `eval.bitparallel.rows`, `eval.wide_passes`, `eval.batch.passes`,
/// `eval.batch.rows`.
/// Like [`SigCache::publish_metrics`] (which includes this), it is a
/// snapshot-point mirror, not a hot-path instrument — `mba-expr` keeps
/// its own atomics and has no `mba-obs` dependency, so the bridge
/// lives here with the rest of the signature-layer telemetry.
pub fn publish_eval_engine_metrics(registry: &mba_obs::MetricsRegistry) {
    let s = mba_expr::engine_stats();
    registry.gauge("eval.tape_compiles").set(s.tape_compiles as i64);
    registry
        .gauge("eval.bitparallel.passes")
        .set(s.bit_parallel_passes as i64);
    registry
        .gauge("eval.bitparallel.rows")
        .set(s.bit_parallel_rows as i64);
    registry.gauge("eval.wide_passes").set(s.wide_passes as i64);
    registry.gauge("eval.batch.passes").set(s.batch_passes as i64);
    registry.gauge("eval.batch.rows").set(s.batch_rows as i64);
}

/// Solves a 0/1 signature in the ∨ basis without materializing basis
/// expressions: the column of `∨S` at row `r` is `1` iff `r ∧ S ≠ 0`
/// (any selected variable is set), and `S = 0` is the all-ones `−1`
/// column — the same construction [`SignatureVector::solve_in_basis`]
/// reaches through `TruthTable::of`, minus the expression round-trip.
///
/// This is the uncached compute path behind
/// [`SigCache::or_coefficients`]; cache-disabled pipelines call it
/// directly so both configurations share one solver.
pub fn or_basis_coefficients(tt: &TruthTable) -> Option<Vec<i128>> {
    let rows = tt.num_rows();
    let columns: Vec<Vec<i128>> = (0..rows)
        .map(|s| {
            (0..rows)
                .map(|r| if s == 0 || r & s != 0 { 1 } else { 0 })
                .collect()
        })
        .collect();
    let m = Matrix::from_i128_columns(&columns);
    let rhs: Vec<Rational> = tt.column().into_iter().map(Rational::from).collect();
    let solution = m.solve(&rhs)?;
    solution.iter().map(Rational::to_integer).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars2() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y")]
    }

    #[test]
    fn table_lookups_hit_on_repeat() {
        let cache = SigCache::new();
        let e: Expr = "x & ~y".parse().unwrap();
        let t1 = cache.table_of(&e, &vars2()).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let t2 = cache.table_of(&e, &vars2()).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(cache.stats().hits, 1);
        // A different variable order is a different key.
        let flipped = vec![Ident::new("y"), Ident::new("x")];
        let t3 = cache.table_of(&e, &flipped).unwrap();
        assert_ne!(t1.column(), t3.column());
    }

    #[test]
    fn cached_and_coefficients_match_direct_computation() {
        let cache = SigCache::new();
        for src in ["x | y", "x ^ y", "~x & y", "x & y"] {
            let e: Expr = src.parse().unwrap();
            let tt = TruthTable::of(&e, &vars2()).unwrap();
            let cached = cache.and_coefficients(&tt);
            let direct = SignatureVector::from_truth_table(&tt).normalized_coefficients();
            assert_eq!(*cached, direct, "{src}");
            // Second lookup must hit.
            let before = cache.stats().hits;
            cache.and_coefficients(&tt);
            assert_eq!(cache.stats().hits, before + 1);
        }
    }

    #[test]
    fn cached_or_coefficients_match_solve_in_basis() {
        let cache = SigCache::new();
        let v = vars2();
        let basis: Vec<Expr> = ["-1", "y", "x", "x|y"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        for src in ["x & y", "x | y", "x ^ y", "~x"] {
            let e: Expr = src.parse().unwrap();
            let tt = TruthTable::of(&e, &v).unwrap();
            let cached = cache.or_coefficients(&tt);
            // Reference: the expression-level solver over the matching
            // basis order (subset masks 0b00, 0b01=y, 0b10=x, 0b11=x∨y).
            let sig = SignatureVector::from_truth_table(&tt);
            let reference = sig.solve_in_basis(&basis, &v).unwrap();
            assert_eq!(cached.map(|c| (*c).clone()), reference, "{src}");
        }
    }

    #[test]
    fn or_solution_absence_is_cached() {
        let cache = SigCache::new();
        // x∧y needs coefficient pattern solvable in the ∨ basis — use a
        // signature known to have no integer ∨ solution? All 0/1
        // signatures solve rationally; integrality can fail. Either
        // way, the second lookup must be a hit.
        let tt = TruthTable::of(&"x ^ y".parse().unwrap(), &vars2()).unwrap();
        let first = cache.or_coefficients(&tt);
        let hits_before = cache.stats().hits;
        let second = cache.or_coefficients(&tt);
        assert_eq!(first, second);
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn id_keyed_tables_hit_on_repeat_and_across_expressions() {
        let cache = SigCache::new();
        let arena = mba_expr::ExprArena::new();
        let e: Expr = "x & ~y".parse().unwrap();
        let id = arena.intern(&e);
        let t1 = cache.table_of_id(&arena, id, &vars2()).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let t2 = cache.table_of_id(&arena, id, &vars2()).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(cache.stats().hits, 1);
        // Cross-expression CSE: the same subtree inside a *different*
        // expression interns to the same id, so the lookup hits without
        // ever seeing the first expression again.
        let wrapped: Expr = "(x & ~y) | (x & ~y)".parse().unwrap();
        let wrapped_id = arena.intern(&wrapped);
        let mba_expr::arena::Node::Binary(_, shared, _) = arena.node(wrapped_id) else {
            panic!("expected a binary root");
        };
        assert_eq!(shared, id);
        cache.table_of_id(&arena, shared, &vars2()).unwrap();
        assert_eq!(cache.stats().hits, 2);
        // The table itself is byte-identical to the expression keying's.
        assert_eq!(*t1, *cache.table_of(&e, &vars2()).unwrap());
    }

    #[test]
    fn id_keys_are_generation_scoped() {
        let cache = SigCache::new();
        let arena = mba_expr::ExprArena::new();
        let e: Expr = "x | y".parse().unwrap();
        let id = arena.intern(&e);
        cache.table_of_id(&arena, id, &vars2()).unwrap();
        arena.clear();
        // Same numeric id, new generation: must miss, not serve the
        // stale table.
        let id2 = arena.intern(&e);
        assert_eq!(id2.index(), 2); // x, y, then x|y — dense again
        let misses_before = cache.stats().misses;
        cache.table_of_id(&arena, id2, &vars2()).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn since_computes_deltas_and_saturates() {
        let before = CacheStats { hits: 3, misses: 5 };
        let after = CacheStats { hits: 10, misses: 6 };
        assert_eq!(
            after.since(&before),
            CacheStats { hits: 7, misses: 1 }
        );
        // A clear between snapshots must not underflow.
        let reset = CacheStats { hits: 0, misses: 0 };
        assert_eq!(reset.since(&before), CacheStats::default());
    }

    #[test]
    fn occupancy_and_published_metrics_mirror_cache_state() {
        let cache = SigCache::new();
        for src in ["x & y", "x | y", "x ^ y"] {
            let e: Expr = src.parse().unwrap();
            let tt = cache.table_of(&e, &vars2()).unwrap();
            cache.and_coefficients(&tt);
        }
        let occupancy = cache.shard_occupancy();
        assert_eq!(occupancy.len(), SHARDS);
        assert_eq!(occupancy.iter().sum::<usize>(), cache.len());

        let reg = mba_obs::MetricsRegistry::new();
        cache.publish_metrics(&reg);
        let snap = reg.snapshot();
        let stats = cache.stats();
        assert_eq!(snap.gauge("sig.cache.hits"), stats.hits as i64);
        assert_eq!(snap.gauge("sig.cache.misses"), stats.misses as i64);
        assert_eq!(snap.gauge("sig.cache.entries"), cache.len() as i64);
        let shard_total: i64 = (0..SHARDS)
            .map(|i| snap.gauge(&format!("sig.shard.{i:02}.entries")))
            .sum();
        assert_eq!(shard_total, cache.len() as i64);
        // The eval-engine mirror rides along: table_of compiled at
        // least one tape (bit-parallel truth-table extraction), so the
        // published gauges must be non-zero.
        assert!(snap.gauge("eval.tape_compiles") >= 1);
        assert!(snap.gauge("eval.bitparallel.rows") >= 1);
    }

    #[test]
    fn wide_pass_counter_bridges_into_eval_gauges() {
        let e: Expr = "x ^ y".parse().unwrap();
        let program = mba_expr::EvalProgram::compile(&e);
        program.eval_bits_wide(&[[0; mba_expr::WIDE_LANES]; 2]);
        let reg = mba_obs::MetricsRegistry::new();
        publish_eval_engine_metrics(&reg);
        let snap = reg.snapshot();
        assert!(snap.gauge("eval.wide_passes") >= 1);
        // A wide pass contributes its 256 rows to the shared row gauge.
        assert!(snap.gauge("eval.bitparallel.rows") >= 256);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SigCache::new();
        let e: Expr = "x | y".parse().unwrap();
        cache.table_of(&e, &vars2()).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(SigCache::new());
        let exprs: Vec<Expr> = ["x&y", "x|y", "x^y", "~x&~y", "x|~y", "~(x&y)"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let vars = vars2();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let exprs = exprs.clone();
                let vars = vars.clone();
                scope.spawn(move || {
                    for e in &exprs {
                        let tt = cache.table_of(e, &vars).unwrap();
                        let c = cache.and_coefficients(&tt);
                        let direct = SignatureVector::from_truth_table(&tt)
                            .normalized_coefficients();
                        assert_eq!(*c, direct);
                    }
                });
            }
        });
        assert!(cache.stats().hits > 0, "threads must share entries");
    }
}
