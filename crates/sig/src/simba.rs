//! SiMBA-style linear fast path: coefficient recovery from {0, −1}
//! corner evaluations (Reichenwallner & Meerwald-Stadler, arXiv
//! 2209.06335).
//!
//! The classic pipeline simplifies a linear MBA by building one truth
//! table per bitwise term and solving in the normalized basis. The
//! SiMBA observation is that for a *linear* expression `e = Σ aᵢ·eᵢ + c`
//! the whole signature vector can be read off `2^t` evaluations of `e`
//! itself on the corner valuations where every variable is `0` or `−1`
//! (all-ones): a pure bitwise term evaluates to `0` or `−1` on such a
//! valuation according to its truth-table row, so
//!
//! ```text
//! e(corner_r) = −Σ aᵢ·ttᵢ[r] + c = −s_r      (mod 2^w)
//! ```
//!
//! where `s_r` is the row-`r` component of the signature in the
//! [`crate::SignatureVector::of_linear`] convention (constant folded
//! through the `−1` column). Negating the corner evaluations therefore
//! yields the signature, a subset Möbius inversion yields the basis
//! coefficients, and no matrix or per-term truth table is needed.
//!
//! ## Conventions
//!
//! * `vars` must be sorted (callers pass the order of
//!   [`mba_expr::Expr::vars`]); the *first* variable is the most
//!   significant bit of the row index, matching [`crate::TruthTable`]'s
//!   row convention and the MSB-first `row_bit_pattern` layout of
//!   `eval_bits`. Corner `r` assigns variable `j` the value all-ones
//!   iff bit `t−1−j` of `r` is set.
//! * Corner evaluations run through the bit-parallel batch engine
//!   ([`mba_expr::EvalProgram::eval_batch`]): one pass of `2^t` lanes.
//! * Signature components and coefficients are symmetric residues
//!   mod `2^w` (the same representatives `mba-solver`'s polynomial
//!   layer reduces to), so feeding the recovered coefficients into the
//!   existing basis expansion reproduces the classic pipeline's output
//!   byte for byte.
//!
//! The module also keeps the fast path's process-global counters
//! (attempts / hits / fallbacks, plus the semi-linear tier's), which
//! `mba-solver` bumps from its pipeline and
//! [`publish_simba_metrics`] mirrors into an observability registry as
//! `simba.*` gauges next to the `eval.*` engine gauges.

use std::sync::atomic::{AtomicU64, Ordering};

use mba_expr::{mask, Expr, Ident, EvalProgram};

use crate::signature::{and_of_subset, subset_sort_key};
use crate::truth::TruthTable;
use crate::basis::linear_combination;

static ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static SEMI_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static SEMI_HITS: AtomicU64 = AtomicU64::new(0);
static SEMI_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Counts a pipeline invocation eligible for the linear fast path.
pub fn record_attempt() {
    ATTEMPTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a pipeline invocation served by the linear fast path.
pub fn record_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a linear candidate that fell back to the basis pipeline.
pub fn record_fallback() {
    FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a semi-linear candidate entering the group-mask tier.
pub fn record_semi_attempt() {
    SEMI_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a semi-linear candidate simplified by the group-mask tier.
pub fn record_semi_hit() {
    SEMI_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a semi-linear candidate that fell back to the slow path.
pub fn record_semi_fallback() {
    SEMI_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the fast-path counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimbaStats {
    /// Pipeline invocations where the linear fast path was eligible.
    pub attempts: u64,
    /// Invocations served by corner-evaluation recovery.
    pub hits: u64,
    /// Linear candidates that fell back to the basis pipeline.
    pub fallbacks: u64,
    /// Semi-linear candidates entering the group-mask tier.
    pub semi_attempts: u64,
    /// Semi-linear candidates simplified by the group-mask tier.
    pub semi_hits: u64,
    /// Semi-linear candidates that fell back to the slow path.
    pub semi_fallbacks: u64,
}

impl SimbaStats {
    /// Fraction of eligible invocations served by the fast path
    /// (`0.0` when nothing was attempted).
    pub fn hit_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.hits as f64 / self.attempts as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &SimbaStats) -> SimbaStats {
        SimbaStats {
            attempts: self.attempts - earlier.attempts,
            hits: self.hits - earlier.hits,
            fallbacks: self.fallbacks - earlier.fallbacks,
            semi_attempts: self.semi_attempts - earlier.semi_attempts,
            semi_hits: self.semi_hits - earlier.semi_hits,
            semi_fallbacks: self.semi_fallbacks - earlier.semi_fallbacks,
        }
    }
}

/// Reads the process-global fast-path counters.
pub fn simba_stats() -> SimbaStats {
    SimbaStats {
        attempts: ATTEMPTS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        semi_attempts: SEMI_ATTEMPTS.load(Ordering::Relaxed),
        semi_hits: SEMI_HITS.load(Ordering::Relaxed),
        semi_fallbacks: SEMI_FALLBACKS.load(Ordering::Relaxed),
    }
}

/// Mirrors the fast-path counters into `registry` as `simba.*` gauges,
/// the same snapshot-point bridge as
/// [`crate::publish_eval_engine_metrics`].
pub fn publish_simba_metrics(registry: &mba_obs::MetricsRegistry) {
    let s = simba_stats();
    registry.gauge("simba.attempts").set(s.attempts as i64);
    registry.gauge("simba.hits").set(s.hits as i64);
    registry.gauge("simba.fallbacks").set(s.fallbacks as i64);
    registry.gauge("simba.semi.attempts").set(s.semi_attempts as i64);
    registry.gauge("simba.semi.hits").set(s.semi_hits as i64);
    registry
        .gauge("simba.semi.fallbacks")
        .set(s.semi_fallbacks as i64);
}

/// The symmetric residue of `v` mod `2^width`, in
/// `[−2^(width−1), 2^(width−1))` — the same representatives the
/// polynomial layer normalizes coefficients to.
pub fn reduce(v: i128, width: u32) -> i128 {
    let m = 1i128 << width;
    let r = v.rem_euclid(m);
    if r >= m / 2 {
        r - m
    } else {
        r
    }
}

/// Evaluates `e` on all `2^t` {0, −1} corner valuations of `vars` in
/// one batch pass, returning the `width`-masked machine values in row
/// order. `vars` must be sorted and cover every variable of `e`;
/// `None` if it does not, is empty, or exceeds
/// [`TruthTable::MAX_VARS`].
pub fn corner_values(e: &Expr, vars: &[Ident], width: u32) -> Option<Vec<u64>> {
    corner_values_program(&EvalProgram::compile(e), vars, width)
}

/// [`corner_values`] over an already-compiled tape. This is the entry
/// the arena pipeline uses ([`EvalProgram::compile_arena`] produces a
/// tape byte-identical to the tree compile, so the corner values — and
/// everything downstream of them — are identical too).
pub fn corner_values_program(
    program: &EvalProgram,
    vars: &[Ident],
    width: u32,
) -> Option<Vec<u64>> {
    let t = vars.len();
    if t == 0 || t > TruthTable::MAX_VARS || width == 0 || width > 64 {
        return None;
    }
    // The binary searches below require sorted order; on an unsorted
    // slice they would *mostly* miss (None) but can also land on a
    // wrong slot and silently build the wrong column. Decline
    // explicitly instead.
    if !vars.is_sorted() {
        return None;
    }
    let lanes = 1usize << t;
    // Column for variable `j`: all-ones on exactly the lanes whose row
    // index has bit `t−1−j` set (first variable = MSB of the row
    // index). Truncation commutes with every MBA operator, so the
    // unmasked all-ones word is fine — `eval_batch` masks the result.
    let mut columns = Vec::with_capacity(program.vars().len());
    for name in program.vars() {
        let j = vars.binary_search(name).ok()?;
        let select = 1usize << (t - 1 - j);
        let mut column = vec![0u64; lanes];
        for (r, slot) in column.iter_mut().enumerate() {
            if r & select != 0 {
                *slot = u64::MAX;
            }
        }
        columns.push(column);
    }
    Some(program.eval_batch(lanes, &columns, width))
}

/// The signature vector of a linear `e` recovered from corner
/// evaluations alone: `s_r = −e(corner_r)` as a symmetric residue
/// mod `2^w`. Equals [`crate::SignatureVector::of_linear`]'s exact
/// components reduced mod `2^w` whenever `e` is linear over `vars`.
pub fn corner_signature(e: &Expr, vars: &[Ident], width: u32) -> Option<Vec<i128>> {
    corner_signature_program(&EvalProgram::compile(e), vars, width)
}

/// [`corner_signature`] over an already-compiled tape.
pub fn corner_signature_program(
    program: &EvalProgram,
    vars: &[Ident],
    width: u32,
) -> Option<Vec<i128>> {
    let values = corner_values_program(program, vars, width)?;
    Some(
        values
            .into_iter()
            .map(|v| reduce(-(v as i128), width))
            .collect(),
    )
}

/// In-place subset Möbius inversion (signature components → normalized
/// basis coefficients); the inverse of [`zeta`]. `c.len()` must be a
/// power of two. Matches
/// [`crate::SignatureVector::normalized_coefficients`] exactly.
pub fn moebius(c: &mut [i128]) {
    debug_assert!(c.len().is_power_of_two());
    let mut bit = 1usize;
    while bit < c.len() {
        for s in 0..c.len() {
            if s & bit != 0 {
                c[s] -= c[s ^ bit];
            }
        }
        bit <<= 1;
    }
}

/// In-place subset zeta transform (coefficients → signature
/// components); the inverse of [`moebius`].
pub fn zeta(c: &mut [i128]) {
    debug_assert!(c.len().is_power_of_two());
    let mut bit = 1usize;
    while bit < c.len() {
        for s in 0..c.len() {
            if s & bit != 0 {
                c[s] += c[s ^ bit];
            }
        }
        bit <<= 1;
    }
}

/// Deterministic non-corner probe value for variable slot `j` of probe
/// `k` (a splitmix64 finalizer, so adjacent slots decorrelate).
fn probe_value(k: u64, j: u64) -> u64 {
    let mut z = (k << 32) ^ j.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluates the recovered linear combination `Σ c_S·(∧S) + c_0·(−1)`
/// numerically at the given variable values, mod `2^width`.
fn reconstruct(coeffs: &[i128], values: &[u64], width: u32) -> u64 {
    let t = values.len();
    let mut acc = 0u64;
    for (s, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let term = if s == 0 {
            u64::MAX // the −1 column
        } else {
            let mut v = u64::MAX;
            for (j, value) in values.iter().enumerate() {
                if s & (1 << (t - 1 - j)) != 0 {
                    v &= value;
                }
            }
            v
        };
        acc = acc.wrapping_add((c as u64).wrapping_mul(term));
    }
    mask(acc, width)
}

/// Recovers the normalized basis coefficients of a linear `e` from its
/// corner evaluations: corner signature, Möbius inversion, then a
/// verification sweep comparing the recovered combination against `e`
/// on two fixed non-corner valuations. Any mismatch — which means the
/// caller's linearity classification was wrong — returns `None` so the
/// caller can fall back to the truth-table/basis pipeline.
///
/// Coefficients are exact mod `2^width`; indexing follows the subset
/// convention of
/// [`crate::SignatureVector::normalized_coefficients`] (index 0 is the
/// `−1` column carrying the constant).
pub fn recover_coefficients(e: &Expr, vars: &[Ident], width: u32) -> Option<Vec<i128>> {
    recover_coefficients_program(&EvalProgram::compile(e), vars, width)
}

/// [`recover_coefficients`] over an already-compiled tape: the same
/// corner signature, Möbius inversion, and two-probe verification, with
/// the probes evaluated through the tape instead of a tree walk (the
/// batch engine is pinned value-identical to `Expr::eval`).
pub fn recover_coefficients_program(
    program: &EvalProgram,
    vars: &[Ident],
    width: u32,
) -> Option<Vec<i128>> {
    let sig = corner_signature_program(program, vars, width)?;
    let mut coeffs = sig;
    moebius(&mut coeffs);
    for k in 0..2u64 {
        let values: Vec<u64> = (0..vars.len())
            .map(|j| probe_value(k, j as u64))
            .collect();
        let valuation: mba_expr::Valuation = vars
            .iter()
            .cloned()
            .zip(values.iter().copied())
            .collect();
        let direct = program
            .eval_valuations(&[valuation], width)
            .expect("probe valuation binds every program variable")[0];
        if reconstruct(&coeffs, &values, width) != direct {
            return None;
        }
    }
    Some(coeffs)
}

/// Renders recovered coefficients exactly like
/// [`crate::SignatureVector::to_normalized_expr`]: singleton subsets in
/// variable order, larger subsets by size then variable order, constant
/// last.
pub fn render_coefficients(coeffs: &[i128], vars: &[Ident]) -> Expr {
    let t = vars.len();
    assert_eq!(coeffs.len(), 1usize << t, "coefficient count mismatch");
    let mut subsets: Vec<usize> = (1..coeffs.len()).collect();
    subsets.sort_by_key(|&s| (s.count_ones(), subset_sort_key(s, t)));
    let mut terms: Vec<(i128, Expr)> = Vec::new();
    for s in subsets {
        terms.push((coeffs[s], and_of_subset(s, vars)));
    }
    terms.push((coeffs[0], Expr::minus_one()));
    linear_combination(&terms)
}

/// The whole fast route at the signature layer: corner evaluation,
/// Möbius inversion, verification, render. `None` when the expression
/// is out of range or fails verification; the output is byte-identical
/// to `SignatureVector::of_linear(e).to_normalized_expr(vars)` whenever
/// the exact coefficients fit the symmetric range of `width`.
pub fn simplify_linear(e: &Expr, vars: &[Ident], width: u32) -> Option<Expr> {
    let coeffs = recover_coefficients(e, vars, width)?;
    Some(render_coefficients(&coeffs, vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureVector;

    fn vars_of(e: &Expr) -> Vec<Ident> {
        e.vars().into_iter().collect()
    }

    #[test]
    fn corner_signature_matches_of_linear_on_the_running_example() {
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        let vars = vars_of(&e);
        let sig = corner_signature(&e, &vars, 64).unwrap();
        assert_eq!(sig, vec![0, 1, 1, 2]);
        let exact = SignatureVector::of_linear(&e, &vars).unwrap();
        assert_eq!(sig, exact.components());
    }

    #[test]
    fn moebius_and_zeta_are_inverse() {
        let original = vec![3, -1, 4, 1, -5, 9, 2, -6];
        let mut c = original.clone();
        moebius(&mut c);
        zeta(&mut c);
        assert_eq!(c, original);
    }

    #[test]
    fn moebius_matches_normalized_coefficients() {
        let sv = SignatureVector::from_components(3, vec![-1, 0, 0, 1, 0, 1, 1, 2]);
        let mut c = sv.components().to_vec();
        moebius(&mut c);
        assert_eq!(c, sv.normalized_coefficients());
    }

    #[test]
    fn simplify_linear_reduces_the_running_example() {
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        let vars = vars_of(&e);
        assert_eq!(simplify_linear(&e, &vars, 64).unwrap().to_string(), "x+y");
    }

    #[test]
    fn constants_fold_through_the_minus_one_column() {
        let e: Expr = "x + 4".parse().unwrap();
        let vars = vars_of(&e);
        let sig = corner_signature(&e, &vars, 64).unwrap();
        assert_eq!(sig, vec![-4, -3]);
        assert_eq!(simplify_linear(&e, &vars, 64).unwrap().to_string(), "x+4");
    }

    #[test]
    fn narrow_widths_reduce_mod_two_to_the_w() {
        let e: Expr = "200*x".parse().unwrap();
        let vars = vars_of(&e);
        // 200 ≡ −56 (mod 256): the corner route sees the symmetric
        // residue at width 8.
        let coeffs = recover_coefficients(&e, &vars, 8).unwrap();
        assert_eq!(coeffs, vec![0, -56]);
    }

    #[test]
    fn out_of_range_inputs_are_rejected() {
        let e: Expr = "x & y".parse().unwrap();
        let vars = vars_of(&e);
        assert!(corner_values(&e, &vars, 0).is_none());
        assert!(corner_values(&e, &[], 64).is_none());
        // `vars` not covering the expression is rejected.
        assert!(corner_values(&e, &vars[..1], 64).is_none());
    }

    #[test]
    fn verification_rejects_non_linear_inputs() {
        // `x & (x+1)` is not linear; corner interpolation exists but
        // cannot extend to the whole domain, so the probe sweep fails.
        let e: Expr = "x & (x + 1) & y".parse().unwrap();
        let vars = vars_of(&e);
        assert!(recover_coefficients(&e, &vars, 64).is_none());
    }

    #[test]
    fn arena_tape_recovery_matches_tree_recovery() {
        let arena = mba_expr::ExprArena::new();
        for src in [
            "2*(x|y) - (~x&y) - (x&~y)",
            "x + 4",
            "200*x",
            "x & (x + 1) & y", // non-linear: both routes must reject
        ] {
            let e: Expr = src.parse().unwrap();
            let vars = vars_of(&e);
            let id = arena.intern(&e);
            let program = EvalProgram::compile_arena(&arena, id);
            for width in [8, 16, 32, 64] {
                assert_eq!(
                    recover_coefficients_program(&program, &vars, width),
                    recover_coefficients(&e, &vars, width),
                    "`{src}` at width {width}"
                );
            }
        }
    }

    #[test]
    fn counters_accumulate() {
        let before = simba_stats();
        record_attempt();
        record_hit();
        record_semi_attempt();
        record_semi_hit();
        let delta = simba_stats().since(&before);
        assert_eq!(delta.attempts, 1);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.semi_attempts, 1);
        assert_eq!(delta.semi_hits, 1);
        assert!(delta.hit_rate() > 0.0);
    }
}
