//! Truth tables of pure bitwise expressions.
//!
//! MBA identities work bit-slice by bit-slice: a pure bitwise expression
//! over `t` variables is fully described by its value on the `2^t`
//! boolean assignments, and the integer value of the expression on `w`-bit
//! words is the per-bit application of that boolean function. This module
//! extracts those boolean vectors.
//!
//! **Row convention.** Rows are indexed `0 .. 2^t` and follow the paper's
//! tables: the *first* variable in the `vars` slice is the most
//! significant bit of the row index, so for `vars = [x, y]` the rows are
//! `(x,y) = (0,0), (0,1), (1,0), (1,1)`.

use std::fmt;

use mba_expr::program::row_bit_pattern;
use mba_expr::{EvalProgram, Expr, ExprArena, Ident, NodeId};

/// Error returned when a truth table is requested for an expression that
/// is not pure bitwise, or whose variables are not covered by the
/// requested variable order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotBitwiseError {
    detail: String,
}

impl fmt::Display for NotBitwiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression has no truth table: {}", self.detail)
    }
}

impl std::error::Error for NotBitwiseError {}

/// The truth table of a pure bitwise expression over an ordered variable
/// list.
///
/// ```
/// use mba_expr::{Expr, Ident};
/// use mba_sig::TruthTable;
///
/// let e: Expr = "x | ~y".parse().unwrap();
/// let vars = [Ident::new("x"), Ident::new("y")];
/// let tt = TruthTable::of(&e, &vars).unwrap();
/// // Rows (x,y) = 00, 01, 10, 11 — matching the paper's Example 1 column.
/// assert_eq!(tt.rows(), [true, false, true, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    /// Row `r`'s boolean value lives in bit `r % 64` of block `r / 64`.
    blocks: Vec<u64>,
}

impl TruthTable {
    /// Maximum supported variable count (`2^12 = 4096` rows). The
    /// paper's prototype normalizes at most a handful of variables;
    /// block storage lifts that to 12 — expressions wider than this are
    /// kept opaque by the simplifier.
    pub const MAX_VARS: usize = 12;

    /// Variable count up to which the table fits one `u64` and
    /// [`TruthTable::bits`] / [`TruthTable::from_bits`] are available.
    pub const PACKED_MAX_VARS: usize = 6;

    /// Computes the truth table of `e` over `vars`, **bit-parallel**:
    /// the expression is compiled once to an [`EvalProgram`] tape and
    /// each tape pass computes 64 rows at once (each variable bound to
    /// the lane-packed pattern word of its row-index bit), so the cost
    /// is `ceil(2^t / 64)` passes instead of `2^t` tree walks.
    ///
    /// # Errors
    ///
    /// Fails if `e` is not pure bitwise, mentions a variable outside
    /// `vars`, or `vars` has more than [`TruthTable::MAX_VARS`] entries
    /// (or duplicates).
    pub fn of(e: &Expr, vars: &[Ident]) -> Result<TruthTable, NotBitwiseError> {
        Self::validate(e, vars)?;
        Ok(Self::of_program(&EvalProgram::compile(e), vars))
    }

    /// Computes the truth table of an arena-interned subtree — the
    /// id-level twin of [`TruthTable::of`], byte-identical to
    /// `TruthTable::of(&arena.extract(id), vars)` on every input.
    /// Preconditions are checked from the arena's precomputed metadata
    /// (O(1) purity, O(vars) variable set) and the tape is compiled
    /// straight off the node store
    /// ([`EvalProgram::compile_arena`]), so no `Box`-tree is
    /// materialized on the hot path.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`TruthTable::of`] fails on the extracted
    /// tree.
    pub fn of_arena(
        arena: &ExprArena,
        id: NodeId,
        vars: &[Ident],
    ) -> Result<TruthTable, NotBitwiseError> {
        Self::validate_arena(arena, id, vars)?;
        Ok(Self::of_program(&EvalProgram::compile_arena(arena, id), vars))
    }

    /// Shared table-building body of [`TruthTable::of`] and
    /// [`TruthTable::of_arena`]: runs a validated, compiled tape over
    /// every row block.
    fn of_program(program: &EvalProgram, vars: &[Ident]) -> TruthTable {
        let t = vars.len();
        let rows = 1usize << t;
        // Row-index bit position of each *program* variable slot: the
        // first variable in `vars` is the most significant bit (the
        // module-level row convention), and the program may use any
        // subset of `vars`.
        let positions: Vec<u32> = program
            .vars()
            .iter()
            .map(|v| {
                let j = vars.iter().position(|x| x == v).expect("validated above");
                (t - 1 - j) as u32
            })
            .collect();
        let mut words = vec![0u64; positions.len()];
        let mut blocks = vec![0u64; rows.div_ceil(64)];
        for (block, out) in blocks.iter_mut().enumerate() {
            for (word, &p) in words.iter_mut().zip(&positions) {
                *word = row_bit_pattern(p, block);
            }
            *out = program.eval_bits(&words);
        }
        if rows < 64 {
            // Lanes past the last row carry garbage; the table's Eq and
            // Hash read whole blocks, so mask them off.
            blocks[0] &= (1u64 << rows) - 1;
        }
        TruthTable {
            num_vars: t,
            blocks,
        }
    }

    /// The scalar reference implementation of [`TruthTable::of`]: one
    /// full tree walk per row under a per-row [`mba_expr::Valuation`].
    /// Kept as the differential-testing and benchmarking baseline for
    /// the bit-parallel path — `of` and `of_scalar` must agree on every
    /// input, byte for byte.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`TruthTable::of`] fails.
    pub fn of_scalar(e: &Expr, vars: &[Ident]) -> Result<TruthTable, NotBitwiseError> {
        Self::validate(e, vars)?;
        let t = vars.len();
        let rows = 1usize << t;
        let mut blocks = vec![0u64; rows.div_ceil(64)];
        for row in 0..rows {
            let mut valuation = mba_expr::Valuation::new();
            for (j, var) in vars.iter().enumerate() {
                let bit = ((row >> (t - 1 - j)) & 1) as u64;
                valuation.set(var.clone(), bit);
            }
            if e.eval(&valuation, 1) == 1 {
                blocks[row / 64] |= 1 << (row % 64);
            }
        }
        Ok(TruthTable {
            num_vars: t,
            blocks,
        })
    }

    /// Shared precondition checks of [`TruthTable::of`] and
    /// [`TruthTable::of_scalar`].
    fn validate(e: &Expr, vars: &[Ident]) -> Result<(), NotBitwiseError> {
        if vars.len() > Self::MAX_VARS {
            return Err(NotBitwiseError {
                detail: format!("{} variables exceed the maximum of {}", vars.len(), Self::MAX_VARS),
            });
        }
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return Err(NotBitwiseError {
                    detail: format!("duplicate variable `{v}` in order"),
                });
            }
        }
        if !e.is_pure_bitwise() {
            return Err(NotBitwiseError {
                detail: format!("`{e}` contains arithmetic operators or non-uniform constants"),
            });
        }
        if let Some(stray) = e.vars().iter().find(|v| !vars.contains(v)) {
            return Err(NotBitwiseError {
                detail: format!("variable `{stray}` not in the provided order"),
            });
        }
        Ok(())
    }

    /// Arena twin of [`TruthTable::validate`]: the same checks in the
    /// same order producing the same messages, but answered from the
    /// arena's precomputed metadata. The `Box`-tree is only rebuilt on
    /// the cold error path, where the message quotes the expression.
    fn validate_arena(
        arena: &ExprArena,
        id: NodeId,
        vars: &[Ident],
    ) -> Result<(), NotBitwiseError> {
        if vars.len() > Self::MAX_VARS {
            return Err(NotBitwiseError {
                detail: format!("{} variables exceed the maximum of {}", vars.len(), Self::MAX_VARS),
            });
        }
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return Err(NotBitwiseError {
                    detail: format!("duplicate variable `{v}` in order"),
                });
            }
        }
        if !arena.is_pure_bitwise(id) {
            return Err(NotBitwiseError {
                detail: format!(
                    "`{}` contains arithmetic operators or non-uniform constants",
                    arena.extract(id)
                ),
            });
        }
        if let Some(stray) = arena.vars(id).iter().find(|v| !vars.contains(v)) {
            return Err(NotBitwiseError {
                detail: format!("variable `{stray}` not in the provided order"),
            });
        }
        Ok(())
    }

    /// Builds a truth table directly from a row bitmask (row `r` true iff
    /// bit `r` of `bits` is set). Only available for tables that fit one
    /// `u64` ([`TruthTable::PACKED_MAX_VARS`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > PACKED_MAX_VARS` or `bits` has bits set
    /// beyond row `2^num_vars - 1`.
    pub fn from_bits(num_vars: usize, bits: u64) -> TruthTable {
        assert!(num_vars <= Self::PACKED_MAX_VARS, "too many variables");
        let rows = 1u64 << num_vars;
        if rows < 64 {
            assert!(bits < (1u64 << rows), "bits outside table range");
        }
        TruthTable {
            num_vars,
            blocks: vec![bits],
        }
    }

    /// The raw row blocks backing the table (row `r` in bit `r % 64` of
    /// block `r / 64`) — the serialization counterpart of
    /// [`TruthTable::from_blocks`].
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuilds a table from `num_vars` and its raw row blocks — the
    /// inverse of [`TruthTable::blocks`], used by the cache snapshot
    /// loader. Unlike [`TruthTable::from_bits`] this covers the full
    /// [`TruthTable::MAX_VARS`] range.
    ///
    /// # Errors
    ///
    /// Rejects a variable count over the maximum, a block count that
    /// does not match `2^num_vars` rows, and set bits beyond the last
    /// row (which would break the table's `Eq`/`Hash` contract).
    pub fn from_blocks(num_vars: usize, blocks: Vec<u64>) -> Result<TruthTable, String> {
        if num_vars > Self::MAX_VARS {
            return Err(format!(
                "{num_vars} variables exceed the maximum of {}",
                Self::MAX_VARS
            ));
        }
        let rows = 1usize << num_vars;
        if blocks.len() != rows.div_ceil(64) {
            return Err(format!(
                "{} blocks do not hold exactly {rows} rows",
                blocks.len()
            ));
        }
        if rows < 64 && blocks[0] >= (1u64 << rows) {
            return Err("bits set beyond the last row".into());
        }
        Ok(TruthTable { num_vars, blocks })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of rows (`2^num_vars`).
    pub fn num_rows(&self) -> usize {
        1 << self.num_vars
    }

    /// The row bitmask (row `r` in bit `r`).
    ///
    /// # Panics
    ///
    /// Panics when the table has more than 64 rows; use
    /// [`TruthTable::row`] for wide tables.
    pub fn bits(&self) -> u64 {
        assert!(
            self.num_vars <= Self::PACKED_MAX_VARS,
            "table too wide for a packed bitmask"
        );
        self.blocks[0]
    }

    /// The boolean value at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.num_rows()`.
    pub fn row(&self, row: usize) -> bool {
        assert!(row < self.num_rows(), "row out of range");
        (self.blocks[row / 64] >> (row % 64)) & 1 == 1
    }

    /// All rows as booleans, row 0 first.
    pub fn rows(&self) -> Vec<bool> {
        (0..self.num_rows()).map(|r| self.row(r)).collect()
    }

    /// The table as a 0/1 integer column — one column of the paper's
    /// matrix `M`.
    pub fn column(&self) -> Vec<i128> {
        (0..self.num_rows()).map(|r| i128::from(self.row(r))).collect()
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<String> = self.column().iter().map(i128::to_string).collect();
        write!(f, "({})", rows.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars2() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y")]
    }

    fn tt(src: &str) -> TruthTable {
        TruthTable::of(&src.parse().unwrap(), &vars2()).unwrap()
    }

    #[test]
    fn basic_tables_match_paper_example_1() {
        assert_eq!(tt("x").column(), [0, 0, 1, 1]);
        assert_eq!(tt("y").column(), [0, 1, 0, 1]);
        assert_eq!(tt("x ^ y").column(), [0, 1, 1, 0]);
        assert_eq!(tt("x | ~y").column(), [1, 0, 1, 1]);
        assert_eq!(tt("-1").column(), [1, 1, 1, 1]);
    }

    #[test]
    fn table_3_base_vectors() {
        assert_eq!(tt("~x & ~y").column(), [1, 0, 0, 0]);
        assert_eq!(tt("~x & y").column(), [0, 1, 0, 0]);
        assert_eq!(tt("x & ~y").column(), [0, 0, 1, 0]);
        assert_eq!(tt("x & y").column(), [0, 0, 0, 1]);
    }

    #[test]
    fn constants() {
        assert_eq!(tt("0").column(), [0, 0, 0, 0]);
        assert_eq!(tt("x & 0").column(), [0, 0, 0, 0]);
        assert_eq!(tt("x | -1").column(), [1, 1, 1, 1]);
    }

    #[test]
    fn single_variable_table() {
        let vars = [Ident::new("x")];
        let t = TruthTable::of(&"~x".parse().unwrap(), &vars).unwrap();
        assert_eq!(t.column(), [1, 0]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn three_variable_majority() {
        let vars = [Ident::new("x"), Ident::new("y"), Ident::new("z")];
        let e: Expr = "(x&y) | (y&z) | (x&z)".parse().unwrap();
        let t = TruthTable::of(&e, &vars).unwrap();
        // Rows xyz = 000,001,010,011,100,101,110,111.
        assert_eq!(t.column(), [0, 0, 0, 1, 0, 1, 1, 1]);
    }

    #[test]
    fn rejects_arithmetic() {
        let err = TruthTable::of(&"x + y".parse().unwrap(), &vars2()).unwrap_err();
        assert!(err.to_string().contains("no truth table"));
        assert!(TruthTable::of(&"x & 3".parse().unwrap(), &vars2()).is_err());
    }

    #[test]
    fn rejects_stray_variable() {
        assert!(TruthTable::of(&"x & z".parse().unwrap(), &vars2()).is_err());
    }

    #[test]
    fn rejects_duplicate_vars() {
        let dup = [Ident::new("x"), Ident::new("x")];
        assert!(TruthTable::of(&"x".parse().unwrap(), &dup).is_err());
    }

    #[test]
    fn rejects_too_many_vars() {
        let many: Vec<Ident> = (0..13).map(|i| Ident::new(format!("v{i}"))).collect();
        assert!(TruthTable::of(&"v0".parse().unwrap(), &many).is_err());
    }

    #[test]
    fn wide_tables_use_block_storage() {
        // 8 variables: 256 rows, 4 blocks.
        let vars: Vec<Ident> = (0..8).map(|i| Ident::new(format!("v{i}"))).collect();
        let conj = vars[1..]
            .iter()
            .fold("v0".parse::<Expr>().unwrap(), |acc, v| {
                acc & Expr::var(v.clone())
            });
        let t = TruthTable::of(&conj, &vars).unwrap();
        assert_eq!(t.num_rows(), 256);
        // Only the all-ones row is true.
        assert!(t.row(255));
        assert_eq!((0..256).filter(|&r| t.row(r)).count(), 1);
        // Packed access must refuse.
        let result = std::panic::catch_unwind(|| t.bits());
        assert!(result.is_err());
    }

    #[test]
    fn bit_parallel_matches_scalar_reference() {
        // The bit-parallel path and the row-per-tree-walk reference must
        // be byte-identical, across packed (≤64 rows) and block (>64
        // rows) storage.
        let vars: Vec<Ident> = (0..7).map(|i| Ident::new(format!("v{i}"))).collect();
        let cases = [
            "v0",
            "~v0",
            "v0 & v1",
            "(v0 ^ v1) | ~(v2 & v3)",
            "((v0 | v1) & (v2 | v3)) ^ (v4 & ~v5)",
            "~(v0 ^ v1 ^ v2 ^ v3 ^ v4 ^ v5 ^ v6)",
            "(v0 & -1) | (v1 & 0)",
        ];
        for src in cases {
            let e: Expr = src.parse().unwrap();
            for t in [1, 2, 3, 6, 7] {
                if e.vars().len() > t {
                    continue;
                }
                let order = &vars[..t];
                let fast = TruthTable::of(&e, order).unwrap();
                let slow = TruthTable::of_scalar(&e, order).unwrap();
                assert_eq!(fast, slow, "{src} over {t} vars");
            }
        }
    }

    #[test]
    fn scalar_reference_rejects_what_of_rejects() {
        assert!(TruthTable::of_scalar(&"x + y".parse().unwrap(), &vars2()).is_err());
        assert!(TruthTable::of_scalar(&"x & z".parse().unwrap(), &vars2()).is_err());
    }

    #[test]
    fn of_arena_is_byte_identical_to_of() {
        let arena = ExprArena::new();
        let vars: Vec<Ident> = (0..7).map(|i| Ident::new(format!("v{i}"))).collect();
        for src in [
            "v0",
            "~v0",
            "v0 & v1",
            "(v0 ^ v1) | ~(v2 & v3)",
            "((v0 | v1) & (v2 | v3)) ^ (v4 & ~v5)",
            "(v0 & -1) | (v1 & 0)",
        ] {
            let e: Expr = src.parse().unwrap();
            let id = arena.intern(&e);
            for t in [1, 2, 4, 7] {
                if e.vars().len() > t {
                    continue;
                }
                let order = &vars[..t];
                assert_eq!(
                    TruthTable::of_arena(&arena, id, order).unwrap(),
                    TruthTable::of(&e, order).unwrap(),
                    "{src} over {t} vars"
                );
            }
        }
    }

    #[test]
    fn of_arena_rejects_what_of_rejects() {
        let arena = ExprArena::new();
        for src in ["x + y", "x & 3", "x & z"] {
            let e: Expr = src.parse().unwrap();
            let id = arena.intern(&e);
            let tree = TruthTable::of(&e, &vars2()).unwrap_err();
            let from_arena = TruthTable::of_arena(&arena, id, &vars2()).unwrap_err();
            assert_eq!(from_arena, tree, "error divergence for `{src}`");
        }
        let dup = [Ident::new("x"), Ident::new("x")];
        let id = arena.intern(&"x".parse().unwrap());
        assert!(TruthTable::of_arena(&arena, id, &dup).is_err());
    }

    #[test]
    fn blocks_roundtrip_through_from_blocks() {
        // Packed (4 rows) and block (256 rows) tables both survive the
        // serialization round-trip byte-identically.
        let small = tt("x ^ y");
        let again = TruthTable::from_blocks(2, small.blocks().to_vec()).unwrap();
        assert_eq!(small, again);
        let vars: Vec<Ident> = (0..8).map(|i| Ident::new(format!("v{i}"))).collect();
        let wide = TruthTable::of(&"v0 ^ v7".parse().unwrap(), &vars).unwrap();
        let again = TruthTable::from_blocks(8, wide.blocks().to_vec()).unwrap();
        assert_eq!(wide, again);
        // Structural validation refuses malformed inputs.
        assert!(TruthTable::from_blocks(13, vec![0; 64]).is_err());
        assert!(TruthTable::from_blocks(8, vec![0; 3]).is_err());
        assert!(TruthTable::from_blocks(2, vec![0b10000]).is_err());
    }

    #[test]
    fn from_bits_roundtrip() {
        let t = TruthTable::from_bits(2, 0b0110);
        assert_eq!(t.column(), [0, 1, 1, 0]);
        assert_eq!(t, tt("x ^ y"));
        assert_eq!(t.bits(), 0b0110);
    }

    #[test]
    #[should_panic(expected = "bits outside table range")]
    fn from_bits_rejects_extra_bits() {
        TruthTable::from_bits(1, 0b100);
    }

    #[test]
    fn display_shows_rows() {
        assert_eq!(tt("x & y").to_string(), "(0,0,0,1)");
    }
}
