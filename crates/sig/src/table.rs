//! The pre-computed simplification table of paper §4.4 (Table 5) and its
//! generalization.
//!
//! The table maps every 0/1 signature vector (i.e. every boolean function
//! used as a bitwise sub-expression) to its normalized MBA expression in
//! the `{x, y, x∧y, −1}` basis. MBA-Solver consults it to rewrite the
//! bitwise factors of non-linear MBA into low-alternation form.

use mba_expr::{Expr, Ident};

use crate::signature::SignatureVector;
use crate::truth::TruthTable;

/// Maximum variable count for full-table enumeration (`2^(2^4) = 65536`
/// boolean functions at four variables; five would need `2^32`).
pub const MAX_ENUMERATED_VARS: usize = 4;

/// One row of a simplification table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// The 0/1 signature vector (a truth-table column).
    pub signature: SignatureVector,
    /// The normalized MBA expression with that signature.
    pub expression: Expr,
}

/// Enumerates the normalized expression for every boolean function over
/// `vars` — the generalization of Table 5 to any supported variable
/// count.
///
/// Rows are ordered by truth-table bitmask.
///
/// # Panics
///
/// Panics if `vars` is empty or longer than [`MAX_ENUMERATED_VARS`].
pub fn precomputed_table(vars: &[Ident]) -> Vec<TableRow> {
    assert!(
        (1..=MAX_ENUMERATED_VARS).contains(&vars.len()),
        "table supports 1..={MAX_ENUMERATED_VARS} variables"
    );
    let rows = 1usize << vars.len();
    let masks = 1u64 << rows;
    (0..masks)
        .map(|mask| {
            let tt = TruthTable::from_bits(vars.len(), mask);
            let signature = SignatureVector::from_truth_table(&tt);
            let expression = signature.to_normalized_expr(vars);
            TableRow {
                signature,
                expression,
            }
        })
        .collect()
}

/// The paper's Table 5: the two-variable table over `x`, `y`.
pub fn two_variable_table() -> Vec<TableRow> {
    precomputed_table(&[Ident::new("x"), Ident::new("y")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    /// Finds the row whose signature is `sig` (given in paper row order).
    fn lookup(table: &[TableRow], sig: [i128; 4]) -> &TableRow {
        table
            .iter()
            .find(|row| row.signature.components() == sig)
            .expect("signature present")
    }

    #[test]
    fn reproduces_paper_table_5_exactly() {
        let table = two_variable_table();
        assert_eq!(table.len(), 16);
        // (signature, expected normalized MBA) — all 16 rows of Table 5.
        let expected: &[([i128; 4], &str)] = &[
            // Base vectors.
            ([0, 0, 1, 1], "x"),
            ([0, 1, 0, 1], "y"),
            ([0, 0, 0, 1], "x&y"),
            ([1, 1, 1, 1], "-1"),
            // Derivative rows.
            ([0, 0, 0, 0], "0"),
            ([0, 0, 1, 0], "x-(x&y)"),
            ([0, 1, 0, 0], "y-(x&y)"),
            ([0, 1, 1, 0], "x+y-2*(x&y)"),
            ([0, 1, 1, 1], "x+y-(x&y)"),
            ([1, 0, 0, 0], "-x-y+(x&y)-1"),
            ([1, 0, 0, 1], "-x-y+2*(x&y)-1"),
            ([1, 0, 1, 0], "-y-1"),
            ([1, 0, 1, 1], "-y+(x&y)-1"),
            ([1, 1, 0, 0], "-x-1"),
            ([1, 1, 0, 1], "-x+(x&y)-1"),
            ([1, 1, 1, 0], "-(x&y)-1"),
        ];
        for &(sig, text) in expected {
            let row = lookup(&table, sig);
            assert_eq!(
                row.expression.to_string(),
                text,
                "signature {:?} produced a different normalized form",
                sig
            );
        }
    }

    #[test]
    fn table_rows_are_semantically_faithful() {
        // Each row's expression, evaluated bitwise, matches its signature
        // interpreted as a boolean function on every input.
        let table = two_variable_table();
        for row in &table {
            for (x, y) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                let v = Valuation::new().with("x", x).with("y", y);
                let idx = (x << 1 | y) as usize;
                let want = row.signature.components()[idx] as u64 & 1;
                assert_eq!(
                    row.expression.eval(&v, 1),
                    want,
                    "row {} mismatches at ({x},{y})",
                    row.signature
                );
            }
        }
    }

    #[test]
    fn normalized_forms_use_only_the_and_basis() {
        // No ∨, ⊕ or ¬ may appear: alternation stays minimal.
        let table = two_variable_table();
        for row in &table {
            let text = row.expression.to_string();
            assert!(
                !text.contains('|') && !text.contains('^') && !text.contains('~'),
                "row {} leaked a non-basis operator: {text}",
                row.signature
            );
        }
    }

    #[test]
    fn one_variable_table() {
        let table = precomputed_table(&[Ident::new("x")]);
        let texts: Vec<String> = table.iter().map(|r| r.expression.to_string()).collect();
        // Masks 0b00, 0b01, 0b10, 0b11 → 0, ¬x = −x−1, x, −1.
        assert_eq!(texts, ["0", "-x-1", "x", "-1"]);
    }

    #[test]
    fn three_variable_table_has_256_rows() {
        let vars = [Ident::new("x"), Ident::new("y"), Ident::new("z")];
        let table = precomputed_table(&vars);
        assert_eq!(table.len(), 256);
        // Spot check: the signature of x∧y∧z is the single-row column.
        let last = table.iter().find(|r| r.signature.components()
            == [0, 0, 0, 0, 0, 0, 0, 1]).unwrap();
        assert_eq!(last.expression.to_string(), "x&y&z");
    }
}
