//! Property tests for Theorem 1's machinery: normalization preserves
//! semantics and signatures are canonical.

use mba_expr::{Expr, Ident, Valuation};
use mba_sig::SignatureVector;
use proptest::prelude::*;

/// Random pure bitwise expressions over {x, y}.
fn arb_bitwise2() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        Just(Expr::zero()),
        Just(Expr::minus_one()),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.prop_map(|e| !e),
        ]
    })
}

/// Random linear MBA over {x, y}: a signed combination of bitwise terms
/// plus a constant.
fn arb_linear2() -> impl Strategy<Value = Expr> {
    (
        proptest::collection::vec((-20i128..=20, arb_bitwise2()), 1..5),
        -30i128..=30,
    )
        .prop_map(|(terms, konst)| {
            let mut all: Vec<(i128, Expr)> = terms;
            all.push((konst, Expr::one()));
            mba_sig::linear_combination(&all)
        })
}

fn vars2() -> Vec<Ident> {
    vec![Ident::new("x"), Ident::new("y")]
}

proptest! {
    /// The normalized expression is semantically identical to the input
    /// on random 64-bit inputs at several widths.
    #[test]
    fn normalization_preserves_semantics(
        e in arb_linear2(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let vars = vars2();
        let sig = SignatureVector::of_linear(&e, &vars).expect("linear by construction");
        let normalized = sig.to_normalized_expr(&vars);
        let v = Valuation::new().with("x", x).with("y", y);
        for w in [1u32, 7, 8, 16, 32, 64] {
            prop_assert_eq!(
                e.eval(&v, w),
                normalized.eval(&v, w),
                "width {} on `{}` -> `{}`", w, e, normalized
            );
        }
    }

    /// Signatures are canonical: the normalized expression has the same
    /// signature as the original (Theorem 1, both directions).
    #[test]
    fn signature_is_invariant_under_normalization(e in arb_linear2()) {
        let vars = vars2();
        let sig = SignatureVector::of_linear(&e, &vars).expect("linear");
        let normalized = sig.to_normalized_expr(&vars);
        let sig2 = SignatureVector::of_linear(&normalized, &vars).expect("still linear");
        prop_assert_eq!(sig, sig2);
    }

    /// Normalization never increases MBA alternation beyond the input's
    /// (the whole point of §4.3).
    #[test]
    fn normalization_never_uses_foreign_operators(e in arb_linear2()) {
        let vars = vars2();
        let sig = SignatureVector::of_linear(&e, &vars).expect("linear");
        let text = sig.to_normalized_expr(&vars).to_string();
        prop_assert!(!text.contains('|'));
        prop_assert!(!text.contains('^'));
        prop_assert!(!text.contains('~'));
    }

    /// Möbius inversion agrees with the generic linear solve against the
    /// same basis.
    #[test]
    fn moebius_matches_generic_solve(e in arb_linear2()) {
        let vars = vars2();
        let sig = SignatureVector::of_linear(&e, &vars).expect("linear");
        let basis: Vec<Expr> = ["x&y", "y", "x", "-1"]
            .iter().map(|s| s.parse().unwrap()).collect();
        let solved = sig
            .solve_in_basis(&basis, &vars)
            .expect("basis is bitwise")
            .expect("unimodular basis always solves");
        let moebius = sig.normalized_coefficients();
        // Basis order above: x&y = mask 0b11, y = 0b01, x = 0b10, −1 = 0.
        prop_assert_eq!(solved, vec![moebius[0b11], moebius[0b01], moebius[0b10], moebius[0]]);
    }
}
