//! Id-keyed signature caching vs the classic expression-keyed caching,
//! replayed over a corpus with cross-expression structure sharing.
//!
//! Three contracts pinned here:
//!
//! 1. **Counter agreement** — replaying the same lookup stream through
//!    `table_of` (expression-keyed) and `table_of_id` (id-keyed) records
//!    the *same* hit/miss counters and returns byte-equal tables; the
//!    keying scheme is an addressing detail, not a semantic one.
//! 2. **Cross-expression CSE** — one cache shared across the corpus
//!    collects strictly more hits than fresh per-expression caches sum
//!    to, because hash-consing makes the `x & y` inside one expression
//!    *the same id* as the `x & y` inside another.
//! 3. **Telemetry mirror** — `publish_arena_metrics` gauges equal the
//!    arena's own stats snapshot.

use mba_expr::{Expr, ExprArena, Ident};
use mba_obs::MetricsRegistry;
use mba_sig::{publish_arena_metrics, SigCache, TruthTable};

/// A replay corpus of pure-bitwise expressions that deliberately share
/// subtrees across entries (`x & y`, `y | z`).
fn corpus() -> Vec<Expr> {
    [
        "x & y",
        "(x & y) | z",
        "~(x & y)",
        "y | z",
        "x ^ (y | z)",
        "(x & y) ^ (y | z)",
        "~x | (x & y)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// The (subexpression, vars) lookup stream one corpus entry generates:
/// every pure-bitwise subtree with a table-sized variable set, in
/// pre-order — the shape of what skeleton extraction feeds the cache.
fn lookups(e: &Expr) -> Vec<(&Expr, Vec<Ident>)> {
    e.subexprs()
        .into_iter()
        .filter(|s| s.is_pure_bitwise())
        .filter_map(|s| {
            let vars: Vec<Ident> = s.vars().into_iter().collect();
            (!vars.is_empty() && vars.len() <= TruthTable::MAX_VARS)
                .then_some((s, vars))
        })
        .collect()
}

#[test]
fn id_keyed_replay_agrees_with_expr_keyed_replay() {
    let expr_keyed = SigCache::new();
    let id_keyed = SigCache::new();
    let arena = ExprArena::new();
    for e in &corpus() {
        for (sub, vars) in lookups(e) {
            let a = expr_keyed.table_of(sub, &vars).expect("pure bitwise");
            let id = arena.intern(sub);
            let b = id_keyed
                .table_of_id(&arena, id, &vars)
                .expect("pure bitwise");
            assert_eq!(*a, *b, "tables diverge on `{sub}`");
        }
    }
    let (a, b) = (expr_keyed.stats(), id_keyed.stats());
    assert_eq!(a, b, "keying scheme changed the hit/miss stream");
    assert!(a.hits > 0, "corpus must actually share subtrees");
    assert!(
        arena.stats().interned_hits > 0,
        "shared subtrees must intern to shared ids"
    );
}

#[test]
fn shared_cache_collects_strictly_more_hits_than_per_expression_caches() {
    // Per-expression baseline: a fresh cache and arena per entry can
    // only hit on repetition *within* one expression.
    let mut isolated_hits = 0;
    for e in &corpus() {
        let cache = SigCache::new();
        let arena = ExprArena::new();
        for (sub, vars) in lookups(e) {
            let id = arena.intern(sub);
            cache.table_of_id(&arena, id, &vars).expect("pure bitwise");
        }
        isolated_hits += cache.stats().hits;
    }
    // Shared cache + shared arena across the whole corpus.
    let cache = SigCache::new();
    let arena = ExprArena::new();
    for e in &corpus() {
        for (sub, vars) in lookups(e) {
            let id = arena.intern(sub);
            cache.table_of_id(&arena, id, &vars).expect("pure bitwise");
        }
    }
    let shared_hits = cache.stats().hits;
    assert!(
        shared_hits > isolated_hits,
        "cross-expression CSE must add hits: shared {shared_hits} vs isolated {isolated_hits}"
    );
}

#[test]
fn arena_gauges_mirror_arena_stats() {
    let arena = ExprArena::new();
    for e in &corpus() {
        arena.intern(e);
    }
    let registry = MetricsRegistry::new();
    publish_arena_metrics(&arena, &registry);
    let stats = arena.stats();
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("arena.nodes"), stats.nodes as i64);
    assert_eq!(snap.gauge("arena.idents"), stats.idents as i64);
    assert_eq!(
        snap.gauge("arena.interned_hits"),
        stats.interned_hits as i64
    );
    assert_eq!(snap.gauge("arena.bytes"), stats.bytes as i64);
    assert_eq!(snap.gauge("arena.generation"), stats.generation as i64);
    assert!(stats.nodes > 0 && stats.bytes > 0);
}

#[test]
fn clearing_the_arena_invalidates_id_keys_but_keeps_tables_correct() {
    let cache = SigCache::new();
    let arena = ExprArena::new();
    let e: Expr = "x & y".parse().unwrap();
    let vars: Vec<Ident> = e.vars().into_iter().collect();
    let id = arena.intern(&e);
    let before = cache.table_of_id(&arena, id, &vars).expect("pure bitwise");
    arena.clear();
    // Same dense index after re-interning, but a new generation: the
    // lookup must miss (generation is part of the key), then recompute
    // the same table.
    let id2 = arena.intern(&e);
    assert_eq!(id2.index(), id.index());
    let stats_before = cache.stats();
    let after = cache.table_of_id(&arena, id2, &vars).expect("pure bitwise");
    let stats_after = cache.stats();
    assert_eq!(stats_after.misses, stats_before.misses + 1);
    assert_eq!(stats_after.hits, stats_before.hits);
    assert_eq!(*before, *after);
}
