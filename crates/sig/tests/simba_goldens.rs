//! Golden pins for the SiMBA-style fast route.
//!
//! The corner-recovery examples are the worked examples of the SiMBA
//! paper (arXiv 2209.06335): evaluate a linear MBA on the 2^t
//! valuations drawing each variable from {0, −1}, negate and reduce,
//! and the resulting corner signature Möbius-inverts straight into the
//! ∧-basis coefficients. The semi-linear identities are drawn from the
//! equivalence classes of arXiv 2406.10016 (bitwise operands extended
//! with constants): each must classify as `SemiLinear` and hold at
//! every power-of-two width — they are the shapes the pipeline's
//! group-mask tier re-fuses.

use mba_expr::{classify::classify, Expr, Ident, MbaClass, Valuation};
use mba_sig::{simba, SignatureVector};

fn vars_of(e: &Expr) -> Vec<Ident> {
    e.vars().into_iter().collect()
}

#[test]
fn corner_signature_golden_running_example() {
    // The paper's running example: e = 2*(x|y) − (~x∧y) − (x∧~y).
    // Corners in MSB-first order (x is the high selector bit):
    //   (0,0) → 0, (0,−1) → 1, (−1,0) → 1, (−1,−1) → 2.
    let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
    let vars = vars_of(&e);
    assert_eq!(
        simba::corner_signature(&e, &vars, 64).unwrap(),
        vec![0, 1, 1, 2]
    );
    // Möbius inversion of [0,1,1,2] is [0,1,1,0]: coefficient 1 on x,
    // 1 on y, 0 on x∧y and on the −1 column — i.e. x + y.
    assert_eq!(
        simba::simplify_linear(&e, &vars, 64).unwrap().to_string(),
        "x+y"
    );
}

#[test]
fn corner_signature_golden_three_variables() {
    // e = x + y + z + 1 over corners (x,y,z) ∈ {0,−1}³, x the MSB
    // selector: s_r = −e(corner_r), so the all-zero corner gives −1 and
    // the all-ones corner gives −(−3+1) = 2.
    let e: Expr = "x + y + z + 1".parse().unwrap();
    let vars = vars_of(&e);
    assert_eq!(
        simba::corner_signature(&e, &vars, 64).unwrap(),
        vec![-1, 0, 0, 1, 0, 1, 1, 2]
    );
}

#[test]
fn corner_signature_golden_constant_offset() {
    // e = x + 4: s = [−e(0), −e(−1)] = [−4, −3].
    let e: Expr = "x + 4".parse().unwrap();
    let vars = vars_of(&e);
    assert_eq!(simba::corner_signature(&e, &vars, 64).unwrap(), vec![-4, -3]);
}

#[test]
fn corner_signature_golden_wraps_at_narrow_width() {
    // e = 200·x at width 8: 200·255 ≡ 56 (mod 256), so the all-ones
    // corner reads −56 after symmetric reduction — corner recovery is
    // exact mod 2^w, not over ℤ.
    let e: Expr = "200*x".parse().unwrap();
    let vars = vars_of(&e);
    assert_eq!(simba::corner_signature(&e, &vars, 8).unwrap(), vec![0, -56]);
    // And the recovered combination stays byte-identical to the exact
    // route after the same reduction: 200 ≡ −56 (mod 256).
    assert_eq!(
        simba::simplify_linear(&e, &vars, 8).unwrap().to_string(),
        "-56*x"
    );
}

#[test]
fn corner_recovery_matches_exact_route_on_paper_examples() {
    for src in [
        "2*(x|y) - (~x&y) - (x&~y)",
        "x + y - 2*(x&y)",
        "(x|y) + (x&y)",
        "x + y + z + 1",
        "3*(x^y) + 2*(x&y) - (x|y)",
    ] {
        let e: Expr = src.parse().unwrap();
        let vars = vars_of(&e);
        let fast = simba::simplify_linear(&e, &vars, 64).unwrap();
        let exact = SignatureVector::of_linear(&e, &vars)
            .unwrap()
            .to_normalized_expr(&vars);
        assert_eq!(fast.to_string(), exact.to_string(), "diverged on `{src}`");
    }
}

/// The ≥5 semi-linear identity goldens: lhs ≡ rhs at widths 8/16/32/64,
/// and every lhs sits in the `SemiLinear` class (linear skeleton whose
/// bitwise factors carry constants), i.e. outside the pure-linear
/// fragment the corner route handles but inside the group-mask tier's.
#[test]
fn semi_linear_identity_goldens() {
    let identities: [(&str, &str); 6] = [
        // Mask-split re-fusion: complementary masks of one variable.
        ("(x & 240) + (x & ~240)", "x"),
        // |/& exchange with a shared constant operand.
        ("(x | 5) + (x & 5)", "x + 5"),
        // Xor-wrap involution.
        ("(x ^ 85) ^ 85", "x"),
        // Or-with-constant unfolded against subtraction.
        ("(x | 3) - 3", "x & ~3"),
        // Complement closure under a constant mask.
        ("(x & 12) + ~(x & 12)", "-1"),
        // Three-way mask partition of the full width.
        ("(x & 3) + (x & 12) + (x & ~15)", "x"),
    ];
    for (lhs_src, rhs_src) in identities {
        let lhs: Expr = lhs_src.parse().unwrap();
        let rhs: Expr = rhs_src.parse().unwrap();
        assert_eq!(
            classify(&lhs),
            MbaClass::SemiLinear,
            "`{lhs_src}` must classify semi-linear"
        );
        for w in [8u32, 16, 32, 64] {
            for x in [0u64, 1, 2, 3, 12, 85, 170, 240, 255, 0xdead_beef, u64::MAX] {
                let v = Valuation::new().with("x", x);
                assert_eq!(
                    lhs.eval(&v, w),
                    rhs.eval(&v, w),
                    "`{lhs_src}` != `{rhs_src}` at width {w}, x={x}"
                );
            }
        }
    }
}

/// Semi-linear shapes are exactly the ones the pure-linear corner route
/// must *not* claim: `of_linear` rejects them, so the pipeline's
/// trichotomy (linear / semi-linear / truth-table) is well-posed.
#[test]
fn semi_linear_goldens_are_outside_the_linear_fragment() {
    for src in [
        "(x & 240) + (x & ~240)",
        "(x | 5) + (x & 5)",
        "(x ^ 85) ^ 85",
        "(x & 12) + ~(x & 12)",
        "(x & 3) + (x & 12) + (x & ~15)",
    ] {
        let e: Expr = src.parse().unwrap();
        let vars = vars_of(&e);
        assert!(
            SignatureVector::of_linear(&e, &vars).is_err(),
            "`{src}` unexpectedly fits Definition 1's linear fragment"
        );
    }
}
