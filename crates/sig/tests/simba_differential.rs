//! Differential matrix pinning the SiMBA-style fast route against the
//! truth-table/basis route at the signature layer: over random linear
//! MBA in t = 2..8 variables and widths 8/16/32/64, corner recovery
//! (2^t evaluations + Möbius) must agree with the exact signature
//! pipeline (`SignatureVector::of_linear` + `normalized_coefficients`)
//! coefficient-for-coefficient mod 2^width, and — whenever the exact
//! coefficients fit the symmetric range — the rendered output must be
//! byte-identical. The pipeline-level on/off differential (the
//! `use_simba` config flag) lives in `crates/core/tests/`.

use mba_expr::{Expr, Ident, Valuation};
use mba_sig::{simba, SignatureVector};
use proptest::prelude::*;

const WIDTHS: [u32; 4] = [8, 16, 32, 64];

fn var_ident(j: usize) -> Ident {
    Ident::new(format!("v{j}"))
}

fn varset(t: usize) -> Vec<Ident> {
    (0..t).map(var_ident).collect()
}

/// Random pure bitwise expressions over `t` variables (plus the 0/−1
/// constants Definition 1 admits).
fn arb_bitwise(t: usize) -> BoxedStrategy<Expr> {
    let leaf = (0usize..t + 2).prop_map(move |i| {
        if i < t {
            Expr::var(var_ident(i))
        } else if i == t {
            Expr::zero()
        } else {
            Expr::minus_one()
        }
    });
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.prop_map(|e| !e),
        ]
    })
    .boxed()
}

/// Random linear MBA over `t` variables: a signed combination of
/// bitwise terms plus a constant. Deliberately local — `mba-gen`
/// depends on this crate, so the generator under test cannot be the
/// generator producing the cases.
fn arb_linear(t: usize) -> BoxedStrategy<Expr> {
    (
        proptest::collection::vec((-20i128..=20, arb_bitwise(t)), 1..5),
        -30i128..=30,
    )
        .prop_map(|(terms, konst)| {
            let mut all: Vec<(i128, Expr)> = terms;
            all.push((konst, Expr::one()));
            mba_sig::linear_combination(&all)
        })
        .boxed()
}

/// The full t = 2..8 matrix: a variable count and a linear MBA over it.
fn arb_case() -> impl Strategy<Value = (usize, Expr)> {
    (2usize..=8).prop_flat_map(|t| arb_linear(t).prop_map(move |e| (t, e)))
}

proptest! {
    /// Corner recovery agrees with the exact signature pipeline on
    /// every basis coefficient, at every width, mod 2^width.
    #[test]
    fn corner_recovery_matches_exact_signature((t, e) in arb_case()) {
        let vars = varset(t);
        let exact = SignatureVector::of_linear(&e, &vars)
            .expect("linear by construction")
            .normalized_coefficients();
        for w in WIDTHS {
            let recovered = simba::recover_coefficients(&e, &vars, w)
                .expect("fast route must accept true linear input");
            prop_assert_eq!(recovered.len(), exact.len());
            for (s, (&r, &x)) in recovered.iter().zip(exact.iter()).enumerate() {
                prop_assert_eq!(
                    simba::reduce(r, w),
                    simba::reduce(x, w),
                    "subset {} at width {} on `{}`", s, w, e
                );
            }
        }
    }

    /// Whenever the exact coefficients fit the symmetric range of the
    /// width (always true here at width 64: |coeffs| are tiny), the fast
    /// route's rendered output is byte-identical to the basis route's.
    #[test]
    fn fast_route_render_is_byte_identical((t, e) in arb_case()) {
        let vars = varset(t);
        let fast = simba::simplify_linear(&e, &vars, 64)
            .expect("fast route must accept true linear input");
        let basis = SignatureVector::of_linear(&e, &vars)
            .expect("linear")
            .to_normalized_expr(&vars);
        prop_assert_eq!(
            fast.to_string(),
            basis.to_string(),
            "render diverges on `{}`", e
        );
    }

    /// The fast route's output is semantically exact at the width it was
    /// recovered for, including widths where coefficients wrap.
    #[test]
    fn fast_route_output_is_exact_at_each_width(
        (t, e) in arb_case(),
        seed in any::<u64>(),
    ) {
        let vars = varset(t);
        for w in WIDTHS {
            let out = simba::simplify_linear(&e, &vars, w)
                .expect("fast route must accept true linear input");
            // Three cheap pseudo-random probes per width (splitmix-style
            // derivation keeps the matrix deterministic per proptest
            // case).
            for probe in 0..3u64 {
                let v: Valuation = vars
                    .iter()
                    .cloned()
                    .zip((0..t as u64).map(|j| {
                        let mut z = seed
                            .wrapping_add(probe.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                            .wrapping_add(j.wrapping_mul(0xbf58_476d_1ce4_e5b9));
                        z ^= z >> 30;
                        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
                        z ^ (z >> 27)
                    }))
                    .collect();
                prop_assert_eq!(
                    e.eval(&v, w),
                    out.eval(&v, w),
                    "width {} on `{}` -> `{}`", w, e, out
                );
            }
        }
    }

    /// Non-linear input never slips through: the verification sweep
    /// inside `recover_coefficients` rejects a polynomial product, so
    /// the caller falls back to the truth-table pipeline.
    #[test]
    fn polynomial_products_are_rejected(e in arb_bitwise(2)) {
        let vars = varset(2);
        let poly = Expr::var(var_ident(0)) * Expr::var(var_ident(1)) + e;
        for w in WIDTHS {
            if let Some(coeffs) = simba::recover_coefficients(&poly, &vars, w) {
                // Acceptance is only legitimate if the recovered
                // combination really is equivalent (the bitwise tail can
                // cancel the product on all probed points *and* in
                // truth): check against the exact signature route,
                // which errors on true non-linearity.
                let exact = SignatureVector::of_linear(&poly, &vars);
                prop_assert!(
                    exact.is_ok(),
                    "width {}: fast route accepted non-linear `{}` -> {:?}",
                    w, poly, coeffs
                );
            }
        }
    }
}
