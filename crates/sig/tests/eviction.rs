//! Bounded-cache behaviour: occupancy stays within budget, eviction
//! never changes simplification output, and snapshots warm-start a
//! fresh cache across a simulated restart.

use std::sync::Arc;

use mba_expr::{Expr, Ident};
use mba_sig::SigCache;
use mba_solver::{Simplifier, SimplifyConfig};

/// Distinct two-variable bitwise expressions: every `(i, op)` pair uses
/// its own identifiers, so each one is a fresh cache key.
fn distinct_exprs(n: usize) -> Vec<(Expr, Vec<Ident>)> {
    let ops = ["&", "|", "^"];
    (0..n)
        .map(|i| {
            let (a, b) = (format!("a{i}"), format!("b{i}"));
            let op = ops[i % ops.len()];
            let e: Expr = format!("{a} {op} ~{b}").parse().unwrap();
            (e, vec![Ident::new(a), Ident::new(b)])
        })
        .collect()
}

#[test]
fn occupancy_never_exceeds_budget() {
    let budget = 64; // the clamp floor: 4 maps × 16 shards × 1 slot
    let cache = SigCache::with_budget(budget);
    assert_eq!(cache.budget(), Some(budget));
    for (e, vars) in distinct_exprs(500) {
        let tt = cache.table_of(&e, &vars).unwrap();
        cache.and_coefficients(&tt);
        cache.or_coefficients(&tt);
        assert!(
            cache.len() <= budget,
            "occupancy {} exceeded budget {budget}",
            cache.len()
        );
    }
    assert!(
        cache.evictions() > 0,
        "500 distinct keys into a 64-entry cache must evict"
    );
    // Shard occupancy mirrors the same bound.
    let total: usize = cache.shard_occupancy().into_iter().sum();
    assert_eq!(total, cache.len());
}

#[test]
fn unbounded_cache_never_evicts() {
    let cache = SigCache::new();
    assert_eq!(cache.budget(), None);
    for (e, vars) in distinct_exprs(200) {
        cache.table_of(&e, &vars).unwrap();
    }
    assert_eq!(cache.evictions(), 0);
    assert!(cache.len() >= 200);
}

#[test]
fn evicted_entries_recompute_identically() {
    // Thrash a tiny cache, then re-query the earliest keys: they were
    // evicted, and the recomputed tables must be byte-identical to the
    // originals.
    let cache = SigCache::with_budget(64);
    let exprs = distinct_exprs(300);
    let originals: Vec<_> = exprs
        .iter()
        .map(|(e, vars)| (*cache.table_of(e, vars).unwrap()).clone())
        .collect();
    for ((e, vars), original) in exprs.iter().zip(&originals) {
        let again = cache.table_of(e, vars).unwrap();
        assert_eq!(*again, *original);
    }
}

#[test]
fn simplification_is_byte_identical_under_eviction() {
    // The load-bearing invariant: a thrashing bounded cache, a roomy
    // bounded cache, and the unbounded default must all produce the
    // same simplified output for the same input.
    let inputs = [
        "(x ^ y) + 2*(x & y)",
        "(x | y) + (x & y)",
        "x - (x & ~y) - (x & y)",
        "(x & y) * 3 + (x ^ y) - (x | y)",
    ];
    let outputs: Vec<Vec<String>> = [
        Arc::new(SigCache::with_budget(64)),
        Arc::new(SigCache::with_budget(4096)),
        Arc::new(SigCache::new()),
    ]
    .into_iter()
    .map(|cache| {
        let s = Simplifier::with_cache(SimplifyConfig::default(), cache);
        inputs
            .iter()
            .map(|src| {
                let e: Expr = src.parse().unwrap();
                // Twice per input so the second pass exercises hits
                // (or re-misses after eviction) on every tier.
                let first = s.simplify(&e).to_string();
                assert_eq!(first, s.simplify(&e).to_string());
                first
            })
            .collect()
    })
    .collect();
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn snapshot_roundtrip_is_canonical_and_warm_starts() {
    let vars = vec![Ident::new("x"), Ident::new("y")];
    let cache = SigCache::with_budget(1024);
    for src in ["x & y", "x | ~y", "x ^ y", "~x & ~y"] {
        let e: Expr = src.parse().unwrap();
        let tt = cache.table_of(&e, &vars).unwrap();
        cache.and_coefficients(&tt);
        cache.or_coefficients(&tt);
    }
    let snapshot = cache.snapshot_json();

    // Canonical: a restored cache snapshots to the same bytes.
    let restored = SigCache::with_budget(1024);
    let loaded = restored.load_snapshot(&snapshot).unwrap();
    assert!(loaded > 0);
    assert_eq!(restored.snapshot_json(), snapshot);
    // Loading counts no lookups.
    assert_eq!(restored.stats().lookups(), 0);

    // Warm start: the queries that were misses on the cold cache are
    // hits on the restored one.
    for src in ["x & y", "x | ~y", "x ^ y", "~x & ~y"] {
        let e: Expr = src.parse().unwrap();
        let cold = cache.table_of(&e, &vars).unwrap();
        let warm = restored.table_of(&e, &vars).unwrap();
        assert_eq!(*cold, *warm);
    }
    let stats = restored.stats();
    assert_eq!(stats.misses, 0, "warm-started lookups must all hit");
    assert_eq!(stats.hits, 4);
}

#[test]
fn snapshot_into_smaller_budget_respects_the_smaller_budget() {
    let big = SigCache::new();
    for (e, vars) in distinct_exprs(300) {
        big.table_of(&e, &vars).unwrap();
    }
    let snapshot = big.snapshot_json();
    let small = SigCache::with_budget(64);
    small.load_snapshot(&snapshot).unwrap();
    assert!(small.len() <= 64, "load must go through eviction");
}

#[test]
fn snapshot_rejects_malformed_documents() {
    let cache = SigCache::new();
    for bad in [
        "",
        "[]",
        "{\"version\":2}",
        "{\"version\":1,\"tables\":7}",
        "{\"version\":1,\"tables\":[{\"expr\":\"x +\",\"vars\":[\"x\"],\"num_vars\":1,\"blocks\":[\"0x2\"]}]}",
        "{\"version\":1,\"tables\":[{\"expr\":\"x\",\"vars\":[\"x\"],\"num_vars\":1,\"blocks\":[\"2\"]}]}",
        "{\"version\":1,\"and_coeffs\":[{\"num_vars\":1,\"blocks\":[\"0x2\"],\"coeffs\":null}]}",
    ] {
        assert!(cache.load_snapshot(bad).is_err(), "`{bad}` should not load");
    }
    assert!(cache.is_empty() || cache.len() <= 1);
}
