//! Differential tests pinning the bit-parallel truth-table extractor
//! ([`TruthTable::of`]) to the scalar per-row reference
//! ([`TruthTable::of_scalar`]), plus fixed vectors from the paper.

use mba_expr::{Expr, Ident};
use mba_sig::{SignatureVector, TruthTable};
use proptest::prelude::*;

fn varset(t: usize) -> Vec<Ident> {
    ["x", "y", "z", "w", "a", "b", "c", "d"][..t]
        .iter()
        .map(Ident::new)
        .collect()
}

/// Random pure bitwise expressions over the first `t` variables of
/// [`varset`].
fn arb_bitwise(t: usize) -> impl Strategy<Value = Expr> {
    let names: Vec<&'static str> = ["x", "y", "z", "w", "a", "b", "c", "d"][..t].to_vec();
    let leaf = prop_oneof![
        (0..names.len()).prop_map(move |i| Expr::var(names[i])),
        Just(Expr::zero()),
        Just(Expr::minus_one()),
    ];
    leaf.prop_recursive(5, 40, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.prop_map(|e| !e),
        ]
    })
}

proptest! {
    /// The bit-parallel path and the scalar reference produce identical
    /// tables for every variable count the block storage distinguishes:
    /// sub-word (t ≤ 5), exactly one word (t = 6), and multi-word
    /// (t = 7, 8).
    #[test]
    fn bit_parallel_equals_scalar_reference_small(e in arb_bitwise(3)) {
        let vars = varset(3);
        prop_assert_eq!(
            TruthTable::of(&e, &vars).unwrap(),
            TruthTable::of_scalar(&e, &vars).unwrap()
        );
    }

    #[test]
    fn bit_parallel_equals_scalar_reference_one_block(e in arb_bitwise(6)) {
        let vars = varset(6);
        prop_assert_eq!(
            TruthTable::of(&e, &vars).unwrap(),
            TruthTable::of_scalar(&e, &vars).unwrap()
        );
    }

    #[test]
    fn bit_parallel_equals_scalar_reference_multi_block(e in arb_bitwise(8)) {
        let vars = varset(8);
        let fast = TruthTable::of(&e, &vars).unwrap();
        let slow = TruthTable::of_scalar(&e, &vars).unwrap();
        prop_assert_eq!(fast.rows(), slow.rows());
        prop_assert_eq!(fast, slow);
    }
}

/// Paper §4.1 Table 3: truth-table columns of the two-variable bitwise
/// terms, rows ordered (x=0,y=0), (0,1), (1,0), (1,1).
#[test]
fn table_3_columns_are_exact() {
    let vars = varset(2);
    let cases: &[(&str, [i128; 4])] = &[
        ("x & y", [0, 0, 0, 1]),
        ("x | y", [0, 1, 1, 1]),
        ("x ^ y", [0, 1, 1, 0]),
        ("~x & y", [0, 1, 0, 0]),
        ("x & ~y", [0, 0, 1, 0]),
        ("~(x & y)", [1, 1, 1, 0]),
        ("~(x | y)", [1, 0, 0, 0]),
    ];
    for (text, column) in cases {
        let e: Expr = text.parse().unwrap();
        let table = TruthTable::of(&e, &vars).unwrap();
        assert_eq!(&table.column()[..], column, "column of `{text}`");
        assert_eq!(table, TruthTable::of_scalar(&e, &vars).unwrap());
    }
}

/// Paper §4.1 Example 1: the signature of the running example, computed
/// through the bit-parallel truth tables, is still (0, 1, 1, 2) and
/// still normalizes to x+y.
#[test]
fn example_1_signature_survives_the_batch_engine() {
    let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
    let vars = varset(2);
    let sig = SignatureVector::of_linear(&e, &vars).unwrap();
    assert_eq!(sig.components(), [0, 1, 1, 2]);
    assert_eq!(sig.to_normalized_expr(&vars).to_string(), "x+y");
}

/// An 8-variable conjunction: exactly one of the 256 rows is true, and
/// it lands in the last block of the four-block storage.
#[test]
fn eight_variable_conjunction_hits_one_row() {
    let vars = varset(8);
    let e: Expr = "x & y & z & w & a & b & c & d".parse().unwrap();
    let table = TruthTable::of(&e, &vars).unwrap();
    let rows = table.rows();
    assert_eq!(rows.len(), 256);
    assert_eq!(rows.iter().filter(|&&r| r).count(), 1);
    assert!(rows[255], "all-ones row is the last (MSB-first order)");
    assert_eq!(table, TruthTable::of_scalar(&e, &vars).unwrap());
}
