//! SSPAM-style pattern-matching simplification.
//!
//! A rule library of known MBA identities (Hacker's Delight plus the
//! rewrite set SSPAM ships) is matched bottom-up, modulo commutativity,
//! until a fixpoint. Every rule is an unconditional identity, so the
//! transformation is semantic-preserving — but the library is finite,
//! which bounds what it can undo.

use std::collections::HashMap;

use mba_expr::{BinOp, Expr, Ident, UnOp};

/// The SSPAM-like simplifier. Stateless apart from its rule library;
/// construct once and reuse.
#[derive(Debug)]
pub struct Sspam {
    rules: Vec<Rule>,
    max_rounds: usize,
}

#[derive(Debug)]
struct Rule {
    name: &'static str,
    pattern: Expr,
    replacement: Expr,
}

/// Pattern syntax: every identifier is a wildcard that matches any
/// subexpression; repeated identifiers must match structurally equal
/// subtrees. Constants match exactly.
const RULES: &[(&str, &str, &str)] = &[
    // Additive encodings of +.
    ("or-and-add", "(A | B) + (A & B)", "A + B"),
    ("xor-2and-add", "(A ^ B) + 2*(A & B)", "A + B"),
    ("andnot-add", "(A & ~B) + B", "A | B"),
    ("or-sub-and", "(A | B) - (A & B)", "A ^ B"),
    ("add-sub-2and", "A + B - 2*(A & B)", "A ^ B"),
    ("xor-2b-2andnot", "(A ^ B) + 2*B - 2*(~A & B)", "A + B"),
    ("or-b-andnot", "(A | B) + B - (~A & B)", "A + B"),
    ("or-notor-not", "(A | B) + (~A | B) - ~A", "A + B"),
    ("b-andnot-and", "B + (A & ~B) + (A & B)", "A + B"),
    ("xor-2ornot", "(A ^ B) + 2*(A | ~B) + 2", "A - B"),
    ("xor-sub-2andnot", "(A ^ B) - 2*(~A & B)", "A - B"),
    // Product encoding (the paper's Figure 1).
    (
        "mul-split",
        "(A & ~B)*(~A & B) + (A & B)*(A | B)",
        "A * B",
    ),
    // Complement algebra.
    ("neg-not", "-A - 1", "~A"),
    ("not-to-neg", "~A + 1", "-A"),
    ("not-not", "~(~A)", "A"),
    // Absorption / units.
    ("and-self", "A & A", "A"),
    ("or-self", "A | A", "A"),
    ("xor-self", "A ^ A", "0"),
    ("sub-self", "A - A", "0"),
    ("and-absorb", "A & (A | B)", "A"),
    ("or-absorb", "A | (A & B)", "A"),
    ("sub-and", "A - (A & B)", "A & ~B"),
    ("add-zero", "A + 0", "A"),
    ("sub-zero", "A - 0", "A"),
    ("mul-one", "A * 1", "A"),
    ("mul-zero", "A * 0", "0"),
    ("and-zero", "A & 0", "0"),
    ("and-ones", "A & -1", "A"),
    ("or-zero", "A | 0", "A"),
    ("or-ones", "A | -1", "-1"),
    ("xor-zero", "A ^ 0", "A"),
];

impl Default for Sspam {
    fn default() -> Self {
        Sspam::new()
    }
}

impl Sspam {
    /// Builds the simplifier with the standard rule library.
    pub fn new() -> Sspam {
        let rules = RULES
            .iter()
            .map(|&(name, pat, rep)| Rule {
                name,
                pattern: pat.parse().expect("library pattern parses"),
                replacement: rep.parse().expect("library replacement parses"),
            })
            .collect();
        Sspam {
            rules,
            max_rounds: 16,
        }
    }

    /// Number of rules in the library.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Simplifies by rewriting bottom-up to a fixpoint (or the round
    /// cap). The result is always equivalent to the input; it is the
    /// input itself when nothing in the library matches.
    pub fn simplify(&self, e: &Expr) -> Expr {
        let mut current = e.clone();
        for _ in 0..self.max_rounds {
            let next = mba_expr::visit::transform_bottom_up(&current, &mut |node| {
                self.rewrite_node(node)
            });
            let next = fold_constants(&next);
            if next == current {
                break;
            }
            current = next;
        }
        current
    }

    /// Applies the first matching rule at this node, if any.
    fn rewrite_node(&self, node: Expr) -> Expr {
        for rule in &self.rules {
            let mut bindings = HashMap::new();
            if unify(&rule.pattern, &node, &mut bindings) {
                return instantiate(&rule.replacement, &bindings);
            }
        }
        node
    }

    /// The names of the library rules (for diagnostics and docs).
    pub fn rule_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.rules.iter().map(|r| r.name)
    }
}

/// Structural unification with wildcard identifiers, modulo
/// commutativity of `+ × ∧ ∨ ⊕`.
fn unify(pattern: &Expr, expr: &Expr, bindings: &mut HashMap<Ident, Expr>) -> bool {
    match (pattern, expr) {
        (Expr::Var(name), _) => match bindings.get(name) {
            Some(bound) => bound == expr,
            None => {
                bindings.insert(name.clone(), expr.clone());
                true
            }
        },
        (Expr::Const(a), Expr::Const(b)) => a == b,
        (Expr::Unary(op_p, p), Expr::Unary(op_e, e)) if op_p == op_e => unify(p, e, bindings),
        (Expr::Binary(op_p, pa, pb), Expr::Binary(op_e, ea, eb)) if op_p == op_e => {
            let snapshot = bindings.clone();
            if unify(pa, ea, bindings) && unify(pb, eb, bindings) {
                return true;
            }
            *bindings = snapshot;
            if op_p.is_commutative() {
                let snapshot = bindings.clone();
                if unify(pa, eb, bindings) && unify(pb, ea, bindings) {
                    return true;
                }
                *bindings = snapshot;
            }
            false
        }
        _ => false,
    }
}

/// Substitutes bindings into a replacement template.
fn instantiate(template: &Expr, bindings: &HashMap<Ident, Expr>) -> Expr {
    match template {
        Expr::Const(_) => template.clone(),
        Expr::Var(name) => bindings
            .get(name)
            .cloned()
            .unwrap_or_else(|| template.clone()),
        Expr::Unary(op, inner) => Expr::unary(*op, instantiate(inner, bindings)),
        Expr::Binary(op, a, b) => Expr::binary(
            *op,
            instantiate(a, bindings),
            instantiate(b, bindings),
        ),
    }
}

/// Constant folding pass (SSPAM leans on SymPy for this part).
fn fold_constants(e: &Expr) -> Expr {
    mba_expr::visit::transform_bottom_up(e, &mut |node| match node {
        Expr::Unary(op, inner) => match (*inner, op) {
            (Expr::Const(c), UnOp::Neg) => Expr::Const(c.wrapping_neg()),
            (Expr::Const(c), UnOp::Not) => Expr::Const(!c),
            (inner, op) => Expr::unary(op, inner),
        },
        Expr::Binary(op, a, b) => match (*a, *b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
            }),
            (a, b) => Expr::binary(op, a, b),
        },
        leaf => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn simplify(src: &str) -> String {
        Sspam::new().simplify(&src.parse().unwrap()).to_string()
    }

    #[test]
    fn library_rules_fire_on_exact_shapes() {
        assert_eq!(simplify("(x | y) + (x & y)"), "x+y");
        assert_eq!(simplify("(x ^ y) + 2*(x & y)"), "x+y");
        assert_eq!(simplify("(x | y) - (x & y)"), "x^y");
        assert_eq!(simplify("(x&~y)*(~x&y) + (x&y)*(x|y)"), "x*y");
    }

    #[test]
    fn commutativity_is_handled() {
        // Operands flipped relative to the library patterns.
        assert_eq!(simplify("(x & y) + (x | y)"), "x+y");
        assert_eq!(simplify("(y & x) + (y | x)"), "y+x");
        assert_eq!(simplify("2*(x & y) + (x ^ y)"), "x+y");
    }

    #[test]
    fn repeated_wildcards_require_equal_subtrees() {
        // (x|y) + (x&z) must NOT rewrite: B binds inconsistently.
        let src = "(x | y) + (x & z)";
        assert_eq!(simplify(src), src.parse::<Expr>().unwrap().to_string());
    }

    #[test]
    fn wildcards_match_whole_subexpressions() {
        // A = (a-b), B = c.
        assert_eq!(simplify("((a-b) | c) + ((a-b) & c)"), "a-b+c");
    }

    #[test]
    fn rewrites_cascade_to_fixpoint() {
        // Inner rule application exposes an outer one.
        let src = "((x | y) + (x & y)) - ((x | y) + (x & y))";
        assert_eq!(simplify(src), "0");
    }

    #[test]
    fn out_of_library_shapes_are_untouched() {
        // A randomized linear MBA (decoy coefficients) has no library
        // shape — SSPAM's fundamental limitation (Table 7).
        let src = "3*(x|~y) - 5*(~x&y) + 2*(x^y) + 7*(x&y) - 3";
        let before: Expr = src.parse().unwrap();
        let after = Sspam::new().simplify(&before);
        assert_eq!(after, before);
    }

    #[test]
    fn always_semantic_preserving() {
        let cases = [
            "(x | y) + (x & y)",
            "(x ^ y) + 2*y - 2*(~x & y)",
            "~(~(x + 1))",
            "(x - y) + 0 + (z * 1)",
            "3*(x|~y) - 5*(~x&y)",
            "x + y - 2*(x&y)",
            "-x - 1",
        ];
        let s = Sspam::new();
        for src in cases {
            let e: Expr = src.parse().unwrap();
            let out = s.simplify(&e);
            for (x, y, z) in [(0u64, 0u64, 0u64), (7, 9, 1), (u64::MAX, 5, 123)] {
                let v = Valuation::new().with("x", x).with("y", y).with("z", z);
                for w in [8u32, 64] {
                    assert_eq!(e.eval(&v, w), out.eval(&v, w), "{src} -> {out}");
                }
            }
        }
    }

    #[test]
    fn constant_folding_runs() {
        assert_eq!(simplify("x + (2 + 3) * 1"), "x+5");
        assert_eq!(simplify("~0 & x"), "x");
    }

    #[test]
    fn complement_rules() {
        assert_eq!(simplify("-x - 1"), "~x");
        assert_eq!(simplify("~x + 1"), "-x");
        assert_eq!(simplify("~(~x)"), "x");
    }

    #[test]
    fn library_is_nonempty_and_named() {
        let s = Sspam::new();
        assert!(s.num_rules() >= 25);
        assert!(s.rule_names().any(|n| n == "mul-split"));
    }
}
