//! The paper's two peer tools, reimplemented for the Table 7 comparison.
//!
//! * [`Sspam`] — SSPAM (Eyrolles et al., SPRO'16): pattern-matching
//!   simplification against a library of known MBA identities, plus
//!   light arithmetic cleanup. Sound by construction, but only fires
//!   when the obfuscated tree literally contains a library shape — which
//!   is why the paper measures just 3% solver coverage after it.
//! * [`Syntia`] — Syntia (Blazytko et al., USENIX Sec'17): stochastic
//!   program synthesis via Monte-Carlo tree search over an expression
//!   grammar, guided by input/output samples of the obfuscated code.
//!   Fast and representation-agnostic, but correct only when the sampled
//!   points pin the semantics down — the paper measures 82.9% wrong
//!   outputs on complex MBA.
//!
//! ```
//! use mba_baselines::Sspam;
//! let sspam = Sspam::new();
//! let e = "(x | y) + (x & y)".parse().unwrap();
//! assert_eq!(sspam.simplify(&e).to_string(), "x+y");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sspam;
mod syntia;

pub use sspam::Sspam;
pub use syntia::{Syntia, SyntiaConfig, SyntiaResult};
