//! Syntia-style stochastic synthesis: Monte-Carlo tree search over an
//! expression grammar, guided by input/output samples.
//!
//! The synthesizer never looks inside the obfuscated expression — it
//! only queries it as a black box on sampled inputs, exactly like the
//! original tool observes instruction traces. Consequently the result
//! is only as correct as the samples are discriminating: an expression
//! that matches all samples may still differ elsewhere, which is the
//! incorrectness mode Table 7 quantifies.

use mba_expr::{BinOp, Expr, Ident, UnOp, Valuation};
use rand::Rng;

/// Tuning knobs for [`Syntia`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntiaConfig {
    /// Number of I/O samples drawn from the oracle.
    pub samples: usize,
    /// MCTS iterations before giving up.
    pub iterations: usize,
    /// Maximum derivation depth of candidate expressions.
    pub max_depth: usize,
    /// Bit width at which the oracle is sampled.
    pub width: u32,
    /// Constants available to the grammar.
    pub constants: Vec<i128>,
    /// UCT exploration parameter.
    pub exploration: f64,
}

impl Default for SyntiaConfig {
    fn default() -> Self {
        SyntiaConfig {
            samples: 24,
            iterations: 1500,
            max_depth: 3,
            width: 64,
            constants: vec![0, 1, 2],
            exploration: 1.2,
        }
    }
}

/// The outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SyntiaResult {
    /// The best candidate found (highest sample similarity, smallest
    /// size among ties).
    pub expr: Expr,
    /// Whether the candidate reproduces the oracle on *every* sample.
    /// Even `true` does not guarantee equivalence — that is the point.
    pub matches_all_samples: bool,
    /// Iterations actually spent.
    pub iterations_used: usize,
    /// Final similarity score in `[0, 1]`.
    pub score: f64,
}

/// The Syntia-like synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Syntia {
    config: SyntiaConfig,
}

/// A partial expression: a grammar derivation with holes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PNode {
    Hole,
    Var(usize),
    Const(i128),
    Un(UnOp, Box<PNode>),
    Bin(BinOp, Box<PNode>, Box<PNode>),
}

impl PNode {
    fn has_hole(&self) -> bool {
        match self {
            PNode::Hole => true,
            PNode::Var(_) | PNode::Const(_) => false,
            PNode::Un(_, a) => a.has_hole(),
            PNode::Bin(_, a, b) => a.has_hole() || b.has_hole(),
        }
    }

    fn size(&self) -> usize {
        match self {
            PNode::Hole | PNode::Var(_) | PNode::Const(_) => 1,
            PNode::Un(_, a) => 1 + a.size(),
            PNode::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Replaces the leftmost hole with `production`; returns `None` when
    /// there is no hole. `depth` is the hole's depth (for the limit).
    fn fill_leftmost(&self, production: &PNode) -> Option<PNode> {
        match self {
            PNode::Hole => Some(production.clone()),
            PNode::Var(_) | PNode::Const(_) => None,
            PNode::Un(op, a) => a
                .fill_leftmost(production)
                .map(|a2| PNode::Un(*op, Box::new(a2))),
            PNode::Bin(op, a, b) => {
                if let Some(a2) = a.fill_leftmost(production) {
                    Some(PNode::Bin(*op, Box::new(a2), b.clone()))
                } else {
                    b.fill_leftmost(production)
                        .map(|b2| PNode::Bin(*op, a.clone(), Box::new(b2)))
                }
            }
        }
    }

    /// Depth of the leftmost hole (root = 0), or `None` when complete.
    fn leftmost_hole_depth(&self) -> Option<usize> {
        match self {
            PNode::Hole => Some(0),
            PNode::Var(_) | PNode::Const(_) => None,
            PNode::Un(_, a) => a.leftmost_hole_depth().map(|d| d + 1),
            PNode::Bin(_, a, b) => a
                .leftmost_hole_depth()
                .or_else(|| b.leftmost_hole_depth())
                .map(|d| d + 1),
        }
    }

    fn eval(&self, inputs: &[u64], width: u32) -> u64 {
        let v = match self {
            PNode::Hole => 0,
            PNode::Var(i) => inputs[*i],
            PNode::Const(c) => *c as u64,
            PNode::Un(op, a) => {
                let x = a.eval(inputs, width);
                match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                }
            }
            PNode::Bin(op, a, b) => {
                let x = a.eval(inputs, width);
                let y = b.eval(inputs, width);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                }
            }
        };
        mba_expr::mask(v, width)
    }

    fn to_expr(&self, vars: &[Ident]) -> Expr {
        match self {
            PNode::Hole => Expr::zero(),
            PNode::Var(i) => Expr::Var(vars[*i].clone()),
            PNode::Const(c) => Expr::Const(*c),
            PNode::Un(op, a) => Expr::unary(*op, a.to_expr(vars)),
            PNode::Bin(op, a, b) => Expr::binary(*op, a.to_expr(vars), b.to_expr(vars)),
        }
    }
}

/// One MCTS tree node.
struct McNode {
    state: PNode,
    children: Vec<usize>,
    untried: Vec<PNode>,
    visits: f64,
    total_reward: f64,
}

impl Syntia {
    /// Synthesizer with default settings.
    pub fn new() -> Syntia {
        Syntia::default()
    }

    /// Synthesizer with explicit settings.
    pub fn with_config(config: SyntiaConfig) -> Syntia {
        Syntia { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SyntiaConfig {
        &self.config
    }

    /// Synthesizes a simple expression approximating `oracle`'s
    /// semantics from sampled I/O behaviour.
    pub fn synthesize(&self, oracle: &Expr, rng: &mut impl Rng) -> SyntiaResult {
        let vars: Vec<Ident> = oracle.vars().into_iter().collect();
        let width = self.config.width;

        // Sample the oracle: structured corners plus random points.
        let mut inputs: Vec<Vec<u64>> = vec![
            vec![0; vars.len()],
            vec![1; vars.len()],
            vec![mba_expr::mask(u64::MAX, width); vars.len()],
        ];
        while inputs.len() < self.config.samples.max(4) {
            inputs.push((0..vars.len()).map(|_| rng.gen::<u64>()).collect());
        }
        let expected: Vec<u64> = inputs
            .iter()
            .map(|point| {
                let v: Valuation = vars
                    .iter()
                    .cloned()
                    .zip(point.iter().copied())
                    .collect();
                oracle.eval(&v, width)
            })
            .collect();

        let score_of = |candidate: &PNode| -> f64 {
            let mut total = 0.0;
            for (point, &want) in inputs.iter().zip(&expected) {
                let got = candidate.eval(point, width);
                let differing = (got ^ want).count_ones().min(width) as f64;
                total += 1.0 - differing / width as f64;
            }
            total / inputs.len() as f64
        };
        let exact = |candidate: &PNode| -> bool {
            inputs
                .iter()
                .zip(&expected)
                .all(|(point, &want)| candidate.eval(point, width) == want)
        };

        // MCTS over grammar derivations.
        let mut arena: Vec<McNode> = vec![self.make_node(PNode::Hole, &vars)];
        let mut best: (f64, PNode) = (f64::MIN, PNode::Const(0));
        let mut iterations_used = self.config.iterations;

        for iteration in 0..self.config.iterations {
            // 1. Selection: walk down fully expanded nodes by UCT.
            let mut path = vec![0usize];
            loop {
                let node = &arena[*path.last().expect("non-empty")];
                if !node.untried.is_empty() || node.children.is_empty() {
                    break;
                }
                let ln_n = node.visits.max(1.0).ln();
                let c = self.config.exploration;
                let next = *node
                    .children
                    .iter()
                    .max_by(|&&a, &&b| {
                        let ua = uct(&arena[a], ln_n, c);
                        let ub = uct(&arena[b], ln_n, c);
                        ua.partial_cmp(&ub).expect("no NaN")
                    })
                    .expect("children non-empty");
                path.push(next);
            }
            // 2. Expansion.
            let leaf = *path.last().expect("non-empty");
            let current = if let Some(production) = {
                let node = &mut arena[leaf];
                node.untried.pop()
            } {
                let state = arena[leaf]
                    .state
                    .fill_leftmost(&production)
                    .unwrap_or_else(|| production.clone());
                let idx = arena.len();
                arena.push(self.make_node(state, &vars));
                arena[leaf].children.push(idx);
                path.push(idx);
                idx
            } else {
                leaf
            };
            // 3. Simulation: randomly complete the derivation.
            let mut rollout = arena[current].state.clone();
            while rollout.has_hole() {
                let depth = rollout.leftmost_hole_depth().expect("has hole");
                let productions = self.productions(&vars, depth);
                let pick = &productions[rng.gen_range(0..productions.len())];
                rollout = rollout.fill_leftmost(pick).expect("has hole");
            }
            let reward = score_of(&rollout);
            if reward > best.0 || (reward == best.0 && rollout.size() < best.1.size()) {
                best = (reward, rollout.clone());
            }
            // 4. Backpropagation.
            for &idx in &path {
                arena[idx].visits += 1.0;
                arena[idx].total_reward += reward;
            }
            if exact(&best.1) {
                iterations_used = iteration + 1;
                break;
            }
        }

        let matches_all_samples = exact(&best.1);
        SyntiaResult {
            expr: best.1.to_expr(&vars),
            matches_all_samples,
            iterations_used,
            score: best.0,
        }
    }

    fn make_node(&self, state: PNode, vars: &[Ident]) -> McNode {
        let untried = match state.leftmost_hole_depth() {
            Some(depth) => self.productions(vars, depth),
            None => Vec::new(),
        };
        McNode {
            state,
            children: Vec::new(),
            untried,
            visits: 0.0,
            total_reward: 0.0,
        }
    }

    /// Grammar productions available for a hole at `depth`.
    fn productions(&self, vars: &[Ident], depth: usize) -> Vec<PNode> {
        let mut out: Vec<PNode> = Vec::new();
        for i in 0..vars.len() {
            out.push(PNode::Var(i));
        }
        for &c in &self.config.constants {
            out.push(PNode::Const(c));
        }
        if depth < self.config.max_depth {
            let hole = || Box::new(PNode::Hole);
            out.push(PNode::Un(UnOp::Not, hole()));
            out.push(PNode::Un(UnOp::Neg, hole()));
            for op in [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
            ] {
                out.push(PNode::Bin(op, hole(), hole()));
            }
        }
        out
    }
}

fn uct(node: &McNode, ln_parent: f64, exploration: f64) -> f64 {
    if node.visits == 0.0 {
        return f64::INFINITY;
    }
    node.total_reward / node.visits + exploration * (ln_parent / node.visits).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth(oracle: &str, seed: u64) -> SyntiaResult {
        let syntia = Syntia::new();
        let mut rng = StdRng::seed_from_u64(seed);
        syntia.synthesize(&oracle.parse().unwrap(), &mut rng)
    }

    #[test]
    fn recovers_simple_semantics_from_obfuscated_oracle() {
        // (x|y)+(x&y) behaves exactly like x+y; MCTS should find a
        // 3-node candidate that matches all samples.
        let r = synth("(x | y) + (x & y)", 42);
        assert!(r.matches_all_samples, "score {}: {}", r.score, r.expr);
        // The first exact hit wins (like the original tool), so the
        // candidate is small but not necessarily minimal.
        assert!(r.expr.node_count() <= 9, "over-sized: {}", r.expr);
        // And the candidate is genuinely x + y on fresh inputs.
        let v = Valuation::new().with("x", 1234).with("y", 98765);
        assert_eq!(r.expr.eval(&v, 64), 1234 + 98765);
    }

    #[test]
    fn recovers_single_variable_identity() {
        let r = synth("x + 0 + 0", 1);
        assert!(r.matches_all_samples);
        let v = Valuation::new().with("x", 777);
        assert_eq!(r.expr.eval(&v, 64), 777);
    }

    #[test]
    fn early_stops_once_exact() {
        let r = synth("x & y", 7);
        assert!(r.matches_all_samples);
        assert!(
            r.iterations_used < SyntiaConfig::default().iterations,
            "no early stop: {} iterations",
            r.iterations_used
        );
    }

    #[test]
    fn reports_imperfect_candidates_honestly() {
        // A 4-variable polynomial oracle is far outside the depth-3
        // grammar budget at 300 iterations; the result must be flagged.
        let syntia = Syntia::with_config(SyntiaConfig {
            iterations: 300,
            ..SyntiaConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let oracle: Expr = "(x&~y)*(~w&z) + (x^w)*(y|z) + 12345*w"
            .parse()
            .unwrap();
        let r = syntia.synthesize(&oracle, &mut rng);
        assert!(!r.matches_all_samples, "implausibly exact: {}", r.expr);
        assert!(r.score < 1.0);
    }

    #[test]
    fn determinism_per_seed() {
        let a = synth("(x ^ y) + 2*(x & y)", 11);
        let b = synth("(x ^ y) + 2*(x & y)", 11);
        assert_eq!(a.expr, b.expr);
        assert_eq!(a.iterations_used, b.iterations_used);
    }

    #[test]
    fn score_is_within_bounds() {
        let r = synth("x * y + z", 5);
        assert!((0.0..=1.0).contains(&r.score), "score {}", r.score);
    }

    #[test]
    fn constant_oracle() {
        let r = synth("7 - 7 + 1", 9);
        assert!(r.matches_all_samples);
        assert_eq!(
            r.expr.eval(&Valuation::new(), 64),
            1,
            "constant oracle missed: {}",
            r.expr
        );
    }
}
