//! Hash-consed ROBDD engine with complement edges.
//!
//! Every exact tier in the pipeline — truth tables, corner signatures,
//! the synthesis signature — materializes all `2^t` rows of a boolean
//! function, so pure-bitwise subterms with more than
//! `TruthTable::MAX_VARS` variables fall through to heuristics and the
//! fuzz oracles lose their exact comparator. Reduced ordered binary
//! decision diagrams keep canonicity without enumerating rows: node
//! count tracks the function's structure, not `2^t`, so canonical forms
//! and exact equivalence stay cheap well past the truth-table cap for
//! the shapes MBA obfuscation produces.
//!
//! The engine follows the interning-arena discipline of
//! `mba_expr::arena`:
//!
//! * **Flat store, u32 ids.** Nodes live in one `Vec`; an [`Edge`] is a
//!   node index shifted left once, with the low bit carrying the
//!   complement flag. Equality of functions is equality of `u32`s.
//! * **Hash-consed interning.** `(var, hi, lo)` triples are interned,
//!   so structurally identical subgraphs share a node and reduction
//!   holds by construction.
//! * **Complement edges.** Negation is free (flip the low bit) and the
//!   canonical-form invariant — a stored node's `lo` edge is never
//!   complemented — makes `f` and `¬f` share every node.
//! * **Generation-tagged apply/ITE cache.** Binary operations memoize
//!   on `(op, lhs, rhs, generation)`; [`BddManager::clear`] bumps the
//!   generation so stale entries can never resurrect across an epoch
//!   even if a cache purge were skipped.
//!
//! Process-global counters (`bdd.nodes`, `bdd.apply_hits`,
//! `bdd.canonicalizations`) are bridged to `mba-obs` gauges via
//! [`publish_bdd_metrics`], mirroring `simba::publish_simba_metrics`.
//!
//! ```
//! use mba_bdd::BddManager;
//! use mba_expr::Expr;
//!
//! let lhs: Expr = "(x & y) | (x & z)".parse().unwrap();
//! let rhs: Expr = "x & (y | z)".parse().unwrap();
//! let vars: Vec<_> = lhs.vars().into_iter().collect();
//! let mut mgr = BddManager::new();
//! let a = mgr.build(&lhs, &vars).unwrap();
//! let b = mgr.build(&rhs, &vars).unwrap();
//! assert_eq!(a, b); // canonicity: equivalence is id equality
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use mba_expr::{BinOp, Expr, Ident, UnOp};

// ---------------------------------------------------------------------------
// Process-global counters (bridged to obs gauges).
// ---------------------------------------------------------------------------

static NODES: AtomicU64 = AtomicU64::new(0);
static APPLY_HITS: AtomicU64 = AtomicU64::new(0);
static CANONICALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Records one completed BDD canonicalization (build + render back to an
/// expression). Called by the pipeline tier and [`canonicalize`].
pub fn record_canonicalization() {
    CANONICALIZATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-global BDD counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Total nodes interned across all managers since process start.
    pub nodes: u64,
    /// Apply/ITE cache hits.
    pub apply_hits: u64,
    /// Completed Expr → BDD → Expr canonicalizations.
    pub canonicalizations: u64,
}

impl BddStats {
    /// Counter deltas relative to an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &BddStats) -> BddStats {
        BddStats {
            nodes: self.nodes.wrapping_sub(earlier.nodes),
            apply_hits: self.apply_hits.wrapping_sub(earlier.apply_hits),
            canonicalizations: self
                .canonicalizations
                .wrapping_sub(earlier.canonicalizations),
        }
    }
}

/// Reads the process-global BDD counters.
pub fn bdd_stats() -> BddStats {
    BddStats {
        nodes: NODES.load(Ordering::Relaxed),
        apply_hits: APPLY_HITS.load(Ordering::Relaxed),
        canonicalizations: CANONICALIZATIONS.load(Ordering::Relaxed),
    }
}

/// Publishes the BDD counters as `bdd.*` gauges on `registry`.
pub fn publish_bdd_metrics(registry: &mba_obs::MetricsRegistry) {
    let s = bdd_stats();
    registry.gauge("bdd.nodes").set(s.nodes as i64);
    registry.gauge("bdd.apply_hits").set(s.apply_hits as i64);
    registry
        .gauge("bdd.canonicalizations")
        .set(s.canonicalizations as i64);
}

// ---------------------------------------------------------------------------
// Edges and nodes.
// ---------------------------------------------------------------------------

/// A (possibly complemented) reference to a BDD node: the node index
/// shifted left once, with the low bit as the complement flag. The
/// constant functions are edges to the single terminal node — `⊤` is the
/// regular edge, `⊥` its complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u32);

impl Edge {
    /// The constant-true function.
    pub const TRUE: Edge = Edge(0);
    /// The constant-false function (complement edge to the terminal).
    pub const FALSE: Edge = Edge(1);

    /// The negation of this function (free: flips the complement bit).
    #[must_use]
    pub fn complement(self) -> Edge {
        Edge(self.0 ^ 1)
    }

    /// Whether the edge carries the complement flag.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The edge with the complement flag cleared.
    #[must_use]
    fn regular(self) -> Edge {
        Edge(self.0 & !1)
    }

    /// Applies the complement flag of `parent` on top of this edge.
    #[must_use]
    fn under(self, parent: Edge) -> Edge {
        Edge(self.0 ^ (parent.0 & 1))
    }

    /// The node index this edge points at.
    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn regular_of(index: u32) -> Edge {
        Edge(index << 1)
    }
}

/// One decision node: branch variable (an index into the caller's
/// ordered variable list; smaller = closer to the root) and the two
/// cofactor edges. Stored nodes always have a regular `lo` edge and
/// `hi != lo` — [`BddManager::mk_node`] enforces both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    hi: Edge,
    lo: Edge,
}

/// Branch variable of the terminal node: orders after every real
/// variable so `min` picks the right split point.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Xor,
}

/// Shape of the rendered expression for one node, shared between the
/// size pre-pass and the actual extraction so their node counts agree
/// exactly.
#[derive(Debug, Clone, Copy)]
enum RenderShape {
    /// `x`
    Var,
    /// `~x`
    NotVar,
    /// `x | lo`
    OrLo,
    /// `x & hi`
    AndHi,
    /// `~x & lo`
    NotAndLo,
    /// `~x | hi`
    NotOrHi,
    /// `(x & hi) | (~x & lo)`
    Ite,
}

fn render_shape(hi: Edge, lo: Edge) -> RenderShape {
    if hi == Edge::TRUE && lo == Edge::FALSE {
        RenderShape::Var
    } else if hi == Edge::FALSE && lo == Edge::TRUE {
        RenderShape::NotVar
    } else if hi == Edge::TRUE {
        RenderShape::OrLo
    } else if lo == Edge::FALSE {
        RenderShape::AndHi
    } else if hi == Edge::FALSE {
        RenderShape::NotAndLo
    } else if lo == Edge::TRUE {
        RenderShape::NotOrHi
    } else {
        RenderShape::Ite
    }
}

// ---------------------------------------------------------------------------
// The manager.
// ---------------------------------------------------------------------------

/// A hash-consing ROBDD manager: flat node store, structural interner,
/// and the generation-tagged apply/ITE memo cache.
///
/// Managers are cheap to create; the pipeline builds one per
/// canonicalization so diagram growth is bounded per call site, while
/// long-lived holders can [`BddManager::clear`] between epochs (the
/// generation tag keeps stale memo entries from ever matching).
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    interner: HashMap<Node, u32>,
    cache: HashMap<(Op, Edge, Edge, u64), Edge>,
    generation: u64,
    node_limit: usize,
}

impl Default for BddManager {
    fn default() -> Self {
        BddManager::new()
    }
}

impl BddManager {
    /// A manager with no practical node limit.
    pub fn new() -> BddManager {
        BddManager::with_node_limit(usize::MAX)
    }

    /// A manager that refuses to intern more than `node_limit` nodes —
    /// operations that would exceed it return `None` and the caller
    /// falls back to its non-BDD path.
    pub fn with_node_limit(node_limit: usize) -> BddManager {
        BddManager {
            nodes: vec![Node {
                var: TERMINAL_VAR,
                hi: Edge::TRUE,
                lo: Edge::TRUE,
            }],
            interner: HashMap::new(),
            cache: HashMap::new(),
            generation: 0,
            node_limit,
        }
    }

    /// Drops every node and memo entry and bumps the generation.
    pub fn clear(&mut self) {
        self.nodes.truncate(1);
        self.interner.clear();
        self.cache.clear();
        self.generation += 1;
    }

    /// The clear-epoch counter baked into memo keys.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live decision nodes (excludes the terminal).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The canonical edge for `(var, hi, lo)`: collapses redundant
    /// tests, normalizes the complement flag off the `lo` edge, and
    /// interns. `None` when the node limit is exhausted.
    fn mk_node(&mut self, var: u32, hi: Edge, lo: Edge) -> Option<Edge> {
        if hi == lo {
            return Some(hi);
        }
        if lo.is_complement() {
            // Canonical form: lo must be regular. ¬(x ? ¬hi : ¬lo)
            // denotes the same function.
            return self
                .mk_node(var, hi.complement(), lo.complement())
                .map(Edge::complement);
        }
        let node = Node { var, hi, lo };
        if let Some(&index) = self.interner.get(&node) {
            return Some(Edge::regular_of(index));
        }
        if self.nodes.len() >= self.node_limit || self.nodes.len() > (u32::MAX >> 1) as usize {
            return None;
        }
        let index = self.nodes.len() as u32;
        self.nodes.push(node);
        self.interner.insert(node, index);
        NODES.fetch_add(1, Ordering::Relaxed);
        Some(Edge::regular_of(index))
    }

    /// The decision variable an edge branches on (`TERMINAL_VAR` for the
    /// constants).
    fn var_of(&self, e: Edge) -> u32 {
        self.nodes[e.index()].var
    }

    /// The `(hi, lo)` cofactors of `e` with respect to `var`, complement
    /// flag pushed through. Edges that branch on a later variable are
    /// constant in `var`.
    fn cofactors(&self, e: Edge, var: u32) -> (Edge, Edge) {
        let node = self.nodes[e.index()];
        if node.var != var {
            (e, e)
        } else {
            (node.hi.under(e), node.lo.under(e))
        }
    }

    /// The projection function for variable index `var` (position in the
    /// caller's ordered variable list).
    pub fn var(&mut self, var: u32) -> Option<Edge> {
        debug_assert_ne!(var, TERMINAL_VAR);
        self.mk_node(var, Edge::TRUE, Edge::FALSE)
    }

    /// `a ∧ b`. `None` when the node limit is exhausted.
    pub fn and(&mut self, a: Edge, b: Edge) -> Option<Edge> {
        if a == Edge::FALSE || b == Edge::FALSE || a == b.complement() {
            return Some(Edge::FALSE);
        }
        if a == Edge::TRUE || a == b {
            return Some(b);
        }
        if b == Edge::TRUE {
            return Some(a);
        }
        // Commutative: canonical operand order doubles the memo hit rate.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = (Op::And, a, b, self.generation);
        if let Some(&hit) = self.cache.get(&key) {
            APPLY_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        let var = self.var_of(a).min(self.var_of(b));
        let (a1, a0) = self.cofactors(a, var);
        let (b1, b0) = self.cofactors(b, var);
        let hi = self.and(a1, b1)?;
        let lo = self.and(a0, b0)?;
        let out = self.mk_node(var, hi, lo)?;
        self.cache.insert(key, out);
        Some(out)
    }

    /// `a ⊕ b`. `None` when the node limit is exhausted.
    pub fn xor(&mut self, a: Edge, b: Edge) -> Option<Edge> {
        if a == b {
            return Some(Edge::FALSE);
        }
        if a == b.complement() {
            return Some(Edge::TRUE);
        }
        if a == Edge::FALSE {
            return Some(b);
        }
        if b == Edge::FALSE {
            return Some(a);
        }
        if a == Edge::TRUE {
            return Some(b.complement());
        }
        if b == Edge::TRUE {
            return Some(a.complement());
        }
        // ⊕ commutes with complement on either side: strip both flags,
        // memo on the regular pair, re-apply the parity at the end.
        let parity = a.is_complement() ^ b.is_complement();
        let (a, b) = (a.regular(), b.regular());
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = (Op::Xor, a, b, self.generation);
        let out = if let Some(&hit) = self.cache.get(&key) {
            APPLY_HITS.fetch_add(1, Ordering::Relaxed);
            hit
        } else {
            let var = self.var_of(a).min(self.var_of(b));
            let (a1, a0) = self.cofactors(a, var);
            let (b1, b0) = self.cofactors(b, var);
            let hi = self.xor(a1, b1)?;
            let lo = self.xor(a0, b0)?;
            let out = self.mk_node(var, hi, lo)?;
            self.cache.insert(key, out);
            out
        };
        Some(if parity { out.complement() } else { out })
    }

    /// `a ∨ b` (De Morgan through complement edges — shares the ∧ memo).
    pub fn or(&mut self, a: Edge, b: Edge) -> Option<Edge> {
        self.and(a.complement(), b.complement()).map(Edge::complement)
    }

    /// `if c then t else e`, routed through the apply cache.
    pub fn ite(&mut self, c: Edge, t: Edge, e: Edge) -> Option<Edge> {
        let hi = self.and(c, t)?;
        let lo = self.and(c.complement(), e)?;
        self.or(hi, lo)
    }

    /// Builds the BDD of a pure-bitwise expression over `vars` (the
    /// caller's variable order; index 0 branches at the root). Returns
    /// `None` for non-bitwise constructs, constants other than the
    /// bit-uniform `0`/`-1` (including negated-literal chains that fold
    /// to anything else), variables not listed in `vars`, or node-limit
    /// exhaustion.
    pub fn build(&mut self, e: &Expr, vars: &[Ident]) -> Option<Edge> {
        let index: HashMap<&Ident, u32> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        self.build_rec(e, &index)
    }

    fn build_rec(&mut self, e: &Expr, index: &HashMap<&Ident, u32>) -> Option<Edge> {
        match e {
            Expr::Const(_) | Expr::Unary(UnOp::Neg, _) => match e.as_literal() {
                Some(0) => Some(Edge::FALSE),
                Some(-1) => Some(Edge::TRUE),
                _ => None,
            },
            Expr::Var(v) => self.var(*index.get(v)?),
            Expr::Unary(UnOp::Not, inner) => {
                self.build_rec(inner, index).map(Edge::complement)
            }
            Expr::Binary(op, a, b) => {
                let a = self.build_rec(a, index)?;
                let b = self.build_rec(b, index)?;
                match op {
                    BinOp::And => self.and(a, b),
                    BinOp::Or => self.or(a, b),
                    BinOp::Xor => self.xor(a, b),
                    BinOp::Add | BinOp::Sub | BinOp::Mul => None,
                }
            }
        }
    }

    /// Exact node count of the expression [`BddManager::extract`] would
    /// render for `root`, without building it (shared subgraphs are
    /// *duplicated* in the tree, so this can exceed the diagram size by
    /// a lot — that is exactly what the cap protects against).
    fn render_size(&self, root: Edge, memo: &mut HashMap<Edge, u64>) -> u64 {
        if root == Edge::TRUE || root == Edge::FALSE {
            return 1;
        }
        if let Some(&n) = memo.get(&root) {
            return n;
        }
        let node = self.nodes[root.index()];
        let (hi, lo) = (node.hi.under(root), node.lo.under(root));
        let n = match render_shape(hi, lo) {
            RenderShape::Var => 1,
            RenderShape::NotVar => 2,
            RenderShape::OrLo => 2u64.saturating_add(self.render_size(lo, memo)),
            RenderShape::AndHi => 2u64.saturating_add(self.render_size(hi, memo)),
            RenderShape::NotAndLo => 3u64.saturating_add(self.render_size(lo, memo)),
            RenderShape::NotOrHi => 3u64.saturating_add(self.render_size(hi, memo)),
            RenderShape::Ite => 6u64
                .saturating_add(self.render_size(hi, memo))
                .saturating_add(self.render_size(lo, memo)),
        };
        memo.insert(root, n);
        n
    }

    /// Renders `root` back into a pure-bitwise [`Expr`] by memoized
    /// Shannon expansion — `(x & hi) | (~x & lo)` with the degenerate
    /// cofactor cases folded. Deterministic for a given diagram and
    /// variable order. Returns `None` when the rendered tree would
    /// exceed `max_nodes` AST nodes (diagram sharing duplicates in a
    /// tree, so the bound is checked by an exact pre-pass).
    pub fn extract(&self, root: Edge, vars: &[Ident], max_nodes: u64) -> Option<Expr> {
        let mut sizes = HashMap::new();
        if self.render_size(root, &mut sizes) > max_nodes {
            return None;
        }
        let mut memo = HashMap::new();
        Some(self.render(root, vars, &mut memo))
    }

    fn render(&self, root: Edge, vars: &[Ident], memo: &mut HashMap<Edge, Expr>) -> Expr {
        if root == Edge::TRUE {
            return Expr::minus_one();
        }
        if root == Edge::FALSE {
            return Expr::zero();
        }
        if let Some(e) = memo.get(&root) {
            return e.clone();
        }
        let node = self.nodes[root.index()];
        let (hi, lo) = (node.hi.under(root), node.lo.under(root));
        let x = Expr::var(vars[node.var as usize].clone());
        let out = match render_shape(hi, lo) {
            RenderShape::Var => x,
            RenderShape::NotVar => Expr::unary(UnOp::Not, x),
            RenderShape::OrLo => {
                let lo = self.render(lo, vars, memo);
                Expr::binary(BinOp::Or, x, lo)
            }
            RenderShape::AndHi => {
                let hi = self.render(hi, vars, memo);
                Expr::binary(BinOp::And, x, hi)
            }
            RenderShape::NotAndLo => {
                let lo = self.render(lo, vars, memo);
                Expr::binary(BinOp::And, Expr::unary(UnOp::Not, x), lo)
            }
            RenderShape::NotOrHi => {
                let hi = self.render(hi, vars, memo);
                Expr::binary(BinOp::Or, Expr::unary(UnOp::Not, x), hi)
            }
            RenderShape::Ite => {
                let hi = self.render(hi, vars, memo);
                let lo = self.render(lo, vars, memo);
                Expr::binary(
                    BinOp::Or,
                    Expr::binary(BinOp::And, x.clone(), hi),
                    Expr::binary(BinOp::And, Expr::unary(UnOp::Not, x), lo),
                )
            }
        };
        memo.insert(root, out.clone());
        out
    }

    /// A satisfying assignment of `root` over `vars` (variables the
    /// function does not depend on are bound to `false`), or `None` for
    /// the constant-false function. Follows the first satisfiable
    /// branch at every node, preferring `hi` — deterministic.
    pub fn satisfying_valuation(&self, root: Edge, vars: &[Ident]) -> Option<Vec<(Ident, bool)>> {
        if root == Edge::FALSE {
            return None;
        }
        let mut assignment = vec![false; vars.len()];
        let mut e = root;
        while e != Edge::TRUE {
            debug_assert_ne!(e, Edge::FALSE, "only ⊥ is unsatisfiable in a reduced BDD");
            let node = self.nodes[e.index()];
            let (hi, lo) = (node.hi.under(e), node.lo.under(e));
            if hi != Edge::FALSE {
                assignment[node.var as usize] = true;
                e = hi;
            } else {
                e = lo;
            }
        }
        Some(vars.iter().cloned().zip(assignment).collect())
    }
}

// ---------------------------------------------------------------------------
// One-shot canonicalization.
// ---------------------------------------------------------------------------

/// Default cap on interned nodes per canonicalization.
pub const DEFAULT_NODE_LIMIT: usize = 1 << 16;

/// Default cap on the rendered expression's AST node count.
pub const DEFAULT_RENDER_LIMIT: u64 = 1 << 12;

/// Canonicalizes a pure-bitwise expression through a fresh BDD: build,
/// then render back via Shannon extraction. Variables are ordered by
/// name (the order `Expr::vars` yields). `None` when the input is not
/// pure bitwise or a limit is exceeded — callers keep their input.
pub fn canonicalize(e: &Expr) -> Option<Expr> {
    canonicalize_limited(e, DEFAULT_NODE_LIMIT, DEFAULT_RENDER_LIMIT)
}

/// [`canonicalize`] with explicit diagram-node and rendered-AST-node
/// limits.
pub fn canonicalize_limited(e: &Expr, node_limit: usize, render_limit: u64) -> Option<Expr> {
    let vars: Vec<Ident> = e.vars().into_iter().collect();
    let mut mgr = BddManager::with_node_limit(node_limit);
    let root = mgr.build(e, &vars)?;
    let out = mgr.extract(root, &vars, render_limit)?;
    record_canonicalization();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn vars_of(e: &Expr) -> Vec<Ident> {
        e.vars().into_iter().collect()
    }

    fn build(mgr: &mut BddManager, src: &str) -> Edge {
        let e: Expr = src.parse().unwrap();
        let vars = vars_of(&e);
        mgr.build(&e, &vars).unwrap()
    }

    #[test]
    fn constants_and_negation() {
        let mut mgr = BddManager::new();
        assert_eq!(Edge::TRUE.complement(), Edge::FALSE);
        let x = mgr.var(0).unwrap();
        assert_eq!(x.complement().complement(), x);
        assert_eq!(mgr.and(x, x.complement()).unwrap(), Edge::FALSE);
        assert_eq!(mgr.or(x, x.complement()).unwrap(), Edge::TRUE);
        assert_eq!(mgr.xor(x, x.complement()).unwrap(), Edge::TRUE);
    }

    #[test]
    fn canonicity_is_edge_equality() {
        let mut mgr = BddManager::new();
        let a = build(&mut mgr, "(x & y) | (x & z)");
        let b = build(&mut mgr, "x & (y | z)");
        assert_eq!(a, b);
        // De Morgan, through complement edges.
        let c = build(&mut mgr, "~(x | y)");
        let d = build(&mut mgr, "~x & ~y");
        assert_eq!(c, d);
        // And a non-equivalence.
        let e = build(&mut mgr, "x | y");
        assert_ne!(a, e);
    }

    #[test]
    fn complement_sharing() {
        // f and ¬f must not add nodes beyond f's.
        let mut mgr = BddManager::new();
        let f = build(&mut mgr, "(x ^ y) | (y & z)");
        let before = mgr.node_count();
        let e: Expr = "~((x ^ y) | (y & z))".parse().unwrap();
        let vars = vars_of(&e);
        let g = mgr.build(&e, &vars).unwrap();
        assert_eq!(g, f.complement());
        assert_eq!(mgr.node_count(), before);
    }

    #[test]
    fn stored_lo_edges_are_regular() {
        let mut mgr = BddManager::new();
        let _ = build(&mut mgr, "(x & ~y) ^ (z | ~x) ^ (y & z)");
        for node in &mgr.nodes[1..] {
            assert!(!node.lo.is_complement());
            assert_ne!(node.hi, node.lo);
        }
    }

    #[test]
    fn non_bitwise_inputs_decline() {
        let mut mgr = BddManager::new();
        for src in ["x + y", "x * y", "x & 3", "-x", "x - y"] {
            let e: Expr = src.parse().unwrap();
            let vars = vars_of(&e);
            assert_eq!(mgr.build(&e, &vars), None, "{src}");
        }
        // Bit-uniform constants are fine.
        for src in ["x & 0", "x | -1", "x ^ 0"] {
            let e: Expr = src.parse().unwrap();
            let vars = vars_of(&e);
            assert!(mgr.build(&e, &vars).is_some(), "{src}");
        }
    }

    #[test]
    fn node_limit_declines_gracefully() {
        let mut mgr = BddManager::with_node_limit(3);
        let e: Expr = "(x & y) ^ (z | w) ^ (x | ~w)".parse().unwrap();
        let vars = vars_of(&e);
        assert_eq!(mgr.build(&e, &vars), None);
        assert!(mgr.node_count() <= 3);
    }

    #[test]
    fn clear_bumps_generation_and_empties() {
        let mut mgr = BddManager::new();
        let _ = build(&mut mgr, "x & (y | z)");
        assert!(mgr.node_count() > 0);
        let g = mgr.generation();
        mgr.clear();
        assert_eq!(mgr.node_count(), 0);
        assert_eq!(mgr.generation(), g + 1);
        // Still usable after clear.
        let _ = build(&mut mgr, "x ^ y");
    }

    #[test]
    fn extraction_matches_input_semantics() {
        for src in [
            "x",
            "~x",
            "x & y",
            "x | y",
            "x ^ y",
            "~(x ^ y) & (z | x)",
            "(x & ~y) | (~x & y)",
            "(x | y) & (y | z) & (z | x)",
        ] {
            let e: Expr = src.parse().unwrap();
            let out = canonicalize(&e).unwrap();
            assert!(out.is_pure_bitwise(), "{src} -> {out}");
            let vars = vars_of(&e);
            for width in [1u32, 8, 64] {
                for seed in 0..16u64 {
                    let mut v = Valuation::new();
                    for (i, name) in vars.iter().enumerate() {
                        let bits = seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(i as u64)
                            .wrapping_mul(0xff51_afd7_ed55_8ccd);
                        v = v.with(name.clone(), bits);
                    }
                    assert_eq!(
                        e.eval_checked(&v, width).unwrap(),
                        out.eval_checked(&v, width).unwrap(),
                        "{src} vs {out} at width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn extraction_size_prepass_is_exact() {
        for src in [
            "x ^ y ^ z",
            "(x & y) | (~x & z) | (y ^ w)",
            "(x | y) & (y | z) & (z | x) & ~(w & x)",
        ] {
            let e: Expr = src.parse().unwrap();
            let vars = vars_of(&e);
            let mut mgr = BddManager::new();
            let root = mgr.build(&e, &vars).unwrap();
            let mut sizes = HashMap::new();
            let predicted = mgr.render_size(root, &mut sizes);
            let rendered = mgr.extract(root, &vars, u64::MAX).unwrap();
            assert_eq!(predicted, rendered.node_count() as u64, "{src}");
        }
    }

    #[test]
    fn render_limit_declines() {
        let e: Expr = "(x ^ y) & (z ^ w)".parse().unwrap();
        assert_eq!(canonicalize_limited(&e, usize::MAX, 2), None);
        assert!(canonicalize_limited(&e, usize::MAX, 1 << 12).is_some());
    }

    #[test]
    fn satisfying_valuation_finds_a_model() {
        let e: Expr = "(x ^ y) & (y | z) & ~x".parse().unwrap();
        let vars = vars_of(&e);
        let mut mgr = BddManager::new();
        let root = mgr.build(&e, &vars).unwrap();
        let model = mgr.satisfying_valuation(root, &vars).unwrap();
        let mut v = Valuation::new();
        for (name, bit) in &model {
            v = v.with(name.clone(), u64::from(*bit));
        }
        assert_eq!(e.eval_checked(&v, 1).unwrap(), 1);
        // ⊥ has no model.
        assert_eq!(mgr.satisfying_valuation(Edge::FALSE, &vars), None);
        // ⊤ has the all-false model.
        let top = mgr.satisfying_valuation(Edge::TRUE, &vars).unwrap();
        assert!(top.iter().all(|(_, bit)| !bit));
    }

    #[test]
    fn counters_advance() {
        let before = bdd_stats();
        let e: Expr = "(x & y) | (y & z) | (z & x)".parse().unwrap();
        let _ = canonicalize(&e).unwrap();
        let delta = bdd_stats().since(&before);
        assert!(delta.nodes >= 1);
        assert_eq!(delta.canonicalizations, 1);

        let registry = mba_obs::MetricsRegistry::new();
        publish_bdd_metrics(&registry);
        let snap = registry.snapshot();
        assert!(snap.gauge("bdd.nodes") >= 1);
        assert!(snap.gauge("bdd.canonicalizations") >= 1);
    }
}
