//! Differential matrix for the ROBDD engine against the truth-table
//! oracle, in the variable range where both exist (t ≤ 8):
//!
//! * BDD-canonical equality ⇔ `TruthTable` equality for random
//!   pure-bitwise pairs — canonicity means edge equality is exactly
//!   semantic equality, never weaker, never stronger;
//! * extraction round-trip: `Expr` → BDD → `Expr` is semantics-
//!   preserving, re-verified both by exact truth tables and by
//!   `eval_checked` at widths 1/8/64.

use mba_bdd::{canonicalize, BddManager};
use mba_expr::{Expr, Ident, Valuation};
use mba_sig::TruthTable;
use proptest::prelude::*;

fn varset(t: usize) -> Vec<Ident> {
    ["x", "y", "z", "w", "a", "b", "c", "d"][..t]
        .iter()
        .map(Ident::new)
        .collect()
}

/// Random pure-bitwise expressions over the first `t` variables of
/// [`varset`] (same shape as the sig-crate batch_truth strategy).
fn arb_bitwise(t: usize) -> impl Strategy<Value = Expr> {
    let names: Vec<&'static str> = ["x", "y", "z", "w", "a", "b", "c", "d"][..t].to_vec();
    let leaf = prop_oneof![
        (0..names.len()).prop_map(move |i| Expr::var(names[i])),
        Just(Expr::zero()),
        Just(Expr::minus_one()),
    ];
    leaf.prop_recursive(5, 40, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.prop_map(|e| !e),
        ]
    })
}

/// Deterministic per-seed valuation binding every variable in `vars`.
fn probe_valuation(vars: &[Ident], seed: u64) -> Valuation {
    let mut v = Valuation::new();
    for (i, name) in vars.iter().enumerate() {
        let bits = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i as u64 + 1)
            .wrapping_mul(0xff51_afd7_ed55_8ccd);
        v = v.with(name.clone(), bits);
    }
    v
}

fn bdd_equal_iff_table_equal(a: &Expr, b: &Expr, t: usize) {
    let vars = varset(t);
    let mut mgr = BddManager::new();
    let ea = mgr.build(a, &vars).unwrap();
    let eb = mgr.build(b, &vars).unwrap();
    let ta = TruthTable::of(a, &vars).unwrap();
    let tb = TruthTable::of(b, &vars).unwrap();
    assert_eq!(ea == eb, ta == tb, "BDD and truth table disagree: {a} vs {b}");
    // The complement edge of one side must agree with the complemented
    // table too — exercises the complement-flag canonical form.
    let not_b = TruthTable::of(&!b.clone(), &vars).unwrap();
    assert_eq!(ea == eb.complement(), ta == not_b, "complement: {a} vs ~({b})");
}

fn roundtrip_exact(e: &Expr, t: usize) {
    let vars = varset(t);
    let out = canonicalize(e).expect("pure-bitwise input must canonicalize");
    assert!(out.is_pure_bitwise(), "{e} -> {out}");
    // Exact: the rendered form has the identical truth table.
    assert_eq!(
        TruthTable::of(e, &vars).unwrap(),
        TruthTable::of(&out, &vars).unwrap(),
        "{e} -> {out}"
    );
    // And agrees under strict evaluation at narrow, byte, and full width.
    for width in [1u32, 8, 64] {
        for seed in 0..8u64 {
            let v = probe_valuation(&vars, seed);
            assert_eq!(
                e.eval_checked(&v, width).unwrap(),
                out.eval_checked(&v, width).unwrap(),
                "{e} -> {out} at width {width}"
            );
        }
    }
}

proptest! {
    #[test]
    fn bdd_equality_iff_table_equality_t3(a in arb_bitwise(3), b in arb_bitwise(3)) {
        bdd_equal_iff_table_equal(&a, &b, 3);
    }

    #[test]
    fn bdd_equality_iff_table_equality_t6(a in arb_bitwise(6), b in arb_bitwise(6)) {
        bdd_equal_iff_table_equal(&a, &b, 6);
    }

    #[test]
    fn bdd_equality_iff_table_equality_t8(a in arb_bitwise(8), b in arb_bitwise(8)) {
        bdd_equal_iff_table_equal(&a, &b, 8);
    }

    /// An expression always equals itself rewritten through an
    /// equivalence-preserving xor trick — forces the equal branch of the
    /// ⇔ to be exercised often, not just on coincidences.
    #[test]
    fn bdd_proves_constructed_equivalences(a in arb_bitwise(6), b in arb_bitwise(6)) {
        let vars = varset(6);
        // a ⊕ b ⊕ b ≡ a.
        let rewritten = a.clone() ^ b.clone() ^ b;
        let mut mgr = BddManager::new();
        let lhs = mgr.build(&a, &vars).unwrap();
        let rhs = mgr.build(&rewritten, &vars).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn roundtrip_is_exact_t4(e in arb_bitwise(4)) {
        roundtrip_exact(&e, 4);
    }

    #[test]
    fn roundtrip_is_exact_t8(e in arb_bitwise(8)) {
        roundtrip_exact(&e, 8);
    }

    /// A mismatching pair yields a witness valuation from the BDD of the
    /// xor, and the witness really separates the two expressions.
    #[test]
    fn xor_witness_separates(a in arb_bitwise(5), b in arb_bitwise(5)) {
        let vars = varset(5);
        let mut mgr = BddManager::new();
        let ea = mgr.build(&a, &vars).unwrap();
        let eb = mgr.build(&b, &vars).unwrap();
        let diff = mgr.xor(ea, eb).unwrap();
        match mgr.satisfying_valuation(diff, &vars) {
            None => {
                prop_assert_eq!(ea, eb);
            }
            Some(model) => {
                prop_assert_ne!(ea, eb);
                let mut v = Valuation::new();
                for (name, bit) in &model {
                    v = v.with(name.clone(), if *bit { u64::MAX } else { 0 });
                }
                prop_assert_ne!(
                    a.eval_checked(&v, 8).unwrap(),
                    b.eval_checked(&v, 8).unwrap()
                );
            }
        }
    }
}

/// Canonicalization is stable: rendering the rendered form again is a
/// fixpoint (the extraction is itself canonical for a fixed diagram and
/// variable order).
#[test]
fn canonical_render_is_a_fixpoint() {
    for src in [
        "(x & ~y) | (~x & y)",
        "~(x | y) ^ (z & x)",
        "(x | y) & (y | z) & (z | x)",
        "x ^ y ^ z ^ w",
    ] {
        let e: Expr = src.parse().unwrap();
        let once = canonicalize(&e).unwrap();
        let twice = canonicalize(&once).unwrap();
        assert_eq!(once.to_string(), twice.to_string(), "{src}");
    }
}
