//! The workspace's hand-rolled JSON value layer.
//!
//! The build environment is offline (no serde_json), and three
//! subsystems need to *read* JSON — the serving layer's wire protocol,
//! the bench-report round-trip tests, and the CI telemetry validator —
//! so the small recursive-descent parser lives here, in the
//! zero-dependency observability crate, and everyone shares it.
//! (It originated in `mba-serve`'s protocol module, which now
//! re-exports it.)
//!
//! The parser is total: any input either parses or yields a
//! position-annotated error. Note that bare `NaN` / `Infinity` /
//! `inf` tokens are **not** valid JSON and do not parse — which is
//! exactly the property the `BENCH_*.json` validators lean on.

use std::collections::BTreeMap;

/// Maximum JSON nesting depth the parser accepts (the workspace's
/// documents are flat; the bound only stops adversarial `[[[[…` stack
/// growth).
const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (lossy for integers above 2^53, which the
    /// workspace's documents never use).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is irrelevant to every consumer.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to consume the whole input.
///
/// # Errors
///
/// Returns a position-annotated message on any syntax error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_JSON_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates render as U+FFFD; no workspace
                        // producer emits them, so no pairing logic is
                        // warranted.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences were
                // validated when the document was decoded to &str).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walks a parsed document and returns the path of the first offending
/// value under the telemetry contract: every number finite (guaranteed
/// by the grammar, asserted anyway) and **no `null`s** — the report
/// writers serialize non-finite floats as `null`, so a `null` in an
/// emitted `BENCH_*.json` means a non-finite aggregate slipped through
/// a producer. The CI `obs-smoke` validator is built on this.
pub fn find_non_finite(doc: &Json) -> Option<String> {
    fn walk(v: &Json, path: &str) -> Option<String> {
        match v {
            Json::Null => Some(format!("{path}: null (sanitized non-finite number)")),
            Json::Num(n) if !n.is_finite() => Some(format!("{path}: non-finite number")),
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .find_map(|(i, item)| walk(item, &format!("{path}[{i}]"))),
            Json::Obj(map) => map
                .iter()
                .find_map(|(k, item)| walk(item, &format!("{path}.{k}"))),
            _ => None,
        }
    }
    walk(doc, "$")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse_json("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        assert_eq!(
            parse_json("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "{\"a\"}", "{\"a\":}", "[1,]", "{\"a\":1,}", "tru", "\"open",
            "{\"a\":1} trailing", "{'a':1}", "{\"a\":01x}",
        ] {
            assert!(parse_json(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn rejects_non_finite_number_tokens() {
        // JSON has no spelling for non-finite numbers; a writer that
        // leaks one produces an unparseable file, never a silent NaN.
        for bad in ["NaN", "Infinity", "-Infinity", "inf", "{\"x\":NaN}", "{\"x\":inf}"] {
            assert!(parse_json(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        let hostile = "a\"b\\c\nd\te\r\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", json_escape(hostile));
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["k"].as_str(), Some(hostile));
    }

    #[test]
    fn non_finite_detector_flags_nulls_with_paths() {
        let clean = parse_json("{\"a\": 1, \"b\": [2.5, {\"c\": 0}]}").unwrap();
        assert_eq!(find_non_finite(&clean), None);
        let dirty = parse_json("{\"a\": 1, \"b\": [2.5, {\"c\": null}]}").unwrap();
        let path = find_non_finite(&dirty).unwrap();
        assert!(path.starts_with("$.b[1].c"), "{path}");
    }
}
