//! The instruments and the registry. Everything here is `Send + Sync`
//! and records with `Relaxed` atomics — telemetry must never become the
//! synchronization point of the code it observes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// Number of log2 buckets per histogram. Bucket 0 holds exact zeros;
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)`; the last bucket additionally
/// absorbs everything above its lower bound. 32 buckets cover values
/// up to `2^31` microseconds (~36 minutes) before saturating, far past
/// any latency this pipeline produces.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (inclusive); the final bucket
/// reports `u64::MAX` because it saturates.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed gauge (queue depth, shard occupancy, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-log2-bucket histogram of `u64` samples (the convention
/// throughout the workspace is **microseconds** for latency metrics,
/// signalled by a `.micros` name suffix).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Starts a borrowed timing span; elapsed **microseconds** are
    /// recorded when the span drops.
    pub fn time(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Captures the histogram. Buckets, count, and sum are read
    /// independently (`Relaxed`), so a capture racing live recording
    /// can be momentarily inconsistent by a few in-flight samples —
    /// fine for telemetry, not for invariants.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A borrowed timing span over one [`Histogram`]; records elapsed
/// microseconds on drop.
#[must_use = "a span records when dropped; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram
            .record(self.start.elapsed().as_micros() as u64);
    }
}

/// An owned timing span (holds its histogram by `Arc`), as returned by
/// [`MetricsRegistry::span`]; records elapsed microseconds on drop.
#[must_use = "a span records when dropped; binding it to `_` drops it immediately"]
pub struct OwnedSpan {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        self.histogram
            .record(self.start.elapsed().as_micros() as u64);
    }
}

/// A named directory of instruments.
///
/// `counter`/`gauge`/`histogram` get-or-register: the first call for a
/// name creates the instrument (write lock, cold path), later calls
/// return the same handle (read lock). Steady-state code should resolve
/// its handles once and keep the `Arc`s — recording through a handle
/// touches no lock at all.
///
/// ```
/// use mba_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let requests = reg.counter("serve.requests");
/// requests.inc();
/// {
///     let _span = reg.span("serve.handle.micros");
///     // ... timed work ...
/// }
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("serve.requests"), 1);
/// assert_eq!(snap.histogram("serve.handle.micros").unwrap().count, 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_register<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().unwrap().get(name) {
        return Arc::clone(found);
    }
    let mut write = map.write().unwrap();
    Arc::clone(
        write
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name)
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name)
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_register(&self.histograms, name)
    }

    /// A labeled owned timing span over the histogram named `name`
    /// (elapsed microseconds recorded on drop). Resolves the handle on
    /// every call; hot paths should hold the `Arc<Histogram>` and use
    /// [`Histogram::time`] instead.
    pub fn span(&self, name: &str) -> OwnedSpan {
        OwnedSpan {
            histogram: self.histogram(name),
            start: Instant::now(),
        }
    }

    /// Captures every instrument into a [`Snapshot`]. Instruments are
    /// read one by one, so the snapshot is not a single atomic cut
    /// across metrics — adequate for telemetry by construction.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Upper bounds bracket their bucket.
        for v in [0u64, 1, 2, 3, 7, 100, 4096, 1 << 29] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above bound of {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.counter("a").inc();
        reg.gauge("g").set(7);
        reg.gauge("g").add(-2);
        let h = reg.histogram("h.micros");
        h.record(0);
        h.record(5);
        h.record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 4);
        assert_eq!(snap.gauge("g"), 5);
        let hs = snap.histogram("h.micros").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 10);
        assert_eq!(hs.buckets, vec![(0, 1), (3, 2)]);
    }

    #[test]
    fn same_name_shares_one_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn spans_record_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("work.micros");
        }
        let h = reg.histogram("manual.micros");
        {
            let _s = h.time();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("work.micros").unwrap().count, 1);
        assert_eq!(snap.histogram("manual.micros").unwrap().count, 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("n");
        let h = reg.histogram("v.micros");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i % 17);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let hs = h.snapshot();
        assert_eq!(hs.count, 8000);
        assert_eq!(hs.buckets.iter().map(|(_, n)| n).sum::<u64>(), 8000);
    }
}
