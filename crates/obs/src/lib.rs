//! `mba-obs`: the pipeline observability layer.
//!
//! The paper's evaluation rests on *per-stage* cost claims — signature
//! extraction, basis solving, and polynomial reduction are each argued
//! to be cheap relative to SMT solving — so the reproduction needs a
//! way to see inside the simplifier, the shared signature cache, and
//! the serving layer without perturbing what it measures. This crate
//! is that layer, and it deliberately has **zero dependencies** (std
//! only) so every other crate in the workspace can use it.
//!
//! Three pieces:
//!
//! 1. **Instruments** ([`Counter`], [`Gauge`], [`Histogram`]) — plain
//!    atomics. The hot path is a handful of `Relaxed` atomic ops on
//!    pre-resolved handles; no lock is ever taken while recording.
//!    Histograms use fixed log2 buckets (bucket *i* ≥ 1 covers
//!    `[2^(i-1), 2^i)`), which is exact enough for latency work and
//!    keeps recording branch-free.
//! 2. **[`MetricsRegistry`]** — a named get-or-register directory of
//!    instruments. Registration takes a lock (cold path, once per
//!    metric); steady-state callers hold `Arc` handles. Labeled timing
//!    spans ([`MetricsRegistry::span`], [`Histogram::time`]) record
//!    elapsed microseconds on drop.
//! 3. **[`Snapshot`]** — a deterministic, serializable capture of every
//!    instrument. [`Snapshot::since`] diffs two captures (the standard
//!    way to report per-batch activity against long-lived registries),
//!    [`Snapshot::filter_prefix`] selects sub-trees (e.g. only the
//!    scheduling-independent `core.result.*` counters for byte-identity
//!    tests), and [`Snapshot::render_json`] emits canonical JSON with
//!    no floats — so a snapshot can never smuggle `NaN`/`Infinity`
//!    into a `BENCH_*.json` file.
//!
//! The [`json`] module carries the workspace's hand-rolled JSON value
//! parser (shared with `mba-serve`'s wire protocol and the bench
//! report validators); the build environment is offline, so there is
//! no serde_json to lean on.
//!
//! # Metric naming scheme
//!
//! Dotted lowercase paths, coarse-to-fine: `<crate>.<subsystem>.<name>`
//! with histograms additionally suffixed by their unit
//! (`core.stage.signature.micros`, `serve.queue.wait.micros`).
//! Counters under `core.result.*` are **deterministic**: they are pure
//! functions of the input corpus, independent of worker count and cache
//! scheduling, and are pinned byte-identical across `--jobs 1/0/64`.

pub mod json;
mod metrics;
mod snapshot;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, MetricsRegistry, OwnedSpan,
    Span, HISTOGRAM_BUCKETS,
};
pub use snapshot::{HistogramSnapshot, Snapshot};
