//! Deterministic, serializable captures of a [`MetricsRegistry`].
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use std::collections::BTreeMap;

use crate::json::json_escape;
use crate::metrics::bucket_upper_bound;

/// One histogram, captured: total count, total sum, and the non-empty
/// log2 buckets as `(bucket index, sample count)` in index order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (microseconds for latency histograms).
    pub sum: u64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (integer division; telemetry precision).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`q` in `0.0..=1.0`): the inclusive upper
    /// bound of the bucket holding the nearest-rank sample, `0` when
    /// empty. Resolution is one log2 bucket — a factor of two — which
    /// is the trade the fixed-bucket design makes for lock-free
    /// recording.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.last().map_or(0, |&(i, _)| i))
    }

    /// Bucket-wise difference (`self − earlier`), saturating at zero so
    /// a reset between captures cannot underflow.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_by_index: BTreeMap<usize, u64> = earlier.buckets.iter().copied().collect();
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(earlier_by_index.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// A full capture of a registry at one instant.
///
/// Snapshots are plain data: diff them with [`Snapshot::since`], select
/// sub-trees with [`Snapshot::filter_prefix`], serialize with
/// [`Snapshot::render_json`]. Rendering is **deterministic** (sorted
/// maps, integers only — no float formatting, hence no `NaN`/`Infinity`
/// hazard) so equal snapshots render byte-identically; the
/// `--jobs 1/0/64` byte-identity test in `mba-solver` depends on this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram captures by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter named `name`, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name`, `0` when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The activity between `earlier` and `self`: counters and
    /// histograms diff (saturating at zero), gauges keep `self`'s
    /// point-in-time value. Metrics absent from `earlier` pass through
    /// unchanged; metrics absent from `self` are dropped.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let base = earlier.histograms.get(k);
                    (
                        k.clone(),
                        match base {
                            Some(b) => v.since(b),
                            None => v.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// A snapshot containing only metrics whose names satisfy `keep`.
    pub fn filter(&self, keep: impl Fn(&str) -> bool) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// [`Snapshot::filter`] by name prefix.
    pub fn filter_prefix(&self, prefix: &str) -> Snapshot {
        self.filter(|name| name.starts_with(prefix))
    }

    /// Canonical JSON: sorted keys, integers only, no whitespace
    /// variance. Parseable by [`crate::json::parse_json`], and equal
    /// snapshots render byte-identically.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\"histograms\":{");
        push_entries(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(i, n)| format!("[{i},{n}]"))
                    .collect();
                (
                    k,
                    format!(
                        "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        buckets.join(",")
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (key, rendered) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(key));
        out.push_str("\":");
        out.push_str(&rendered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};
    use crate::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("core.result.exprs").add(5);
        reg.counter("serve.error.parse").add(2);
        reg.gauge("serve.queue.depth").set(3);
        let h = reg.histogram("core.stage.signature.micros");
        h.record(7);
        h.record(900);
        reg
    }

    #[test]
    fn render_is_canonical_and_parseable() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.render_json(), b.render_json());
        let parsed = parse_json(&a.render_json()).unwrap();
        let obj = parsed.as_obj().unwrap();
        let counters = obj["counters"].as_obj().unwrap();
        assert_eq!(counters["core.result.exprs"], Json::Num(5.0));
        let hist = obj["histograms"].as_obj().unwrap()["core.stage.signature.micros"]
            .as_obj()
            .unwrap();
        assert_eq!(hist["count"], Json::Num(2.0));
        assert_eq!(hist["sum"], Json::Num(907.0));
    }

    #[test]
    fn since_diffs_counters_and_histograms_but_not_gauges() {
        let reg = sample_registry();
        let before = reg.snapshot();
        reg.counter("core.result.exprs").add(10);
        reg.gauge("serve.queue.depth").set(1);
        reg.histogram("core.stage.signature.micros").record(7);
        let delta = reg.snapshot().since(&before);
        assert_eq!(delta.counter("core.result.exprs"), 10);
        assert_eq!(delta.counter("serve.error.parse"), 0);
        assert_eq!(delta.gauge("serve.queue.depth"), 1, "gauges are point-in-time");
        let h = delta.histogram("core.stage.signature.micros").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 7);
        assert_eq!(h.buckets, vec![(3, 1)]);
    }

    #[test]
    fn since_saturates_after_reset() {
        let big = HistogramSnapshot {
            count: 5,
            sum: 100,
            buckets: vec![(2, 5)],
        };
        let reset = HistogramSnapshot::default();
        let d = reset.since(&big);
        assert_eq!((d.count, d.sum), (0, 0));
        assert!(d.buckets.is_empty());
    }

    #[test]
    fn filter_prefix_selects_subtrees() {
        let snap = sample_registry().snapshot();
        let core = snap.filter_prefix("core.");
        assert_eq!(core.counters.len(), 1);
        assert_eq!(core.histograms.len(), 1);
        assert!(core.gauges.is_empty());
        let serve = snap.filter_prefix("serve.");
        assert_eq!(serve.counter("serve.error.parse"), 2);
        assert!(serve.histograms.is_empty());
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.approx_quantile(0.5), 0);
        // 3 samples in bucket 3 ([4,7]), 1 sample in bucket 10.
        h.count = 4;
        h.sum = 5 + 6 + 7 + 600;
        h.buckets = vec![(3, 3), (10, 1)];
        assert_eq!(h.approx_quantile(0.5), 7);
        assert_eq!(h.approx_quantile(0.99), 1023);
        assert_eq!(h.mean(), (5 + 6 + 7 + 600) / 4);
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = Snapshot::default();
        let rendered = snap.render_json();
        assert_eq!(
            rendered,
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert!(parse_json(&rendered).is_ok());
    }
}
