//! Exact linear algebra over the rationals, sized for MBA work.
//!
//! The MBA identity construction of Zhou et al. (paper §2.1, Example 1)
//! solves `M·C = 0` where `M` is a `2^t × k` truth-table matrix with
//! entries in `{0, 1}` and `C` is an integer coefficient vector. The
//! paper's prototype used NumPy; this crate provides the same operations
//! *exactly*:
//!
//! * [`Rational`] — normalized `i128` fractions,
//! * [`Matrix`] — dense rational matrices with exact Gaussian elimination
//!   ([`Matrix::rref`]),
//! * [`Matrix::solve`] — a particular solution of `A·x = b`,
//! * [`Matrix::kernel`] / [`Matrix::integer_kernel`] — a basis of the
//!   nullspace, optionally scaled to primitive integer vectors (what the
//!   identity generator feeds back as MBA coefficients).
//!
//! # Example: re-deriving the paper's Example 1
//!
//! ```
//! use mba_linalg::Matrix;
//! // Columns: x, y, x^y, x|~y, -1 (truth-table rows for 00,01,10,11).
//! let m = Matrix::from_i128_rows(&[
//!     vec![0, 0, 0, 1, 1],
//!     vec![0, 1, 1, 0, 1],
//!     vec![1, 0, 1, 1, 1],
//!     vec![1, 1, 0, 1, 1],
//! ]);
//! let kernel = m.integer_kernel();
//! assert_eq!(kernel.len(), 1);
//! // The kernel vector is (1, -1, -1, -2, 2) up to sign — exactly the
//! // coefficients the paper derives.
//! let v = &kernel[0];
//! let norm: Vec<i128> = if v[0] < 0 { v.iter().map(|c| -c).collect() } else { v.clone() };
//! assert_eq!(norm, vec![1, -1, -1, -2, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod rational;

pub use matrix::Matrix;
pub use rational::Rational;
