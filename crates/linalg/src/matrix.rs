//! Dense rational matrices with exact elimination.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::rational::Rational;

/// A dense matrix of [`Rational`] entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from integer rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_i128_rows(rows: &[Vec<i128>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows
                .iter()
                .flat_map(|r| r.iter().map(|&v| Rational::from(v)))
                .collect(),
        }
    }

    /// Creates a matrix whose columns are the given integer vectors.
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths or `cols` is empty.
    pub fn from_i128_columns(cols: &[Vec<i128>]) -> Self {
        assert!(!cols.is_empty(), "matrix must have at least one column");
        let rows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "all columns must have the same length"
        );
        let mut m = Matrix::zeros(rows, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = Rational::from(v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Rational]) -> Vec<Rational> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * x[j])
                    .fold(Rational::ZERO, |acc, v| acc + v)
            })
            .collect()
    }

    /// Integer matrix-vector product, for truth-table × coefficient
    /// computations (signature vectors, Definition 3).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec_i128(&self, x: &[i128]) -> Vec<Rational> {
        let rx: Vec<Rational> = x.iter().map(|&v| Rational::from(v)).collect();
        self.mul_vec(&rx)
    }

    /// Returns the reduced row echelon form together with the list of
    /// pivot columns.
    pub fn rref(&self) -> (Matrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..m.cols {
            if row == m.rows {
                break;
            }
            // Find a pivot in this column at or below `row`.
            let Some(pivot_row) = (row..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(row, pivot_row);
            let inv = m[(row, col)].recip();
            for j in col..m.cols {
                m[(row, j)] = m[(row, j)] * inv;
            }
            for r in 0..m.rows {
                if r != row && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)];
                    for j in col..m.cols {
                        let delta = factor * m[(row, j)];
                        m[(r, j)] = m[(r, j)] - delta;
                    }
                }
            }
            pivots.push(col);
            row += 1;
        }
        (m, pivots)
    }

    /// Solves `A·x = b`, returning one particular solution if the system
    /// is consistent.
    ///
    /// Free variables are set to zero, so when the columns of `A` are
    /// linearly independent the solution is unique.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[Rational]) -> Option<Vec<Rational>> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        // Build the augmented matrix [A | b].
        let mut aug = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, self.cols)] = b[i];
        }
        let (r, pivots) = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![Rational::ZERO; self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = r[(row, self.cols)];
        }
        Some(x)
    }

    /// Integer variant of [`Matrix::solve`]: returns the solution only if
    /// every component is an integer.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve_integer(&self, b: &[i128]) -> Option<Vec<i128>> {
        let rb: Vec<Rational> = b.iter().map(|&v| Rational::from(v)).collect();
        let x = self.solve(&rb)?;
        x.iter().map(Rational::to_integer).collect()
    }

    /// Returns a basis of the nullspace `{x : A·x = 0}`.
    pub fn kernel(&self) -> Vec<Vec<Rational>> {
        let (r, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = vec![Rational::ZERO; self.cols];
            v[f] = Rational::ONE;
            for (row, &p) in pivots.iter().enumerate() {
                v[p] = -r[(row, f)];
            }
            basis.push(v);
        }
        basis
    }

    /// Returns a basis of the nullspace scaled to primitive integer
    /// vectors (components with gcd 1), the form the MBA identity
    /// generator uses as coefficient vectors.
    pub fn integer_kernel(&self) -> Vec<Vec<i128>> {
        self.kernel()
            .into_iter()
            .map(|v| {
                let lcm = v
                    .iter()
                    .map(|r| r.denom())
                    .fold(1i128, |acc, d| acc / gcd_i128(acc, d) * d);
                let ints: Vec<i128> = v.iter().map(|r| r.numer() * (lcm / r.denom())).collect();
                let g = ints.iter().fold(0i128, |acc, &x| gcd_i128(acc, x)).max(1);
                ints.into_iter().map(|x| x / g).collect()
            })
            .collect()
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|j| self[(i, j)].to_string()).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn rref_identity_stays() {
        let m = Matrix::from_i128_rows(&[vec![1, 0], vec![0, 1]]);
        let (r2, pivots) = m.rref();
        assert_eq!(r2, m);
        assert_eq!(pivots, vec![0, 1]);
    }

    #[test]
    fn solve_unique_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let m = Matrix::from_i128_rows(&[vec![1, 1], vec![1, -1]]);
        let x = m.solve(&[r(3), r(1)]).unwrap();
        assert_eq!(x, vec![r(2), r(1)]);
    }

    #[test]
    fn solve_detects_inconsistency() {
        let m = Matrix::from_i128_rows(&[vec![1, 1], vec![1, 1]]);
        assert!(m.solve(&[r(1), r(2)]).is_none());
    }

    #[test]
    fn solve_underdetermined_sets_free_vars_to_zero() {
        let m = Matrix::from_i128_rows(&[vec![1, 1]]);
        let x = m.solve(&[r(5)]).unwrap();
        assert_eq!(x, vec![r(5), r(0)]);
    }

    #[test]
    fn solve_integer_rejects_fractional_solutions() {
        // 2x = 1 has the rational solution 1/2 but no integer solution.
        let m = Matrix::from_i128_rows(&[vec![2]]);
        assert_eq!(m.solve_integer(&[1]), None);
        assert_eq!(m.solve_integer(&[4]), Some(vec![2]));
    }

    #[test]
    fn kernel_of_full_rank_matrix_is_empty() {
        let m = Matrix::from_i128_rows(&[vec![1, 0], vec![0, 1]]);
        assert!(m.kernel().is_empty());
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn kernel_vectors_satisfy_ax_eq_zero() {
        let m = Matrix::from_i128_rows(&[vec![1, 2, 3], vec![2, 4, 6]]);
        let basis = m.kernel();
        assert_eq!(basis.len(), 2);
        assert_eq!(m.rank(), 1);
        for v in &basis {
            let product = m.mul_vec(v);
            assert!(product.iter().all(Rational::is_zero));
        }
    }

    #[test]
    fn integer_kernel_is_primitive() {
        let m = Matrix::from_i128_rows(&[vec![2, -4]]);
        let basis = m.integer_kernel();
        assert_eq!(basis, vec![vec![2, 1]]);
    }

    #[test]
    fn integer_kernel_clears_denominators() {
        // Kernel of [3, 1] is spanned by (1, -3) — via rref the free
        // column gives (-1/3, 1) which must be scaled to integers.
        let m = Matrix::from_i128_rows(&[vec![3, 1]]);
        let basis = m.integer_kernel();
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        assert_eq!(v[0].abs(), 1);
        assert_eq!(v[1].abs(), 3);
        assert_eq!(3 * v[0] + v[1], 0);
    }

    #[test]
    fn paper_example_1_kernel() {
        // Truth table of Example 1: columns x, y, x^y, x|~y, -1.
        let m = Matrix::from_i128_rows(&[
            vec![0, 0, 0, 1, 1],
            vec![0, 1, 1, 0, 1],
            vec![1, 0, 1, 1, 1],
            vec![1, 1, 0, 1, 1],
        ]);
        let basis = m.integer_kernel();
        assert_eq!(basis.len(), 1);
        let mut v = basis[0].clone();
        if v[0] < 0 {
            v.iter_mut().for_each(|c| *c = -*c);
        }
        assert_eq!(v, vec![1, -1, -1, -2, 2]);
    }

    #[test]
    fn from_columns_matches_from_rows_transposed() {
        let m1 = Matrix::from_i128_columns(&[vec![1, 2], vec![3, 4]]);
        let m2 = Matrix::from_i128_rows(&[vec![1, 3], vec![2, 4]]);
        assert_eq!(m1, m2);
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_i128_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(m.mul_vec_i128(&[1, 1]), vec![r(3), r(7)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_dimension_mismatch_panics() {
        Matrix::zeros(2, 2).mul_vec(&[Rational::ONE]);
    }

    #[test]
    fn display_is_nonempty() {
        let text = Matrix::zeros(1, 2).to_string();
        assert_eq!(text.trim(), "[0, 0]");
    }
}
