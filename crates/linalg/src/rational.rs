//! Normalized `i128` rationals.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: the denominator is positive and `gcd(|num|, den) == 1`.
/// Arithmetic panics on overflow (the matrices this crate handles are
/// small truth tables with entries in `{-1, 0, 1}`, far from the `i128`
/// range).
///
/// ```
/// use mba_linalg::Rational;
/// let half = Rational::new(1, 2);
/// let third = Rational::new(2, 6);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert_eq!((half * third).to_string(), "1/6");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The numerator (after normalization).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns the value as an integer if the denominator is 1.
    pub fn to_integer(&self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from(n as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce before multiplying to keep intermediates small.
        let g = gcd(self.den, rhs.den).max(1);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        Rational::new(
            self.num
                .checked_mul(lhs_scale)
                .and_then(|a| rhs.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b)))
                .expect("rational addition overflow"),
            self.den.checked_mul(lhs_scale).expect("rational addition overflow"),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first: gcd(a.num, b.den) and gcd(b.num, a.den).
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::new(
            (self.num / g1)
                .checked_mul(rhs.num / g2)
                .expect("rational multiplication overflow"),
            (self.den / g2)
                .checked_mul(rhs.den / g1)
                .expect("rational multiplication overflow"),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    // a/b computed as a · b⁻¹ — the standard field division.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (denominators positive).
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn integer_conversion() {
        assert_eq!(Rational::new(6, 3).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
        assert!(Rational::from(7i128).is_integer());
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 4).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert_eq!(Rational::new(-2, 3).abs(), Rational::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        Rational::ZERO.recip();
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }
}
