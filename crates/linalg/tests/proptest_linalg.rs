//! Property-based tests for exact elimination: solutions solve, kernels
//! annihilate, and rank obeys its bounds.

use mba_linalg::{Matrix, Rational};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec(-4i128..=4, cols),
            rows,
        )
        .prop_map(|rows| Matrix::from_i128_rows(&rows))
    })
}

proptest! {
    /// Every kernel basis vector is annihilated by the matrix.
    #[test]
    fn kernel_vectors_are_in_nullspace(m in arb_matrix()) {
        for v in m.kernel() {
            let out = m.mul_vec(&v);
            prop_assert!(out.iter().all(Rational::is_zero));
        }
    }

    /// Integer kernel vectors are integer, primitive, and annihilated.
    #[test]
    fn integer_kernel_is_primitive_nullspace(m in arb_matrix()) {
        for v in m.integer_kernel() {
            let rv: Vec<Rational> = v.iter().map(|&x| Rational::from(x)).collect();
            prop_assert!(m.mul_vec(&rv).iter().all(Rational::is_zero));
            let g = v.iter().fold(0i128, |acc, &x| {
                let (mut a, mut b) = (acc.abs(), x.abs());
                while b != 0 { (a, b) = (b, a % b); }
                a
            });
            prop_assert_eq!(g, 1, "kernel vector {:?} not primitive", v);
        }
    }

    /// rank + kernel dimension == number of columns (rank–nullity).
    #[test]
    fn rank_nullity(m in arb_matrix()) {
        prop_assert_eq!(m.rank() + m.kernel().len(), m.cols());
    }

    /// If solve returns x, then A·x == b.
    #[test]
    fn solutions_satisfy_the_system(
        m in arb_matrix(),
        coeffs in proptest::collection::vec(-4i128..=4, 5),
    ) {
        // Construct a consistent b = A·x0 so solve must succeed.
        let x0: Vec<Rational> = coeffs.iter().take(m.cols())
            .map(|&c| Rational::from(c)).collect();
        if x0.len() < m.cols() { return Ok(()); }
        let b = m.mul_vec(&x0);
        let x = m.solve(&b).expect("consistent system must solve");
        prop_assert_eq!(m.mul_vec(&x), b);
    }
}
