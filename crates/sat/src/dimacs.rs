//! DIMACS CNF interchange.
//!
//! Lets the CDCL core consume standard benchmark files and lets the
//! bit-blaster's output be inspected with external tools — the usual
//! debugging workflow for SAT-backed solvers.

use std::fmt::Write as _;

use crate::lit::Lit;
use crate::solver::Solver;

/// Serializes `clauses` over `num_vars` variables in DIMACS CNF format
/// (1-based, negative = negated, zero-terminated lines).
///
/// ```
/// use mba_sat::{dimacs, Lit};
/// let text = dimacs::to_dimacs(2, &[vec![Lit::positive(0), Lit::negative(1)]]);
/// assert_eq!(text, "p cnf 2 1\n1 -2 0\n");
/// ```
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for &l in clause {
            let v = l.var() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses a DIMACS CNF document into a ready-to-solve [`Solver`] plus
/// the variable list (index `i` holds DIMACS variable `i+1`).
///
/// Comments (`c ...`) and the `p cnf` header are accepted; clauses may
/// span lines. Variables beyond the header count are allocated on
/// demand.
///
/// # Errors
///
/// Returns a message naming the first malformed token.
///
/// ```
/// use mba_sat::{dimacs, SolveResult};
/// let (mut solver, _) = dimacs::parse("c example\np cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// # Ok::<(), String>(())
/// ```
pub fn parse(text: &str) -> Result<(Solver, Vec<crate::lit::Var>), String> {
    let mut solver = Solver::new();
    let mut vars: Vec<crate::lit::Var> = Vec::new();
    let mut clause: Vec<Lit> = Vec::new();
    let ensure_var = |vars: &mut Vec<crate::lit::Var>, solver: &mut Solver, index: usize| {
        while vars.len() <= index {
            vars.push(solver.new_var());
        }
        vars[index]
    };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for token in line.split_ascii_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| format!("malformed DIMACS literal `{token}`"))?;
            if value == 0 {
                solver.add_clause(&clause);
                clause.clear();
            } else {
                let index = (value.unsigned_abs() - 1) as usize;
                let var = ensure_var(&mut vars, &mut solver, index);
                clause.push(Lit::new(var, value > 0));
            }
        }
    }
    if !clause.is_empty() {
        solver.add_clause(&clause);
    }
    Ok((solver, vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn roundtrip_simple_formula() {
        let clauses = vec![
            vec![Lit::positive(0), Lit::positive(1)],
            vec![Lit::negative(0)],
        ];
        let text = to_dimacs(2, &clauses);
        let (mut solver, vars) = parse(&text).unwrap();
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.value(vars[0]), Some(false));
        assert_eq!(solver.value(vars[1]), Some(true));
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 3 2\n1 2\n3 0\n-1 -2 -3 0\n";
        let (mut solver, _) = parse(text).unwrap();
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn detects_unsat_instances() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let (mut solver, _) = parse(text).unwrap();
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("p cnf 1 1\n1 x 0\n").is_err());
    }

    #[test]
    fn allocates_variables_beyond_header() {
        // Header claims 1 var, clause mentions var 5.
        let (mut solver, vars) = parse("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(vars.len(), 5);
        assert_eq!(solver.solve(), SolveResult::Sat);
    }
}
