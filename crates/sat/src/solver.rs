//! The CDCL search engine.

use std::time::{Duration, Instant};

use crate::lit::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// A budget (conflicts, propagations, or wall clock) ran out first.
    Unknown,
}

/// Search statistics, cumulative across [`Solver::solve`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted: u64,
}

const UNDEF_CLAUSE: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    lbd: u32,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Activity-ordered variable heap (indexed binary max-heap).
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    position: Vec<i32>,
}

impl VarHeap {
    fn grow_to(&mut self, n: usize) {
        self.position.resize(n, -1);
    }

    fn contains(&self, v: Var) -> bool {
        self.position[v as usize] >= 0
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.position[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn on_bump(&mut self, v: Var, activity: &[f64]) {
        let pos = self.position[v as usize];
        if pos >= 0 {
            self.sift_up(pos as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as i32;
        self.position[self.heap[b] as usize] = b as i32;
    }
}

/// A CDCL SAT solver; see the crate docs for the feature list.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    /// Per-variable assignment: 0 = unassigned, 1 = true, -1 = false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    saved_phase: Vec<bool>,
    heap: VarHeap,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    propagation_budget: Option<u64>,
    timeout: Option<Duration>,
    num_learnts: usize,
    restart_base: u64,
    var_decay: f64,
    preprocess: bool,
    preprocessed: bool,
    eliminated: Vec<bool>,
    elim_stack: Vec<ElimRecord>,
}

/// Bookkeeping for one eliminated variable: the original clauses it
/// occurred in, kept for model reconstruction.
#[derive(Debug)]
struct ElimRecord {
    var: Var,
    saved: Vec<Vec<Lit>>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            restart_base: 100,
            var_decay: 0.95,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(UNDEF_CLAUSE);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.eliminated.push(false);
        self.heap.grow_to(self.assign.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt && !c.deleted).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the next [`Solver::solve`] to at most `conflicts`
    /// conflicts (cumulative count); `None` removes the limit.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts.map(|c| self.stats.conflicts + c);
    }

    /// Limits the next [`Solver::solve`] to at most `propagations`
    /// propagated literals; `None` removes the limit.
    pub fn set_propagation_budget(&mut self, propagations: Option<u64>) {
        self.propagation_budget = propagations.map(|p| self.stats.propagations + p);
    }

    /// Wall-clock limit for the next [`Solver::solve`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Base interval (in conflicts) of the Luby restart schedule.
    ///
    /// # Panics
    ///
    /// Panics if `base` is 0.
    pub fn set_restart_base(&mut self, base: u64) {
        assert!(base > 0, "restart base must be positive");
        self.restart_base = base;
    }

    /// VSIDS activity decay factor (0 < decay < 1; smaller decays
    /// faster, focusing the search harder on recent conflicts).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay < 1`.
    pub fn set_var_decay(&mut self, decay: f64) {
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0, 1)");
        self.var_decay = decay;
    }

    /// Adds a clause. Returns `false` when the formula became trivially
    /// unsatisfiable (empty clause after level-0 simplification).
    ///
    /// # Panics
    ///
    /// Panics if called after a solving run has left decisions on the
    /// trail (this solver does not support incremental use) or if a
    /// literal's variable was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        // Deduplicate, drop false literals, detect tautologies.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            assert!((l.var() as usize) < self.assign.len(), "unknown variable");
            if sorted.contains(&!l) && l.is_positive() {
                return true; // tautology: x ∨ ¬x
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop
                None => clause.push(l),
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], UNDEF_CLAUSE);
                // Propagate eagerly so later add_clause sees the
                // implications.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(clause, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        if learnt {
            self.num_learnts += 1;
            self.stats.learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            deleted: false,
        });
        cref
    }

    /// The current value of a variable (meaningful after `Sat`).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign[var as usize] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert!(self.lit_value(lit).is_none());
        let v = lit.var() as usize;
        self.assign[v] = if lit.is_positive() { 1 } else { -1 };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause reference if a
    /// conflict arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == Some(true) {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.clause as usize;
                if self.clauses[cref].deleted {
                    continue; // lazily drop watchers of deleted clauses
                }
                // Normalize: the false literal (¬p) goes to slot 1.
                if self.clauses[cref].lits[0] == !p {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], !p);
                let first = self.clauses[cref].lits[0];
                let w_new = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[kept] = w_new;
                    kept += 1;
                    continue;
                }
                // Search a replacement watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let candidate = self.clauses[cref].lits[k];
                    if self.lit_value(candidate) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!candidate).index()].push(w_new);
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                ws[kept] = w_new;
                kept += 1;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(w.clause);
                    // Keep the remaining watchers and stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, w.clause);
                }
            }
            ws.truncate(kept);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // slot 0 placeholder
        let mut to_clear: Vec<Var> = Vec::new();
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            let cref = confl as usize;
            if self.clauses[cref].learnt {
                self.bump_clause(cref);
            }
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v as usize] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var() as usize] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var() as usize];
            debug_assert_ne!(confl, UNDEF_CLAUSE);
        }

        // Clause minimization: drop literals implied by the rest.
        let original = learnt.clone();
        learnt.retain(|&l| {
            if l == learnt_first(&original) {
                return true;
            }
            !self.is_redundant(l)
        });

        // Compute the backtrack level and move its literal to slot 1.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize]
                    > self.level[learnt[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };

        for v in to_clear {
            self.seen[v as usize] = false;
        }
        (learnt, bt_level)
    }

    /// A literal is redundant in the learnt clause if its reason exists
    /// and every literal of that reason is already seen (or at level 0).
    fn is_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var() as usize];
        if r == UNDEF_CLAUSE {
            return false;
        }
        self.clauses[r as usize].lits.iter().skip(1).all(|&q| {
            self.seen[q.var() as usize] || self.level[q.var() as usize] == 0
        })
    }

    fn lbd_of(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("non-empty trail");
            let v = lit.var() as usize;
            self.saved_phase[v] = lit.is_positive();
            self.assign[v] = 0;
            self.reason[v] = UNDEF_CLAUSE;
            self.heap.insert(lit.var(), &self.activity);
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.on_bump(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: usize) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Removes the worst half of the learnt clauses (by LBD, then
    /// activity), keeping reasons and glue clauses.
    fn reduce_db(&mut self) {
        let mut locked = vec![false; self.clauses.len()];
        for l in &self.trail {
            let r = self.reason[l.var() as usize];
            if r != UNDEF_CLAUSE {
                locked[r as usize] = true;
            }
        }
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && !locked[i] && c.lbd > 2 && c.lits.len() > 2
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a];
            let cb = &self.clauses[b];
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).expect("no NaN"))
        });
        let to_delete = candidates.len() / 2;
        for &i in candidates.iter().take(to_delete) {
            self.clauses[i].deleted = true;
            self.clauses[i].lits.clear();
            self.clauses[i].lits.shrink_to_fit();
            self.num_learnts -= 1;
            self.stats.deleted += 1;
        }
        // Watchers pointing at deleted clauses are dropped lazily in
        // propagate().
    }

    /// Enables SatELite-style bounded variable elimination as a
    /// preprocessing step of the next [`Solver::solve`] call (run once).
    pub fn set_preprocessing(&mut self, enabled: bool) {
        self.preprocess = enabled;
    }

    /// Bounded variable elimination: a variable whose positive/negative
    /// occurrences resolve into no more clauses than they replace is
    /// eliminated by resolution. Dramatically shrinks Tseitin CNF.
    ///
    /// Must run at decision level 0 before any learning. Eliminated
    /// variables are excluded from decisions and reconstructed into the
    /// model on `Sat`.
    fn eliminate_variables(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        // Occurrence lists over non-deleted problem clauses.
        let mut occ: Vec<Vec<usize>> = vec![Vec::new(); self.assign.len() * 2];
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted || c.learnt {
                continue;
            }
            for &l in &c.lits {
                occ[l.index()].push(i);
            }
        }
        let mut order: Vec<Var> = (0..self.assign.len() as Var).collect();
        order.sort_by_key(|&v| {
            occ[Lit::positive(v).index()].len() + occ[Lit::negative(v).index()].len()
        });

        for v in order {
            if self.assign[v as usize] != 0 || self.eliminated[v as usize] {
                continue;
            }
            let live = |clauses: &Vec<Clause>, list: &[usize]| -> Vec<usize> {
                list.iter().copied().filter(|&i| !clauses[i].deleted).collect()
            };
            let pos = live(&self.clauses, &occ[Lit::positive(v).index()]);
            let neg = live(&self.clauses, &occ[Lit::negative(v).index()]);
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            // Cost bound: skip high-degree variables.
            if pos.len() * neg.len() > 16 || pos.len() + neg.len() > 12 {
                continue;
            }
            // Build all non-tautological resolvents on v.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'outer: for &pi in &pos {
                for &ni in &neg {
                    let mut r: Vec<Lit> = Vec::new();
                    let mut tautology = false;
                    for &l in self.clauses[pi]
                        .lits
                        .iter()
                        .chain(self.clauses[ni].lits.iter())
                    {
                        if l.var() == v {
                            continue;
                        }
                        if r.contains(&!l) {
                            tautology = true;
                            break;
                        }
                        if !r.contains(&l) {
                            r.push(l);
                        }
                    }
                    if tautology {
                        continue;
                    }
                    if r.len() > 12 {
                        too_many = true;
                        break 'outer;
                    }
                    resolvents.push(r);
                    if resolvents.len() > pos.len() + neg.len() {
                        too_many = true;
                        break 'outer;
                    }
                }
            }
            if too_many {
                continue;
            }
            // Commit: save originals, delete them, add resolvents.
            let mut saved = Vec::with_capacity(pos.len() + neg.len());
            for &i in pos.iter().chain(neg.iter()) {
                saved.push(self.clauses[i].lits.clone());
                self.clauses[i].deleted = true;
                self.clauses[i].lits.clear();
            }
            self.elim_stack.push(ElimRecord { var: v, saved });
            self.eliminated[v as usize] = true;
            for r in resolvents {
                // Route through add_clause: it drops level-0-false
                // literals, skips satisfied clauses, and propagates
                // units — attaching a raw clause whose watched literal
                // is already false would break the two-watched-literal
                // invariant and let the search miss the clause entirely.
                let before = self.clauses.len();
                if !self.add_clause(&r) {
                    return; // ok is already false
                }
                if self.clauses.len() > before {
                    let idx = before;
                    let lits = self.clauses[idx].lits.clone();
                    for &l in &lits {
                        occ[l.index()].push(idx);
                    }
                }
            }
        }
    }

    /// Extends a satisfying assignment over eliminated variables, in
    /// reverse elimination order (the SatELite reconstruction rule).
    fn reconstruct_model(&mut self) {
        for rec_idx in (0..self.elim_stack.len()).rev() {
            let v = self.elim_stack[rec_idx].var;
            // Default false; flip to true if some saved clause with the
            // positive literal is otherwise unsatisfied.
            let mut value = false;
            for ci in 0..self.elim_stack[rec_idx].saved.len() {
                let clause = &self.elim_stack[rec_idx].saved[ci];
                if !clause.contains(&Lit::positive(v)) {
                    continue;
                }
                let satisfied_by_rest = clause.iter().any(|&l| {
                    l.var() != v && self.lit_value(l) == Some(true)
                });
                if !satisfied_by_rest {
                    value = true;
                    break;
                }
            }
            self.assign[v as usize] = if value { 1 } else { -1 };
        }
    }

    /// Solves the formula under the configured budgets.
    pub fn solve(&mut self) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let start = Instant::now();
        let mut restart_count: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;
        let mut next_reduce: u64 = self.stats.conflicts + 2000;
        let mut next_timeout_props: u64 = self.stats.propagations + 4096;

        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        if self.preprocess && !self.preprocessed {
            self.preprocessed = true;
            self.eliminate_variables();
            if !self.ok {
                return SolveResult::Unsat;
            }
        }

        loop {
            // Budget checks (cheap enough to run per iteration).
            if self
                .conflict_budget
                .is_some_and(|b| self.stats.conflicts >= b)
                || self
                    .propagation_budget
                    .is_some_and(|b| self.stats.propagations >= b)
                || self.timeout.is_some_and(|t| {
                    // The clock is polled on conflict multiples *and*
                    // every ~4096 propagations: a unit-propagation-heavy
                    // instance can sit between conflicts indefinitely,
                    // and the conflict gate alone would never look at
                    // the clock again.
                    let due = self.stats.conflicts.is_multiple_of(64)
                        || self.stats.propagations >= next_timeout_props;
                    if self.stats.propagations >= next_timeout_props {
                        next_timeout_props = self.stats.propagations + 4096;
                    }
                    due && start.elapsed() >= t
                })
            {
                self.cancel_until(0);
                return SolveResult::Unknown;
            }

            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], UNDEF_CLAUSE);
                } else {
                    let lbd = self.lbd_of(&learnt);
                    let first = learnt[0];
                    let cref = self.attach_clause(learnt, true, lbd);
                    self.enqueue(first, cref);
                }
                self.var_inc /= self.var_decay;
                self.cla_inc /= 0.999;
                if self.stats.conflicts >= next_reduce {
                    self.reduce_db();
                    next_reduce = self.stats.conflicts + 2000 + 300 * self.stats.deleted / 100;
                }
            } else {
                // Restart?
                let limit = luby(restart_count) * self.restart_base;
                if conflicts_since_restart >= limit {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    self.cancel_until(0);
                    continue;
                }
                // Decide.
                let mut decision = None;
                while let Some(v) = self.heap.pop_max(&self.activity) {
                    if self.assign[v as usize] == 0 && !self.eliminated[v as usize] {
                        decision = Some(v);
                        break;
                    }
                }
                let Some(v) = decision else {
                    self.reconstruct_model();
                    return SolveResult::Sat; // all variables assigned
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(Lit::new(v, self.saved_phase[v as usize]), UNDEF_CLAUSE);
            }
        }
    }

    /// Resets the trail so the solver can be reused for another solve
    /// with the same clauses (e.g. after an `Unknown`).
    pub fn backtrack_to_root(&mut self) {
        self.cancel_until(0);
    }
}

fn learnt_first(learnt: &[Lit]) -> Lit {
    learnt[0]
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence that contains index x and its size.
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i32) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i > 0)
    }

    /// Builds a solver over `n` vars from DIMACS-style clause literals.
    fn build(n: usize, clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&i| lit(&vars, i)).collect();
            s.add_clause(&lits);
        }
        (s, vars)
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivially_sat() {
        let (mut s, vars) = build(1, &[&[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(vars[0]), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let (mut s, _) = build(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let (mut s, _) = build(3, &[]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_forces_assignment() {
        // 1, 1→2, 2→3, 3→4.
        let (mut s, vars) = build(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn xor_chain_sat_model_is_consistent() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1 encoded in CNF.
        let (mut s, vars) = build(
            3,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3]],
        );
        assert_eq!(s.solve(), SolveResult::Sat);
        let m: Vec<bool> = vars.iter().map(|&v| s.value(v).unwrap()).collect();
        assert_ne!(m[0], m[1]);
        assert_ne!(m[1], m[2]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6 as (i-1)*2 + j.
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        // Every pigeon in some hole.
        for i in 0..3 {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]);
        }
        // No two pigeons share a hole.
        for j in 1..=2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-(a * 2 + j), -(b * 2 + j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let (mut s, _) = build(6, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let pigeons = 5i32;
        let holes = 4i32;
        let var = |i: i32, j: i32| i * holes + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| var(i, j)).collect());
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let (mut s, _) = build((pigeons * holes) as usize, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn tautologies_and_duplicates_are_handled() {
        let (mut s, vars) = build(2, &[&[1, -1], &[2, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A hard instance with budget 0 conflicts must return Unknown
        // (unless solved by pure propagation — pigeonhole is not).
        let pigeons = 7i32;
        let holes = 6i32;
        let var = |i: i32, j: i32| i * holes + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| var(i, j)).collect());
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let (mut s, _) = build((pigeons * holes) as usize, &refs);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Remove the budget: solvable now.
        s.backtrack_to_root();
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn timeout_zero_yields_unknown_on_nontrivial_instance() {
        let (mut s, _) = build(3, &[&[1, 2], &[-1, 3], &[-3, -2], &[2, 3]]);
        s.set_timeout(Some(Duration::from_secs(0)));
        let r = s.solve();
        // Either it solved within the first propagation-only pass or it
        // reported Unknown; both are legal, but Unsat is not.
        assert_ne!(r, SolveResult::Unsat);
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = build(3, &[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn model_satisfies_all_clauses_random_3sat() {
        // Deterministic pseudo-random 3-SAT at ratio ~3.0 (satisfiable
        // with high probability); verify the returned model.
        let n = 30usize;
        let m = 90usize;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for _ in 0..m {
            let mut c = Vec::new();
            while c.len() < 3 {
                let v = (next() % n as u64) as i32 + 1;
                let l = if next() % 2 == 0 { v } else { -v };
                if !c.contains(&l) && !c.contains(&-l) {
                    c.push(l);
                }
            }
            clauses.push(c);
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let (mut s, vars) = build(n, &refs);
        if s.solve() == SolveResult::Sat {
            for c in &clauses {
                let satisfied = c.iter().any(|&l| {
                    let value = s.value(vars[(l.unsigned_abs() - 1) as usize]).unwrap();
                    value == (l > 0)
                });
                assert!(satisfied, "model violates clause {c:?}");
            }
        } else {
            panic!("ratio-3.0 instance unexpectedly unsat/unknown");
        }
    }
}
