//! A CDCL SAT solver.
//!
//! The SMT substrate of this reproduction (crate `mba-smt`) bit-blasts
//! QF_BV equivalence queries into CNF and discharges them here. The
//! design is the classic conflict-driven clause-learning architecture:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * exponential VSIDS variable activity with phase saving,
//! * Luby-sequence restarts,
//! * LBD-scored learnt-clause database reduction,
//! * conflict / propagation budgets and a wall-clock deadline so the
//!   experiment harness can emulate the paper's 1-hour timeout at any
//!   scale.
//!
//! # Example
//!
//! ```
//! use mba_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ a)  ⇒  a = b = true.
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(b), Lit::positive(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert!(solver.value(a).unwrap() && solver.value(b).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
mod lit;
mod solver;

pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
