//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: a variable with a polarity, encoded as `var·2 + sign`
/// (sign bit 1 = negated), the MiniSat convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit((var << 1) | 1)
    }

    /// A literal of `var` with the given polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense index (`var·2 + sign`), used for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::index`].
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var())
        } else {
            write!(f, "~v{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_and_var_roundtrip() {
        let p = Lit::positive(7);
        let n = Lit::negative(7);
        assert_eq!(p.var(), 7);
        assert_eq!(n.var(), 7);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::new(3, true), Lit::positive(3));
        assert_eq!(Lit::new(3, false), Lit::negative(3));
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..16 {
            assert_eq!(Lit::from_index(i).index(), i);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Lit::positive(2).to_string(), "v2");
        assert_eq!(Lit::negative(2).to_string(), "~v2");
    }
}
