//! DIMACS round-trip properties.

use mba_sat::{dimacs, Lit, SolveResult, Solver};
use proptest::prelude::*;

type Cnf = Vec<Vec<(usize, bool)>>;

fn arb_cnf() -> impl Strategy<Value = (usize, Cnf)> {
    (1usize..=8).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=3);
        proptest::collection::vec(clause, 0..=16).prop_map(move |cnf| (n, cnf))
    })
}

fn solve_direct(n: usize, cnf: &Cnf) -> SolveResult {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..n).map(|_| s.new_var()).collect();
    for clause in cnf {
        let lits: Vec<Lit> = clause.iter().map(|&(v, p)| Lit::new(vars[v], p)).collect();
        s.add_clause(&lits);
    }
    s.solve()
}

proptest! {
    /// Serializing to DIMACS and parsing back yields an equisatisfiable
    /// solver.
    #[test]
    fn dimacs_roundtrip_preserves_satisfiability((n, cnf) in arb_cnf()) {
        let direct = solve_direct(n, &cnf);

        let clauses: Vec<Vec<Lit>> = cnf
            .iter()
            .map(|c| c.iter().map(|&(v, p)| Lit::new(v as u32, p)).collect())
            .collect();
        let text = dimacs::to_dimacs(n, &clauses);
        let (mut reparsed, _) = dimacs::parse(&text).expect("roundtrip parses");
        prop_assert_eq!(reparsed.solve(), direct, "dimacs:\n{}", text);
    }

    /// The textual form always re-parses, whatever the shape.
    #[test]
    fn emitted_dimacs_always_parses((n, cnf) in arb_cnf()) {
        let clauses: Vec<Vec<Lit>> = cnf
            .iter()
            .map(|c| c.iter().map(|&(v, p)| Lit::new(v as u32, p)).collect())
            .collect();
        let text = dimacs::to_dimacs(n, &clauses);
        prop_assert!(dimacs::parse(&text).is_ok());
    }
}
