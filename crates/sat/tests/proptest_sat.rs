//! Differential testing: the CDCL solver must agree with brute-force
//! enumeration on random small CNF formulas, and every `Sat` model must
//! satisfy the formula.

use mba_sat::{Lit, SolveResult, Solver};
use proptest::prelude::*;

type Cnf = Vec<Vec<(usize, bool)>>; // (var index, positive)

fn arb_cnf(max_vars: usize) -> impl Strategy<Value = (usize, Cnf)> {
    (2..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=3);
        proptest::collection::vec(clause, 1..=24).prop_map(move |cnf| (n, cnf))
    })
}

fn brute_force_sat(n: usize, cnf: &Cnf) -> bool {
    (0u32..(1 << n)).any(|m| {
        cnf.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, pos)| ((m >> v) & 1 == 1) == pos)
        })
    })
}

fn run_solver(n: usize, cnf: &Cnf) -> (SolveResult, Solver, Vec<mba_sat::Var>) {
    run_solver_cfg(n, cnf, false)
}

fn run_solver_cfg(
    n: usize,
    cnf: &Cnf,
    preprocess: bool,
) -> (SolveResult, Solver, Vec<mba_sat::Var>) {
    let mut s = Solver::new();
    s.set_preprocessing(preprocess);
    let vars: Vec<_> = (0..n).map(|_| s.new_var()).collect();
    for clause in cnf {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)).collect();
        s.add_clause(&lits);
    }
    let r = s.solve();
    (r, s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// CDCL agrees with brute force on every random instance.
    #[test]
    fn agrees_with_brute_force((n, cnf) in arb_cnf(8)) {
        let expected = brute_force_sat(n, &cnf);
        let (result, _, _) = run_solver(n, &cnf);
        let got = match result {
            SolveResult::Sat => true,
            SolveResult::Unsat => false,
            SolveResult::Unknown => return Err(TestCaseError::fail("unexpected Unknown")),
        };
        prop_assert_eq!(got, expected, "cnf = {:?}", cnf);
    }

    /// Every Sat verdict comes with a genuinely satisfying model.
    #[test]
    fn models_satisfy_the_formula((n, cnf) in arb_cnf(10)) {
        let (result, solver, vars) = run_solver(n, &cnf);
        if result == SolveResult::Sat {
            for clause in &cnf {
                let ok = clause.iter().any(|&(v, pos)| {
                    solver.value(vars[v]).expect("assigned") == pos
                });
                prop_assert!(ok, "model violates {:?}", clause);
            }
        }
    }

    /// Variable elimination preserves verdicts, and reconstructed
    /// models satisfy the *original* formula (eliminated clauses
    /// included).
    #[test]
    fn preprocessing_agrees_with_brute_force((n, cnf) in arb_cnf(8)) {
        let expected = brute_force_sat(n, &cnf);
        let (result, solver, vars) = run_solver_cfg(n, &cnf, true);
        match result {
            SolveResult::Sat => {
                prop_assert!(expected, "false Sat with preprocessing");
                for clause in &cnf {
                    let ok = clause.iter().any(|&(v, pos)| {
                        solver.value(vars[v]).expect("assigned") == pos
                    });
                    prop_assert!(ok, "reconstructed model violates {:?}", clause);
                }
            }
            SolveResult::Unsat => prop_assert!(!expected, "false Unsat with preprocessing"),
            SolveResult::Unknown =>
                return Err(TestCaseError::fail("unexpected Unknown")),
        }
    }
}
