//! Deterministic unit tests for the CDCL core (ISSUE satellite):
//! hand-written SAT/UNSAT formulas with known answers, DIMACS
//! round-tripping, and the budget-exhaustion contract (`Unknown`,
//! never a wrong answer).

use mba_sat::{dimacs, Lit, SolveResult, Solver};

fn pos(v: u32) -> Lit {
    Lit::positive(v)
}

fn neg(v: u32) -> Lit {
    Lit::negative(v)
}

/// `(x ∨ y) ∧ (¬x ∨ y) ∧ (x ∨ ¬y)` forces `x = y = 1`.
#[test]
fn known_sat_formula_with_forced_model() {
    let mut s = Solver::new();
    let x = s.new_var();
    let y = s.new_var();
    s.add_clause(&[pos(x), pos(y)]);
    s.add_clause(&[neg(x), pos(y)]);
    s.add_clause(&[pos(x), neg(y)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(x), Some(true));
    assert_eq!(s.value(y), Some(true));
}

/// The full cube over {x, y}: all four sign combinations — classic
/// minimal UNSAT requiring one resolution step.
#[test]
fn known_unsat_all_sign_combinations() {
    let mut s = Solver::new();
    let x = s.new_var();
    let y = s.new_var();
    s.add_clause(&[pos(x), pos(y)]);
    s.add_clause(&[pos(x), neg(y)]);
    s.add_clause(&[neg(x), pos(y)]);
    s.add_clause(&[neg(x), neg(y)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// Contradictory unit clauses are UNSAT at clause-addition/propagation
/// time — no search required.
#[test]
fn contradictory_units_are_unsat() {
    let mut s = Solver::new();
    let x = s.new_var();
    s.add_clause(&[pos(x)]);
    s.add_clause(&[neg(x)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// An empty clause makes the formula UNSAT regardless of anything else.
#[test]
fn empty_clause_is_unsat() {
    let mut s = Solver::new();
    let _ = s.new_var();
    assert!(!s.add_clause(&[]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// A formula with no clauses is trivially SAT.
#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    let _ = s.new_var();
    assert_eq!(s.solve(), SolveResult::Sat);
}

/// A pigeonhole-style chain: x1 → x2 → ... → xn plus ¬xn and x1.
/// UNSAT by pure unit propagation over a long implication chain.
#[test]
fn implication_chain_unsat() {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..32).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause(&[neg(w[0]), pos(w[1])]);
    }
    s.add_clause(&[pos(vars[0])]);
    s.add_clause(&[neg(*vars.last().unwrap())]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// PHP(3, 2): three pigeons, two holes, one resolution-hard-ish UNSAT
/// instance that needs actual conflict analysis (not just propagation).
fn pigeonhole_3_2() -> (Solver, Vec<u32>) {
    let mut s = Solver::new();
    // p[i][j] = pigeon i sits in hole j.
    let p: Vec<Vec<u32>> = (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        s.add_clause(&[pos(row[0]), pos(row[1])]); // every pigeon has a hole
    }
    for a in 0..3 {
        for b in (a + 1)..3 {
            for (&pa, &pb) in p[a].iter().zip(&p[b]) {
                s.add_clause(&[neg(pa), neg(pb)]); // holes hold one pigeon
            }
        }
    }
    let flat = p.into_iter().flatten().collect();
    (s, flat)
}

#[test]
fn pigeonhole_is_unsat() {
    let (mut s, _) = pigeonhole_3_2();
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.stats().conflicts > 0, "PHP needs real conflicts");
}

/// Budget exhaustion must return `Unknown` — never Sat or Unsat — and
/// lifting the budget must then produce the real answer.
#[test]
fn conflict_budget_exhaustion_returns_unknown() {
    let (mut s, _) = pigeonhole_3_2();
    s.set_preprocessing(false);
    s.set_conflict_budget(Some(0));
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.backtrack_to_root();
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn propagation_budget_exhaustion_returns_unknown() {
    let (mut s, _) = pigeonhole_3_2();
    s.set_preprocessing(false);
    s.set_propagation_budget(Some(0));
    assert_eq!(s.solve(), SolveResult::Unknown);
}

#[test]
fn zero_timeout_returns_unknown() {
    let (mut s, _) = pigeonhole_3_2();
    s.set_preprocessing(false);
    s.set_timeout(Some(std::time::Duration::ZERO));
    assert_eq!(s.solve(), SolveResult::Unknown);
}

/// DIMACS serialization matches the spec byte-for-byte on a known
/// formula.
#[test]
fn dimacs_rendering_is_exact() {
    let clauses = vec![vec![pos(0), neg(1)], vec![neg(0), pos(1), pos(2)]];
    assert_eq!(
        dimacs::to_dimacs(3, &clauses),
        "p cnf 3 2\n1 -2 0\n-1 2 3 0\n"
    );
}

/// to_dimacs → parse round-trips: the reparsed solver agrees with the
/// original on satisfiability (both polarity conventions exercised).
#[test]
fn dimacs_roundtrip_preserves_satisfiability() {
    let sat_clauses = vec![vec![pos(0), pos(1)], vec![neg(0), pos(1)], vec![pos(0), neg(1)]];
    let unsat_clauses = vec![
        vec![pos(0), pos(1)],
        vec![pos(0), neg(1)],
        vec![neg(0), pos(1)],
        vec![neg(0), neg(1)],
    ];
    for (clauses, expected) in [
        (sat_clauses, SolveResult::Sat),
        (unsat_clauses, SolveResult::Unsat),
    ] {
        let text = dimacs::to_dimacs(2, &clauses);
        let (mut reparsed, vars) = dimacs::parse(&text).expect("round-trip parses");
        assert_eq!(vars.len(), 2);
        assert_eq!(reparsed.solve(), expected, "for DIMACS:\n{text}");
    }
}

/// Parser accepts comments, multi-line clauses, and on-demand variable
/// allocation; rejects malformed tokens.
#[test]
fn dimacs_parser_edge_cases() {
    let (mut s, vars) =
        dimacs::parse("c comment\np cnf 2 2\n1\n2 0\n-1 0\n").expect("multi-line clause");
    assert_eq!(vars.len(), 2);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(vars[1]), Some(true), "x2 forced by resolution");

    // Variable 5 exceeds the header's count of 1: allocated on demand.
    let (mut s, vars) = dimacs::parse("p cnf 1 1\n5 0\n").expect("on-demand vars");
    assert!(vars.len() >= 5);
    assert_eq!(s.solve(), SolveResult::Sat);

    assert!(dimacs::parse("p cnf 1 1\n1 zero\n").is_err());
}

/// Stats are cumulative and monotone across solve calls.
#[test]
fn stats_accumulate_across_solves() {
    let (mut s, _) = pigeonhole_3_2();
    s.set_preprocessing(false);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    let first = s.stats();
    s.backtrack_to_root();
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let second = s.stats();
    assert!(second.conflicts >= first.conflicts);
    assert!(second.propagations >= first.propagations);
}
