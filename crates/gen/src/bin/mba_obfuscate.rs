//! `mba-obfuscate`: command-line MBA obfuscation.
//!
//! ```text
//! $ mba_obfuscate --kind linear --seed 7 'x + y'
//! (x^y)+...      # an equivalent linear MBA
//! $ mba_obfuscate --profile residual --count 50 --seed 7
//! residual\tx + y\t...   # corpus text: kind, ground truth, obfuscation
//! ```
//!
//! `--profile residual` emits a residual corpus (parity-opaque-zero
//! wrappers the algebraic pipeline cannot cancel) in the
//! `mba_gen::Corpus::to_text` tab-separated format, for feeding the
//! synthesis tier end to end.

use std::process::ExitCode;

use mba_expr::Expr;
use mba_gen::{Corpus, CorpusConfig, ObfuscationKind, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn usage() {
    eprintln!(
        "usage: mba_obfuscate [--kind linear|poly|non-poly|residual] [--seed N] EXPR\n\
                mba_obfuscate --profile residual [--count N] [--seed N]"
    );
}

fn main() -> ExitCode {
    let mut kind = ObfuscationKind::Linear;
    let mut seed = 0u64;
    let mut profile: Option<String> = None;
    let mut count = 100usize;
    let mut expr_text: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => {
                let Some(value) = args.next() else {
                    usage();
                    return ExitCode::FAILURE;
                };
                kind = match value.as_str() {
                    "linear" => ObfuscationKind::Linear,
                    "poly" => ObfuscationKind::Polynomial,
                    "non-poly" | "nonpoly" => ObfuscationKind::NonPolynomial,
                    "residual" => ObfuscationKind::Residual,
                    other => {
                        eprintln!("mba_obfuscate: unknown kind `{other}`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--profile" => {
                let Some(value) = args.next() else {
                    usage();
                    return ExitCode::FAILURE;
                };
                profile = Some(value);
            }
            "--count" => {
                let Some(value) = args.next() else {
                    usage();
                    return ExitCode::FAILURE;
                };
                count = match value.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("mba_obfuscate: malformed count `{value}`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                let Some(value) = args.next() else {
                    usage();
                    return ExitCode::FAILURE;
                };
                seed = match value.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("mba_obfuscate: malformed seed `{value}`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => expr_text = Some(other.to_string()),
        }
    }

    if let Some(profile) = profile {
        if profile != "residual" {
            eprintln!("mba_obfuscate: unknown profile `{profile}`");
            return ExitCode::FAILURE;
        }
        let corpus = Corpus::generate_residual(&CorpusConfig {
            seed,
            per_category: count,
        });
        print!("{}", corpus.to_text());
        return ExitCode::SUCCESS;
    }

    let Some(text) = expr_text else {
        usage();
        return ExitCode::FAILURE;
    };
    let target: Expr = match text.parse() {
        Ok(e) => e,
        Err(err) => {
            eprintln!("mba_obfuscate: cannot parse `{text}`: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let obfuscated = Obfuscator::new().obfuscate(&target, kind, &mut rng);
    println!("{obfuscated}");
    ExitCode::SUCCESS
}
